"""XMark-like auction corpus (the XML benchmark generator's schema).

XMark documents describe an auction site: regional item listings, people,
and open/closed auctions.  Structure is moderately regular (paper: 6.2%
bare / 14.4% with tags — tags hurt because the region subtrees differ).

Planted strings (Appendix A, XMark queries): items under ``africa`` for the
Q1/Q2 path; payments containing "Creditcard"; africa items located in
"United States" (Q4 checks ``parent::africa``); and description list items
containing "cassio" immediately followed by a sibling containing "portia"
(XMark's real text generator samples Shakespeare, hence those words).
"""

from __future__ import annotations

import random

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, person_name, rng_for, sentence

_REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
_COUNTRIES = ("United States", "Germany", "Japan", "Kenya", "Brazil", "France")
_PAYMENTS = ("Money order", "Creditcard", "Personal Check", "Cash")


def _listitem(builder: XMLBuilder, rng: random.Random, payload: str) -> None:
    # XMark wraps list item content in <text> elements; Q2's trailing step
    # (.../listitem/text) selects exactly those.
    builder.open("listitem")
    builder.leaf("text", payload)
    builder.close()


def _description(builder: XMLBuilder, rng: random.Random, plant_pair: bool) -> None:
    builder.open("description")
    if plant_pair or rng.random() < 0.5:
        builder.open("parlist")
        if plant_pair:
            _listitem(builder, rng, f"page {sentence(rng, 3)} cassio speaks")
            _listitem(builder, rng, f"then portia replies {sentence(rng, 2)}")
        for _ in range(rng.randint(1, 3)):
            _listitem(builder, rng, sentence(rng, rng.randint(4, 10)))
        builder.close()
    else:
        builder.leaf("text", sentence(rng, rng.randint(6, 16)))
    builder.close()


def _item(builder: XMLBuilder, rng: random.Random, region: str, index: int, plant_pair: bool) -> None:
    builder.open("item")
    if region == "africa" and index % 3 == 0:
        builder.leaf("location", "United States")
    else:
        builder.leaf("location", rng.choice(_COUNTRIES))
    builder.leaf("quantity", str(rng.randint(1, 5)))
    builder.leaf("name", sentence(rng, 3).title())
    builder.leaf("payment", rng.choice(_PAYMENTS) if index % 4 else "Creditcard")
    _description(builder, rng, plant_pair)
    builder.open("mailbox")
    for _ in range(rng.randint(0, 2)):
        builder.open("mail")
        builder.leaf("from", person_name(rng))
        builder.leaf("to", person_name(rng))
        builder.leaf("date", f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/1998")
        builder.leaf("text", sentence(rng, rng.randint(4, 10)))
        builder.close()
    builder.close()
    builder.close().newline()


def _person(builder: XMLBuilder, rng: random.Random, index: int) -> None:
    builder.open("person")
    builder.leaf("name", person_name(rng))
    builder.leaf("emailaddress", f"mailto:user{index}@example.net")
    if rng.random() < 0.5:
        builder.open("address")
        builder.leaf("street", f"{rng.randint(1, 99)} {sentence(rng, 1).title()} St")
        builder.leaf("city", sentence(rng, 1).title())
        builder.leaf("country", rng.choice(_COUNTRIES))
        builder.close()
    builder.close()


def _auction(builder: XMLBuilder, rng: random.Random, index: int) -> None:
    builder.open("open_auction")
    builder.leaf("initial", f"{rng.uniform(1, 200):.2f}")
    for _ in range(rng.randint(0, 3)):
        builder.open("bidder")
        builder.leaf("date", f"{rng.randint(1, 12):02d}/{rng.randint(1, 28):02d}/1998")
        builder.leaf("increase", f"{rng.uniform(1, 30):.2f}")
        builder.close()
    builder.leaf("current", f"{rng.uniform(10, 400):.2f}")
    builder.leaf("itemref", f"item{index}")
    builder.leaf("seller", f"person{rng.randint(0, 999)}")
    builder.close()


def generate(scale: int = 600, seed: int = 0) -> GeneratedCorpus:
    """Generate an auction site with ``scale`` items (plus people/auctions)."""
    check_scale(scale)
    rng = rng_for("xmark", scale, seed)
    builder = XMLBuilder()
    builder.open("site").newline()
    builder.open("regions").newline()
    per_region = max(1, scale // len(_REGIONS))
    for region in _REGIONS:
        builder.open(region).newline()
        for index in range(per_region):
            plant_pair = region == "africa" and index == min(2, per_region - 1)
            _item(builder, rng, region, index, plant_pair)
        builder.close().newline()
    builder.close().newline()  # regions
    builder.open("people").newline()
    for index in range(max(1, scale // 3)):
        _person(builder, rng, index)
        if index % 10 == 9:
            builder.newline()
    builder.close().newline()
    builder.open("open_auctions").newline()
    for index in range(max(1, scale // 4)):
        _auction(builder, rng, index)
        if index % 10 == 9:
            builder.newline()
    builder.close().newline()
    builder.close()  # site
    return GeneratedCorpus(name="xmark", xml=builder.result(), scale=scale, seed=seed)

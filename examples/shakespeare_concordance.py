"""Scenario: a concordance over the collected plays (string constraints).

String predicates ``["..."]`` become node sets at parse time: the loader's
global-stream matcher attributes each substring match to every element whose
XPath string value contains it, even across markup boundaries.  The queries
then combine those sets with structural navigation — including the
sibling-order queries the paper uses (Q5) — through the :mod:`repro.api`
façade, and the first hit of each search is shown as reassembled XML (the
result set's fragment tier).

Run:  python examples/shakespeare_concordance.py [scale]
"""

import sys

import repro
from repro.corpora import generate

SEARCHES = [
    ("speeches by Mark Antony", '//SPEECH[SPEAKER["MARK ANTONY"]]'),
    ("lines of those speeches", '//SPEECH[SPEAKER["MARK ANTONY"]]/LINE'),
    (
        "Cleopatra: speaking or spoken of",
        '//SPEECH[SPEAKER["CLEOPATRA"] or LINE["Cleopatra"]]',
    ),
    (
        "Cleopatra replying to Antony",
        '//SPEECH[SPEAKER["CLEOPATRA"] and '
        'preceding-sibling::SPEECH[SPEAKER["MARK ANTONY"]]]',
    ),
    (
        "scenes containing both speakers",
        '//SCENE[SPEECH/SPEAKER["MARK ANTONY"] and SPEECH/SPEAKER["CLEOPATRA"]]',
    ),
]


def main(scale: int = 600) -> None:
    corpus = generate("shakespeare", scale)
    print(f"Collected plays: {corpus.megabytes:.1f} MB of XML\n")
    with repro.open(corpus.xml) as db:
        for label, xpath in SEARCHES:
            result = db.execute(xpath)
            print(f"{label:36s} {result.tree_count():>6,} matches "
                  f"({result.dag_count()} DAG vertices, {1000 * result.seconds:6.2f}ms)")
            for fragment in result.fragments(1, limit=200_000):
                one_line = " ".join(fragment.split())
                print(f"    e.g. {one_line[:72]}")
    print(
        "\nEach string constraint was matched in the same single scan that"
        "\nbuilt the compressed skeleton (automata over the text stream);"
        "\nthe shown hits were reassembled from skeleton + containers."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)

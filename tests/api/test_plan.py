"""Structured plans: node shapes, JSON stability, render identity."""

import json

from repro.api import Plan
from repro.xpath.compiler import compile_query


class TestPlanStructure:
    def test_figure3_query_plan(self):
        plan = Plan.from_query(
            "/descendant::a/child::b[child::c/child::d or not(following::*)]"
        )
        assert plan.query.startswith("/descendant::a")
        assert plan.required_tags == ("a", "b", "c", "d")
        assert plan.required_strings == ()
        assert not plan.upward_only
        assert plan.size() == compile_query(plan.query).size()

    def test_ops_and_leaves(self):
        plan = Plan.from_query('//a[b["needle"]]')
        as_dict = plan.to_dict()

        def collect(node, out):
            out.append(node["op"])
            for child in node.get("children", ()):
                collect(child, out)
            return out

        ops = collect(as_dict["algebra"], [])
        assert "axis" in ops and "named-set" in ops and "intersect" in ops
        assert as_dict["required"]["strings"] == ["needle"]

        def leaves(node, out):
            if node["op"] == "named-set":
                out.append(node["set"])
            for child in node.get("children", ()):
                leaves(child, out)
            return out

        assert set(leaves(as_dict["algebra"], [])) >= {"a", "b"}

    def test_axis_nodes_name_their_axis(self):
        as_dict = Plan.from_query("//a/following-sibling::b").to_dict()

        def axes(node, out):
            if node["op"] == "axis":
                out.append(node["axis"])
            for child in node.get("children", ()):
                axes(child, out)
            return out

        assert "following-sibling" in axes(as_dict["algebra"], [])

    def test_upward_only_flag(self):
        assert Plan.from_query("/self::*[a/b]").upward_only
        assert not Plan.from_query("//a/b").upward_only

    def test_render_is_byte_identical_to_algebra_render(self):
        for query_text in (
            "//a/b",
            '//a[b["x"] and not(following::*)]',
            "/self::*[a/b/c]",
            "//a/parent::b/preceding-sibling::c",
        ):
            assert Plan.from_query(query_text).render() == compile_query(query_text).render()

    def test_json_round_trips(self):
        plan = Plan.from_query("//a[b or c]")
        assert json.loads(plan.to_json()) == plan.to_dict()
        # Plans are pure data: no instance provenance unless attached.
        assert "instance" not in plan.to_dict()
        plan.instance = {"source": "engine", "cached": True}
        assert plan.to_dict()["instance"] == {"source": "engine", "cached": True}

    def test_str_is_render(self):
        plan = Plan.from_query("//a")
        assert str(plan) == plan.render()


class TestOptimizerAnnotations:
    """The explain contract of :mod:`repro.api.plan`'s module docstring."""

    def _optimization(self, query_text):
        from repro.compress.stats import DocumentStats
        from repro.model.instance import tree_instance
        from repro.xpath.compiler import required_strings, required_tags
        from repro.xpath.optimizer import optimize

        from tests.conftest import BIB_SPEC

        stats = DocumentStats.from_instance(
            tree_instance(BIB_SPEC), complete_tags=True
        )
        expr = compile_query(query_text)
        tags = tuple(sorted(required_tags(query_text)))
        strings = tuple(sorted(required_strings(query_text)))
        return expr, tags, strings, optimize(expr, stats)

    def test_annotated_plan_carries_estimates(self):
        expr, tags, strings, optimization = self._optimization("//book/author")
        plan = Plan.from_compiled(
            "//book/author", expr, tags, strings, optimization=optimization
        )
        as_dict = plan.to_dict()

        def walk(node):
            yield node
            for child in node.get("children", ()):
                yield from walk(child)

        for node in walk(as_dict["algebra"]):
            assert "est_cardinality" in node
        block = as_dict["optimizer"]
        assert block["optimized"] is True
        assert block["stats_available"] is True
        assert "unoptimized" in block
        # The unoptimized shadow tree is unannotated.
        for node in walk(block["unoptimized"]):
            assert "est_cardinality" not in node
            assert "actual" not in node

    def test_unannotated_render_stays_byte_identical(self):
        plan = Plan.from_query("//a/b")
        assert plan.render() == compile_query("//a/b").render()

    def test_annotated_render_gains_suffixes(self):
        expr, tags, strings, optimization = self._optimization("//book/author")
        plan = Plan.from_compiled(
            "//book/author", expr, tags, strings, optimization=optimization
        )
        rendered = plan.render()
        assert "[est=" in rendered

    def test_actuals_attach_per_node(self):
        from repro.engine.evaluator import measure_actuals
        from repro.model.instance import tree_instance

        from tests.conftest import BIB_SPEC

        expr, tags, strings, optimization = self._optimization("//book/author")
        instance = tree_instance(BIB_SPEC)
        actuals = measure_actuals(instance, optimization.expr)
        plan = Plan.from_compiled(
            "//book/author", expr, tags, strings,
            optimization=optimization, actuals=actuals,
        )
        root = plan.to_dict()["algebra"]
        assert root["actual"] == {"dag_count": 3, "tree_count": 3}
        assert "actual=3" in plan.render()

    def test_identity_optimization_has_no_unoptimized_shadow(self):
        from repro.xpath.optimizer import optimize

        expr = compile_query("//a")
        optimization = optimize(expr, None)
        plan = Plan.from_compiled("//a", expr, ("a",), (), optimization=optimization)
        block = plan.to_dict()["optimizer"]
        assert block["optimized"] is False
        assert block["stats_available"] is False
        assert "unoptimized" not in block

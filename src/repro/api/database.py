"""The unified database façade: one object in front of every backend.

A :class:`Database` answers prepared queries over one of three backends,
behind one surface:

* **embedded text** — wraps a :class:`repro.engine.pipeline.Engine` over
  the document text: per-schema one-scan loads (cached by default), the
  compiled-algebra LRU, and batch evaluation with cross-query sharing;
* **embedded instance** — a pre-built compressed instance (e.g. a saved
  ``.dag`` file): evaluation on a working copy, no character data;
* **served** — a :class:`repro.server.catalog.Catalog` plus
  :class:`repro.server.service.QueryService` (or a worker fleet exposing
  the same surface): load-once/query-forever over the persistent store,
  coalescing concurrent callers into shared batches.

``repro.open(path_or_text)`` picks the backend from its argument (XML
text, an XML file, a saved ``.dag`` instance, or a catalog directory);
:meth:`Database.from_catalog` opens the served backend explicitly.  Every
backend consumes the same :class:`repro.api.PreparedQuery` (compiled
once, seeded into whichever compiled-query cache the backend maintains)
and produces the same lazy :class:`repro.api.ResultSet`.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.api.envelope import DEFAULT_LIMIT
from repro.api.plan import Plan
from repro.api.prepared import PreparedQuery
from repro.api.results import ResultSet, ResultSetBatch
from repro.errors import ReproError
from repro.model.instance import Instance
from repro.xmlio.dom import Element


def _attributes_mode(tags: Iterable[str]) -> str:
    """The loader mode a schema implies (same rule as the engine pipeline)."""
    return "nodes" if any(tag.startswith("@") for tag in tags) else "ignore"


class Database:
    """One queryable document source (see module doc).  Context manager."""

    def __init__(
        self,
        *,
        engine=None,
        instance=None,
        service=None,
        owns_service=False,
        axes: str = "functional",
    ):
        backends = sum(backend is not None for backend in (engine, instance, service))
        if backends != 1:
            raise ReproError("a Database wraps exactly one backend")
        self._engine = engine
        self._instance = instance
        self._service = service
        self._owns_service = owns_service
        self._axes = engine.axes if engine is not None else axes
        # Reassembled document DOM per attributes mode (fragment tier 3).
        self._dom_cache: dict[str, Element] = {}
        # Instance-backed databases own their compiled cache (the other
        # backends delegate to the engine's / service's LRU).
        self._prepared: dict[str, PreparedQuery] = {}
        self._closed = False

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_text(
        cls, text: str, axes: str = "functional", reparse_per_query: bool = False
    ) -> "Database":
        """An embedded database over XML text (cached one-scan loads)."""
        from repro.engine.pipeline import Engine

        return cls(engine=Engine(text, reparse_per_query=reparse_per_query, axes=axes))

    @classmethod
    def from_instance(cls, instance: Instance, axes: str = "functional") -> "Database":
        """An embedded database over a pre-built compressed instance.

        The instance's schema is fixed: queries may only mention sets it
        already carries (plus absent tags, which select nothing).  No
        character data is available, so the fragment tier is off.
        """
        return cls(instance=instance, axes=axes)

    @classmethod
    def from_file(
        cls,
        path: str | os.PathLike,
        axes: str = "functional",
        reparse_per_query: bool = False,
    ) -> "Database":
        """An embedded database over an XML file or a saved ``.dag`` instance.

        ``reparse_per_query`` only applies to XML files (a ``.dag`` holds
        one pre-built instance, there is nothing to re-parse); ``axes``
        applies to both backends.
        """
        path = os.fspath(path)
        if path.endswith(".dag"):
            from repro.model.serialize import load_file

            return cls.from_instance(load_file(path), axes=axes)
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_text(
                handle.read(), axes=axes, reparse_per_query=reparse_per_query
            )

    @classmethod
    def from_catalog(cls, root: str | os.PathLike, **service_kwargs) -> "Database":
        """A served database over a catalog directory (owned lifecycle).

        ``service_kwargs`` pass through to
        :class:`repro.server.service.QueryService` (``mode``, ``window``,
        ``max_batch``, ``pool_capacity``, ``axes``, ...).  Closing the
        database closes the service.
        """
        from repro.server.catalog import Catalog
        from repro.server.service import QueryService

        service = QueryService(Catalog(os.fspath(root)), **service_kwargs)
        return cls(service=service, owns_service=True)

    @classmethod
    def from_service(cls, service) -> "Database":
        """Wrap an existing query service / worker fleet (shared lifecycle)."""
        return cls(service=service)

    # -- lifecycle -------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"embedded"`` or ``"served"``."""
        return "served" if self._service is not None else "embedded"

    def close(self) -> None:
        """Release the backend (drains an owned service; embedded is free)."""
        if self._closed:
            return
        self._closed = True
        if self._service is not None and self._owns_service:
            self._service.close()
        self._dom_cache.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- backend access (escape hatches, read-only by convention) --------

    @property
    def engine(self):
        """The wrapped :class:`Engine` (embedded-text databases only)."""
        if self._engine is None:
            raise ReproError("this database is not backed by an embedded engine")
        return self._engine

    @property
    def service(self):
        """The wrapped query service (served databases only)."""
        if self._service is None:
            raise ReproError("this database is not served")
        return self._service

    @property
    def last_load(self):
        """The :class:`LoadResult` of the most recent embedded evaluation."""
        return self._engine.last_load if self._engine is not None else None

    def documents(self) -> list[str]:
        """Registered document names (served databases only)."""
        return self.service.catalog.names()

    def add_document(self, name: str, xml: str, attributes: str = "ignore"):
        """Register ``xml`` in the served catalog; returns its entry."""
        return self.service.catalog.add(name, xml, attributes=attributes)

    def remove_document(self, name: str) -> None:
        """Drop a served document: catalog entry, files, pool residency."""
        self.service.catalog.remove(name)
        self.service.evict(name)

    # -- mutation (served databases only) --------------------------------

    def mutate(
        self,
        op: str,
        path: Sequence[int],
        xml: str | None = None,
        document: str | None = None,
    ) -> dict:
        """Apply one in-place edit to a served document.

        ``op`` is ``append_child``, ``replace_subtree`` or
        ``delete_subtree``; ``path`` addresses the target element by
        element-child ordinals from the root (``[]`` is the root element
        itself); ``xml`` carries the fragment for the inserting ops.  The
        edit is journaled, applied incrementally to the compressed DAG,
        and published under a new ``doc_version`` — subsequent queries on
        every surface see the new state, in-flight queries finish on the
        snapshot they started with.  Returns the publish summary (new
        ``doc_version``, ops applied, maintenance seconds).
        """
        return self.apply_patch(
            [{"op": op, "path": list(path), "xml": xml}], document=document
        )

    def apply_patch(self, mutations, document: str | None = None) -> dict:
        """Apply an ordered batch of mutation dicts atomically (all or none).

        Each element is ``{"op", "path", "xml"?}`` (or a
        :class:`repro.mutation.Mutation`).  The batch commits as one
        journal record and one version publish: a failure anywhere leaves
        the document exactly at its prior version.
        """
        if self._service is None:
            raise ReproError("mutations need a served database (catalog-backed)")
        return self._service.mutate(self._document_name(document), mutations)

    # -- preparation -----------------------------------------------------

    def prepare(self, query: str | PreparedQuery) -> PreparedQuery:
        """Compile ``query`` once, through the backend's compiled cache."""
        if isinstance(query, PreparedQuery):
            self._seed(query)
            return query
        if self._engine is not None:
            expr, (tags, strings) = self._engine.compiled_entry(query)
            return PreparedQuery(query, expr, tags, strings)
        if self._service is not None:
            expr, tags, strings = self._service.compiled_entry(query)
            return PreparedQuery(query, expr, tags, strings)
        prepared = self._prepared.get(query)
        if prepared is None:
            if len(self._prepared) >= 1024:
                self._prepared.clear()
            prepared = self._prepared[query] = PreparedQuery.compile(query)
        return prepared

    def _seed(self, prepared: PreparedQuery) -> None:
        """Adopt an externally-compiled query into the backend's cache."""
        if self._engine is not None:
            self._engine.adopt_compiled(
                prepared.text, prepared.expr, prepared.schema_key
            )
        elif self._service is not None:
            self._service.seed_compiled(
                prepared.text, prepared.expr, prepared.tags, prepared.strings
            )
        else:
            self._prepared.setdefault(prepared.text, prepared)

    # -- execution -------------------------------------------------------

    def execute(
        self,
        query: str | PreparedQuery,
        document: str | None = None,
        context: str | None = None,
        paths: int = 0,
        limit: int = DEFAULT_LIMIT,
    ) -> ResultSet:
        """Run one query; returns a lazy :class:`ResultSet`.

        ``document`` names the catalog document (served databases only).
        ``paths``/``limit`` only matter served, where the response must
        carry its decoded paths across the service boundary; embedded
        result sets materialise lazily and ignore them.
        """
        prepared = self.prepare(query)
        if self._service is not None:
            if context is not None:
                raise ReproError("served databases do not support context sets")
            payload = self._service.query(
                self._document_name(document), prepared.text, paths=paths, limit=limit
            )
            return ResultSet.from_payload(payload)
        if document is not None:
            raise ReproError("embedded databases take no document name")
        if self._engine is not None:
            result = self._engine.query(prepared.text, context=context)
            return ResultSet.from_result(result, self._fragment_loader(prepared))
        from repro.engine.evaluator import CompressedEvaluator

        evaluator = CompressedEvaluator(self._instance, context=context, axes=self._axes)
        return ResultSet.from_result(evaluator.evaluate(prepared.expr))

    def execute_batch(
        self,
        queries: Sequence[str | PreparedQuery],
        document: str | None = None,
        context: str | None = None,
        paths: int = 0,
        limit: int = DEFAULT_LIMIT,
    ) -> ResultSetBatch:
        """Run a whole query mix (embedded: one load, one shared working copy).

        Embedded batches go through the batch evaluator — union-schema
        load, cross-query common-subexpression sharing, durable per-query
        snapshots; a served batch issues the queries through the service,
        where concurrent callers coalesce instead.
        """
        prepared = [self.prepare(query) for query in queries]
        if not prepared:
            return ResultSetBatch([])
        if self._service is not None:
            if context is not None:
                raise ReproError("served databases do not support context sets")
            name = self._document_name(document)
            # Submit concurrently: same-shard queries coalesce into shared
            # micro-batches inside the service (a sequential loop would
            # never give it concurrent callers to coalesce), and under a
            # worker fleet different shards evaluate in parallel.
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=min(len(prepared), 16)) as executor:
                payloads = list(
                    executor.map(
                        lambda one: self._service.query(
                            name, one.text, paths=paths, limit=limit
                        ),
                        prepared,
                    )
                )
            results = [ResultSet.from_payload(payload) for payload in payloads]
            return ResultSetBatch(results, seconds=sum(r.seconds for r in results))
        if document is not None:
            raise ReproError("embedded databases take no document name")
        if self._engine is not None:
            batch = self._engine.query_batch([one.text for one in prepared], context=context)
            loaders = [self._fragment_loader(one) for one in prepared]
        else:
            from repro.engine.batch import BatchEvaluator

            evaluator = BatchEvaluator(self._instance, context=context, axes=self._axes)
            batch = evaluator.evaluate_batch([one.expr for one in prepared])
            loaders = [None] * len(prepared)
        results = [
            ResultSet.from_result(result, loader)
            for result, loader in zip(batch.results, loaders)
        ]
        return ResultSetBatch(results, seconds=batch.seconds, stats=batch.stats)

    def _document_name(self, document: str | None) -> str:
        if document is not None:
            return document
        names = self.documents()
        if len(names) == 1:
            return names[0]
        raise ReproError(
            "a served database with several documents needs document=<name>; "
            f"registered: {', '.join(names) or '(none)'}"
        )

    # -- plans -----------------------------------------------------------

    def explain(
        self,
        query: str | PreparedQuery,
        document: str | None = None,
        analyze: bool = False,
    ) -> Plan:
        """The structured :class:`Plan`, with instance-provenance attached.

        A fresh plan is built per call (provenance is point-in-time: the
        engine's schema-cache state and a served document's pool residency
        change as queries run).

        When the backend optimizes (served databases by default, embedded
        engines with instance caching), the plan is the *optimized* tree
        with per-node ``est_cardinality`` and rule tags, plus the
        ``optimizer`` block of the explain contract
        (:mod:`repro.api.plan`).  ``analyze=True`` additionally executes
        the plan — on a private working copy, never mutating backend
        state — and attaches measured ``actual`` counts per node, the
        estimated-vs-actual view.  A served document published without
        usable statistics simply yields an unannotated (unoptimized)
        plan.
        """
        prepared = self.prepare(query)
        optimization = None
        actuals: dict[int, dict] | None = None
        if self._service is not None:
            name = self._document_name(document)
            instance = self._service.instance_info(name, prepared.strings)
            # Duck-typed: both the in-process QueryService and the worker
            # fleet expose optimized_entry/measure_plan; a backend without
            # them yields an unannotated (and analyze-less) plan.
            optimized_entry = getattr(self._service, "optimized_entry", None)
            if optimized_entry is not None:
                optimization = optimized_entry(name, prepared.text)
            if analyze:
                measure = getattr(self._service, "measure_plan", None)
                if measure is not None:
                    actuals = measure(name, prepared.text)
        elif self._engine is not None:
            instance = {
                "source": "engine",
                "cached": self._engine.instance_cached(prepared.text),
                "reparse_per_query": self._engine.reparse_per_query,
            }
            optimization = self._engine.optimized_entry(prepared.text)
            if analyze:
                from repro.engine.evaluator import measure_actuals

                expr = optimization.expr if optimization is not None else prepared.expr
                actuals = measure_actuals(
                    self._engine.instance_for(prepared.text), expr, axes=self._axes
                )
        else:
            instance = {"source": "instance", "cached": True}
            if analyze:
                from repro.engine.evaluator import measure_actuals

                actuals = measure_actuals(self._instance, prepared.expr, axes=self._axes)
        plan = Plan.from_compiled(
            prepared.text,
            prepared.expr,
            prepared.tags,
            prepared.strings,
            optimization=optimization,
            actuals=actuals,
        )
        plan.instance = instance
        return plan

    # -- document materialisation (fragment tier + round trips) ----------

    def _fragment_loader(self, prepared: PreparedQuery):
        """A lazy document-DOM loader matching the query's attributes mode."""
        if self._engine is None:
            return None
        mode = _attributes_mode(prepared.tags)
        return lambda: self._document_root(mode)

    def _document_root(self, mode: str = "ignore") -> Element:
        """The reassembled document DOM (built once per attributes mode)."""
        root = self._dom_cache.get(mode)
        if root is None:
            from repro.skeleton.loader import load
            from repro.skeleton.reassemble import reassemble_element

            loaded = load(
                self.engine.text, tags=None, collect_containers=True, attributes=mode
            )
            root = reassemble_element(loaded.instance, loaded.containers, loaded.layout)
            self._dom_cache[mode] = root
        return root

    def compression_stats(self, tags: Iterable[str] | None = None):
        """Compression statistics of a fresh load (embedded-text only).

        ``tags=None`` loads every tag as a node set (Figure 6's "+" rows),
        ``tags=()`` bare structure (the "-" rows), a list exactly those
        tags — the same modes the skeleton loader takes.  Returns
        :class:`repro.compress.stats.InstanceStats`.
        """
        from repro.compress.stats import instance_stats
        from repro.skeleton.loader import load

        return instance_stats(load(self.engine.text, tags=tags).instance)

    def to_xml(self, attributes: str = "ignore", declaration: bool = True) -> str:
        """The canonical reassembled document text (embedded-text only).

        Lossless for character data and structure; with
        ``attributes="nodes"`` attribute values survive the round trip
        too.  Comments, processing instructions and the DOCTYPE are not
        part of the skeleton model and are not restored.
        """
        from repro.xmlio.writer import serialize

        return serialize(self._document_root(attributes), declaration=declaration)

    def __repr__(self) -> str:
        if self._service is not None:
            return f"Database(served, documents={len(self.documents())})"
        backend = "engine" if self._engine is not None else "instance"
        return f"Database(embedded/{backend})"


def open_database(
    source: str | os.PathLike,
    axes: str = "functional",
    reparse_per_query: bool = False,
) -> Database:
    """Open ``source`` as a :class:`Database`, picking the backend.

    * XML text (anything containing ``<``) — embedded over the text;
    * a path to an XML file — embedded over its contents;
    * a path to a saved ``.dag`` instance — embedded over the instance;
    * a catalog directory (holds ``catalog.json``) — served.

    This is the ``repro.open`` entry point.
    """
    if not isinstance(source, str) or "<" not in source:
        path = os.fspath(source)
        if os.path.isdir(path):
            if not os.path.exists(os.path.join(path, "catalog.json")):
                raise ReproError(
                    f"{path!r} is a directory but not a repro catalog "
                    "(no catalog.json); use Database.from_catalog to create one"
                )
            return Database.from_catalog(path)
        return Database.from_file(path, axes=axes, reparse_per_query=reparse_per_query)
    return Database.from_text(source, axes=axes, reparse_per_query=reparse_per_query)

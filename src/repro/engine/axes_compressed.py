"""Axis application directly on compressed instances (section 3.2).

Upward axes (Proposition 3.3) never change the DAG: whether a vertex has a
descendant in ``S`` is a property of its (shared) subtree, so one memoized
bottom-up pass adds the new selection in place.

Downward and sibling axes may need to *split* shared vertices, because the
new selection of a tree node depends on its ancestors/left siblings, which
differ between the tree nodes a shared vertex represents.  The implementation
here is functional: the output instance is (a reachable part of) the product
``V x {0,1}``, where the bit is the one piece of context the axis needs —
"has an ancestor in S" for descendant axes, "parent is in S" for child,
"has a preceding/following sibling in S" for the sibling axes.  Memoising on
``(vertex, bit)`` makes the at-most-2x growth of Proposition 3.2 and
Theorem 3.6 structurally evident.  (The paper's literal in-place splitting
procedure of Figure 4 is in :mod:`repro.engine.axes_inplace`; both are
property-tested equivalent.)

Multiplicity edges: for downward axes the bit is constant along a run, so
runs survive untouched.  For sibling axes a run ``(w, m)`` with ``w in S``
is where multiplicities genuinely interact — occurrences after the first
have a preceding sibling *inside the run* — so a run may split into
``(w,1) + (w', m-1)``, and symmetrically for preceding-sibling.  Note the
precise growth accounting: vertices and *expanded* edges at most double per
operation, but run-length edge *entries* can reach 4x under sibling axes
(run splitting on top of vertex splitting); the paper's "at most doubles"
refers to the expanded counts.

Split-avoiding fast paths (DESIGN.md section 5): before rebuilding, the
splitting axes run a cheap O(|E|) scan that computes, for every reachable
vertex, the set of context bits it would receive in the product.  When no
vertex receives both bits (true for every tree, and for DAG/selection
combinations where shared vertices happen to agree — e.g. ``descendant``
from the root), the product would be isomorphic to the input, so the axis
commits the new selection as an in-place mask pass instead — no rebuild, no
renumbering, and the instance's cached traversal orders survive.  The
rebuild remains the general path and the two are property-tested to produce
equivalent instances.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.model.instance import Instance, normalize_edges


def apply_axis(instance: Instance, axis: str, source: str, target: str) -> Instance:
    """Apply ``axis`` to set ``source``, adding the result as set ``target``.

    Upward axes, ``self``, and split-free applications of the downward and
    sibling axes mutate ``instance`` in place and return it; genuinely
    splitting applications return a *new* instance (all existing sets
    carried over).  ``target`` must not already exist.
    """
    if instance.has_set(target):
        raise EvaluationError(f"target set {target!r} already exists")
    source_bit = instance.bit_of(source)
    masks = instance.mask_plane()
    if not any(masks[v] >> source_bit & 1 for v in instance.preorder()):
        # chi(empty) = empty for every axis: add an empty target set without
        # touching the structure (a common case for queries over tags the
        # document does not use).
        instance.ensure_set(target)
        return instance
    if axis == "self":
        return _self(instance, source_bit, target)
    if axis == "parent":
        return _parent(instance, source_bit, target)
    if axis == "ancestor":
        return _ancestor(instance, source_bit, target, or_self=False)
    if axis == "ancestor-or-self":
        return _ancestor(instance, source_bit, target, or_self=True)
    if axis in ("child", "descendant", "descendant-or-self"):
        return _downward(instance, axis, source_bit, target)
    if axis == "following-sibling":
        return _sibling(instance, source_bit, target, following=True)
    if axis == "preceding-sibling":
        return _sibling(instance, source_bit, target, following=False)
    if axis == "following":
        return _composite(instance, source, target, ("ancestor-or-self", "following-sibling", "descendant-or-self"))
    if axis == "preceding":
        return _composite(instance, source, target, ("ancestor-or-self", "preceding-sibling", "descendant-or-self"))
    raise EvaluationError(f"unknown axis {axis!r}")


def _composite(instance: Instance, source: str, target: str, chain) -> Instance:
    """following/preceding via the section 3.2 composition, through temps.

    The first stage is an in-place upward pass and the later stages usually
    take the split-avoiding fast path, so all three stages share one cached
    postorder of the instance (mask-only passes do not invalidate it); the
    temporaries are then dropped in a single :meth:`Instance.drop_sets` pass.
    """
    current = source
    temps = []
    for index, axis in enumerate(chain):
        name = f"{target}~{index}" if index < len(chain) - 1 else target
        instance = apply_axis(instance, axis, current, name)
        if current != source:
            temps.append(current)
        current = name
    instance.drop_sets(temps)
    return instance


# ----------------------------------------------------------------------
# Upward axes: in place, one pass, no splitting (Proposition 3.3)
# ----------------------------------------------------------------------


def _self(instance: Instance, source_bit: int, target: str) -> Instance:
    target_bit = 1 << instance.ensure_set(target)
    masks = instance.mask_plane()
    for vertex in instance.preorder():
        if masks[vertex] >> source_bit & 1:
            masks[vertex] |= target_bit
    return instance


def _parent(instance: Instance, source_bit: int, target: str) -> Instance:
    target_bit = 1 << instance.ensure_set(target)
    masks = instance.mask_plane()
    children = instance.edge_table()
    for vertex in instance.preorder():
        for child, _ in children[vertex]:
            if masks[child] >> source_bit & 1:
                masks[vertex] |= target_bit
                break
    return instance


def _ancestor(instance: Instance, source_bit: int, target: str, or_self: bool) -> Instance:
    target_bit_index = instance.ensure_set(target)
    target_bit = 1 << target_bit_index
    masks = instance.mask_plane()
    children = instance.edge_table()
    # Children before parents: selection flows upward.
    for vertex in instance.postorder():
        mask = masks[vertex]
        selected = bool(or_self and (mask >> source_bit & 1))
        if not selected:
            for child, _ in children[vertex]:
                child_mask = masks[child]
                if child_mask >> source_bit & 1 or child_mask >> target_bit_index & 1:
                    selected = True
                    break
        # ancestor-or-self additionally keeps S itself selected.
        if selected:
            masks[vertex] = mask | target_bit
    return instance


# ----------------------------------------------------------------------
# Downward axes: (vertex, bit) product rebuild (Proposition 3.2)
# ----------------------------------------------------------------------


def _downward(instance: Instance, axis: str, source_bit: int, target: str) -> Instance:
    fast = _downward_inplace(instance, axis, source_bit, target)
    if fast is not None:
        return fast
    return _downward_rebuild(instance, axis, source_bit, target)


def _downward_inplace(
    instance: Instance, axis: str, source_bit: int, target: str
) -> Instance | None:
    """Split-avoiding fast path: commit the selection in place, or ``None``.

    One topological pass computes the context bit every reachable vertex
    receives from its parents; if some shared vertex receives both bits the
    product genuinely splits and the caller falls back to the rebuild.
    """
    descend = axis in ("descendant", "descendant-or-self")
    or_self = axis == "descendant-or-self"
    masks = instance.mask_plane()
    children = instance.edge_table()
    order = instance.topological_order()
    got0 = bytearray(len(children))
    got1 = bytearray(len(children))
    got0[instance.root] = 1
    for vertex in order:
        bit = got1[vertex]
        if bit and got0[vertex]:
            return None
        if masks[vertex] >> source_bit & 1 or (descend and bit):
            received = got1
        else:
            received = got0
        for child, _ in children[vertex]:
            received[child] = 1
    target_bit = 1 << instance.ensure_set(target)
    if or_self:
        for vertex in order:
            if got1[vertex] or masks[vertex] >> source_bit & 1:
                masks[vertex] |= target_bit
    else:
        for vertex in order:
            if got1[vertex]:
                masks[vertex] |= target_bit
    return instance


def _downward_rebuild(instance: Instance, axis: str, source_bit: int, target: str) -> Instance:
    result = Instance(instance.schema)
    target_bit = 1 << result.ensure_set(target)
    descend = axis in ("descendant", "descendant-or-self")
    or_self = axis == "descendant-or-self"
    masks = instance.mask_plane()
    children = instance.edge_table()
    new_vertex = result.new_vertex_masked

    memo: dict[tuple[int, int], int] = {}
    # Iterative postorder over (vertex, bit) product states.
    stack: list[tuple[int, int, bool]] = [(instance.root, 0, False)]
    while stack:
        vertex, bit, expanded = stack.pop()
        state = (vertex, bit)
        if state in memo:
            continue
        in_source = masks[vertex] >> source_bit & 1
        child_bit = 1 if (in_source or (descend and bit)) else 0
        if not expanded:
            stack.append((vertex, bit, True))
            for child, _ in children[vertex]:
                if (child, child_bit) not in memo:
                    stack.append((child, child_bit, False))
            continue
        edges = tuple(
            (memo[(child, child_bit)], count) for child, count in children[vertex]
        )
        selected = bit or (or_self and in_source)
        mask = masks[vertex] | (target_bit if selected else 0)
        memo[state] = new_vertex(mask, edges)
    result.set_root(memo[(instance.root, 0)])
    return result


# ----------------------------------------------------------------------
# Sibling axes: product rebuild with per-run splitting (Proposition 3.4)
# ----------------------------------------------------------------------


def _sibling(instance: Instance, source_bit: int, target: str, following: bool) -> Instance:
    fast = _sibling_inplace(instance, source_bit, target, following)
    if fast is not None:
        return fast
    return _sibling_rebuild(instance, source_bit, target, following)


def _sibling_inplace(
    instance: Instance, source_bit: int, target: str, following: bool
) -> Instance | None:
    """Split-avoiding fast path for the sibling axes, or ``None``.

    A vertex splits when two parent positions disagree on "has a
    preceding/following sibling in S", or when a run ``(w, m)`` with
    ``m > 1`` straddles the flag flip (``w in S`` while the flag is still
    0), which would split the run itself.  One scan over all reachable
    edge lists detects both; otherwise the selection is a pure mask pass.
    """
    masks = instance.mask_plane()
    children = instance.edge_table()
    order = instance.preorder()
    got0 = bytearray(len(children))
    got1 = bytearray(len(children))
    got0[instance.root] = 1
    for vertex in order:
        edges = children[vertex]
        if not edges:
            continue
        flag = 0
        for child, count in edges if following else reversed(edges):
            in_source = masks[child] >> source_bit & 1
            if count > 1 and in_source and not flag:
                return None  # the run itself splits: (w,1) + (w',m-1)
            if flag:
                got1[child] = 1
            else:
                got0[child] = 1
            if in_source:
                flag = 1
    for vertex in order:
        if got0[vertex] and got1[vertex]:
            return None
    target_bit = 1 << instance.ensure_set(target)
    for vertex in order:
        if got1[vertex]:
            masks[vertex] |= target_bit
    return instance


def _sibling_rebuild(
    instance: Instance, source_bit: int, target: str, following: bool
) -> Instance:
    result = Instance(instance.schema)
    target_bit = 1 << result.ensure_set(target)
    masks = instance.mask_plane()
    children = instance.edge_table()
    new_vertex = result.new_vertex_masked

    # The bit a child state receives depends only on its parent's children
    # (not on the parent's own bit), so compute each parent's child-state run
    # list once.
    child_states: dict[int, list[tuple[int, int, int]]] = {}

    def states_of(vertex: int) -> list[tuple[int, int, int]]:
        cached = child_states.get(vertex)
        if cached is not None:
            return cached
        runs: list[tuple[int, int, int]] = []  # (child, bit, count)
        edges = children[vertex]
        flag = 0
        sequence = edges if following else tuple(reversed(edges))
        for child, count in sequence:
            in_source = masks[child] >> source_bit & 1
            inner = 1 if (flag or in_source) else 0
            if count == 1:
                part = [(child, flag, 1)]
            elif following:
                part = [(child, flag, 1), (child, inner, count - 1)]
            else:
                part = [(child, inner, count - 1), (child, flag, 1)]
            if not following:
                part.reverse()  # we are scanning right-to-left
            runs.extend(part)
            flag = 1 if (flag or in_source) else 0
        if not following:
            runs.reverse()
        child_states[vertex] = runs
        return runs

    memo: dict[tuple[int, int], int] = {}
    stack: list[tuple[int, int, bool]] = [(instance.root, 0, False)]
    while stack:
        vertex, bit, expanded = stack.pop()
        state = (vertex, bit)
        if state in memo:
            continue
        runs = states_of(vertex)
        if not expanded:
            stack.append((vertex, bit, True))
            for child, child_bit, _ in runs:
                if (child, child_bit) not in memo:
                    stack.append((child, child_bit, False))
            continue
        edges = normalize_edges(
            (memo[(child, child_bit)], count) for child, child_bit, count in runs
        )
        mask = masks[vertex] | (target_bit if bit else 0)
        memo[state] = new_vertex(mask, edges)
    result.set_root(memo[(instance.root, 0)])
    return result

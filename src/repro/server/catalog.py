"""A persistent multi-document catalog over the chunked store.

The serving model of the paper — and of Arion et al.'s path-partitioned
stores — is *load once, query forever*: a document is shredded into the
compressed chunk store exactly once, at registration time, and every later
query is answered from the resident (or quickly re-assembled) instance
without touching the XML again.

A :class:`Catalog` is a directory::

    <root>/catalog.json            registry: name -> entry metadata
    <root>/<name>/document.xml     the original text (string-schema reloads)
    <root>/<name>/chunks/          the shredded instance (storage.chunked)

Documents are registered with **every** tag as a node set, so any tag-only
query can be served from the shredded chunks alone (a *warm start*: one
:func:`repro.model.serialize.load` per distinct chunk, no XML parse).  Only
queries with string-containment predicates need the original text again —
string sets are computed by the one-scan matcher at load time — and the
resulting instances are cached upstream in the server's instance pool,
keyed by their string schema.

All catalog methods are thread-safe: registration and removal serialise on
one lock, and the manifest is rewritten atomically (temp file + rename).

The on-disk layout is also the fleet's replication channel: any number of
*reader* processes (the pre-forked workers of :mod:`repro.server.cluster`)
may open the same directory concurrently with one writer (the front-end).
A document's chunk files are fully written *before* its manifest entry is
published, and the manifest itself is replaced atomically, so a reader
either sees a complete document or none at all; :meth:`Catalog.refresh`
re-reads the manifest so long-lived readers pick up registrations and
removals made by the front-end after they started.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.errors import CatalogError
from repro.skeleton.loader import load
from repro.storage.chunked import ChunkedStore

_MANIFEST = "catalog.json"
_FORMAT = "repro-catalog-1"
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class CatalogEntry:
    """Registry metadata for one shredded document."""

    name: str
    #: ``"ignore"`` or ``"nodes"`` — how attributes were encoded at shred time.
    attributes: str = "ignore"
    megabytes: float = 0.0
    skeleton_nodes: int = 0
    dag_vertices: int = 0
    dag_edge_entries: int = 0
    chunks: int = 0
    shred_seconds: float = 0.0
    #: Tag sets available in the shredded schema (queries outside this set
    #: still work: missing sets are materialised empty at serve time).
    tags: list[str] = field(default_factory=list)
    #: Unique per registration (wall-clock stamp).  A name removed and
    #: re-registered gets a different stamp even for identical content, so
    #: :meth:`Catalog.refresh` can tell "same entry" from "replaced entry"
    #: and long-lived readers never keep a stale chunk-store cache.
    registered_at: float = 0.0


class Catalog:
    """A directory of registered documents, shredded once, served many times."""

    def __init__(self, root: str):
        self.root = root
        self._lock = threading.RLock()
        self._entries: dict[str, CatalogEntry] = {}
        self._stores: dict[str, ChunkedStore] = {}
        # One manifest-reading path for open and re-open: refresh() treats
        # a missing manifest as an empty catalog, same as a fresh directory.
        self.refresh()

    # -- registry --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[CatalogEntry]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def entry(self, name: str) -> CatalogEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = ", ".join(sorted(self._entries)) or "(catalog is empty)"
                raise CatalogError(
                    f"unknown catalog document {name!r}; known: {known}"
                ) from None

    def refresh(self) -> None:
        """Re-read the manifest from disk, picking up other processes' writes.

        Entries that disappeared **or changed** are dropped (with their
        cached stores — a re-registered name must never be served from the
        previous registration's cached chunks); entries that appeared are
        added.  Safe against a concurrent writer:
        the manifest is replaced atomically and every entry's chunk files
        are on disk before the entry is published, so whatever version this
        read observes is complete.  A missing manifest means the catalog is
        (still) empty — not an error, matching ``Catalog(dir)`` on a fresh
        directory.
        """
        manifest_path = os.path.join(self.root, _MANIFEST)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            manifest = {"format": _FORMAT, "documents": []}
        if manifest.get("format") != _FORMAT:
            raise CatalogError(f"not a repro catalog: {self.root}")
        fresh = {}
        for raw in manifest["documents"]:
            entry = CatalogEntry(**raw)
            fresh[entry.name] = entry
        with self._lock:
            for name in list(self._stores):
                # Dataclass equality over every field including the
                # registration stamp: removal and replacement both
                # invalidate; an unchanged entry keeps its warm store.
                if fresh.get(name) != self._entries.get(name):
                    del self._stores[name]
            self._entries = fresh

    def _write_manifest(self) -> None:
        manifest = {
            "format": _FORMAT,
            "documents": [asdict(self._entries[name]) for name in sorted(self._entries)],
        }
        os.makedirs(self.root, exist_ok=True)
        temp_path = os.path.join(self.root, _MANIFEST + ".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        os.replace(temp_path, os.path.join(self.root, _MANIFEST))

    # -- registration ----------------------------------------------------

    def add(self, name: str, xml: str, attributes: str = "ignore") -> CatalogEntry:
        """Register ``xml`` under ``name``: shred once, serve forever.

        The document is loaded over *all* tags (every element tag becomes a
        node set) and shredded into the chunk store; the original text is
        kept beside it for string-schema reloads.  The (possibly slow)
        parse + shred runs *outside* the registry lock so a registration
        never stalls concurrent query traffic; only the registry update is
        serialised.
        """
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid document name {name!r} (use letters, digits, '.', '_', '-')"
            )
        with self._lock:
            if name in self._entries:
                raise CatalogError(f"document {name!r} is already in the catalog")
        result = load(xml, tags=None, attributes=attributes)
        doc_dir = os.path.join(self.root, name)
        # Shred into a private staging directory and only rename it to the
        # published path under the registry lock: two racing registrations
        # of one name never share files, so the loser's cleanup can only
        # ever delete its own staging area — never the winner's chunks.
        staging = os.path.join(
            self.root, f".staging-{name}-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            return self._publish(name, xml, result, staging, doc_dir, attributes)
        finally:
            # A successful publish renamed the staging directory away; on
            # any failure (shred error, disk full, lost registration race)
            # this is the garbage collection for the half-written files.
            shutil.rmtree(staging, ignore_errors=True)

    def _publish(
        self, name: str, xml: str, result, staging: str, doc_dir: str, attributes: str
    ) -> CatalogEntry:
        """Stage, then atomically publish, one registration (see :meth:`add`)."""
        instance = result.instance
        os.makedirs(staging)
        with open(os.path.join(staging, "document.xml"), "w", encoding="utf-8") as handle:
            handle.write(xml)
        store = ChunkedStore.save(instance, os.path.join(staging, "chunks"))
        entry = CatalogEntry(
            name=name,
            attributes=attributes,
            megabytes=len(xml.encode("utf-8")) / 1e6,
            skeleton_nodes=result.skeleton_nodes,
            dag_vertices=instance.num_vertices,
            dag_edge_entries=instance.num_edge_entries,
            chunks=store.num_chunks,
            shred_seconds=result.parse_seconds,
            tags=[set_name for set_name in instance.schema if not set_name.startswith("#")],
            registered_at=time.time(),
        )
        with self._lock:
            if name in self._entries:
                # Lost a registration race: keep the winner's files (the
                # caller's finally clause garbage-collects our staging).
                raise CatalogError(f"document {name!r} is already in the catalog")
            if os.path.exists(doc_dir):
                # Unreferenced leftovers (a crash between a removal's manifest
                # write and its rmtree): no live entry points here.
                shutil.rmtree(doc_dir, ignore_errors=True)
            os.rename(staging, doc_dir)
            # Re-open at the published path — the staging store's directory
            # no longer exists, so its lazy chunk loads would miss.
            store = ChunkedStore(os.path.join(doc_dir, "chunks"))
            self._entries[name] = entry
            self._stores[name] = store
            self._write_manifest()
        return entry

    def add_file(self, name: str, path: str, attributes: str = "ignore") -> CatalogEntry:
        """Register the XML file at ``path`` (see :meth:`add`)."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add(name, handle.read(), attributes=attributes)

    def remove(self, name: str) -> None:
        """Drop ``name`` from the registry and delete its files."""
        with self._lock:
            self.entry(name)  # raises CatalogError when unknown
            del self._entries[name]
            self._stores.pop(name, None)
            self._write_manifest()
            shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)

    # -- serving ---------------------------------------------------------

    def xml(self, name: str) -> str:
        """The original document text (string-schema reloads only)."""
        self.entry(name)
        with open(
            os.path.join(self.root, name, "document.xml"), "r", encoding="utf-8"
        ) as handle:
            return handle.read()

    def store(self, name: str) -> ChunkedStore:
        """The (cached) chunk store of ``name``."""
        with self._lock:
            store = self._stores.get(name)
            if store is None:
                self.entry(name)
                store = ChunkedStore(os.path.join(self.root, name, "chunks"))
                self._stores[name] = store
            return store

    def load_instance(self, name: str, strings: tuple[str, ...] = ()):
        """A full instance of ``name`` over its tag schema plus ``strings``.

        Without string constraints this is the warm path: the instance is
        assembled from the shredded chunks (``serialize.load`` per distinct
        chunk, run-length repetition from the manifest) — the XML is never
        re-parsed.  With string constraints the original text is re-scanned
        once to compute the containment sets; callers cache the result.
        """
        if not strings:
            return self.store(name).assemble()
        entry = self.entry(name)
        return load(
            self.xml(name), tags=None, strings=list(strings), attributes=entry.attributes
        ).instance

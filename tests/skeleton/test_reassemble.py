"""Tests for lossless document reassembly (skeleton + containers + layout)."""

import pytest

from repro.corpora import generate
from repro.errors import ReproError
from repro.skeleton.loader import load
from repro.skeleton.reassemble import reassemble, reassemble_element
from repro.xmlio.dom import Element, parse_document


def dom_equal(a: Element, b: Element, compare_attributes: bool = True) -> bool:
    """Structural DOM equality (tags, attribute maps, ordered children)."""
    if a.tag != b.tag:
        return False
    if compare_attributes and a.attributes != b.attributes:
        return False
    if len(a.children) != len(b.children):
        return False
    for child_a, child_b in zip(a.children, b.children):
        if isinstance(child_a, str) != isinstance(child_b, str):
            return False
        if isinstance(child_a, str):
            if child_a != child_b:
                return False
        elif not dom_equal(child_a, child_b, compare_attributes):
            return False
    return True


def round_trip(xml_text: str, attributes: str = "ignore") -> str:
    result = load(xml_text, collect_containers=True, attributes=attributes)
    return reassemble(result.instance, result.containers, result.layout)


class TestRoundTrip:
    def test_simple_document(self):
        xml_text = "<a><b>hello</b><c>world</c></a>"
        assert dom_equal(
            parse_document(round_trip(xml_text)).root,
            parse_document(xml_text).root,
        )

    def test_mixed_content(self):
        xml_text = "<p>one <em>two</em> three <em>four</em> five</p>"
        assert dom_equal(
            parse_document(round_trip(xml_text)).root,
            parse_document(xml_text).root,
        )

    def test_shared_structure_with_distinct_text(self):
        # The two <i> elements share a skeleton vertex but carry different
        # text; reassembly must put each chunk back in its own element.
        xml_text = "<r><i>first</i><i>second</i><i>third</i></r>"
        restored = parse_document(round_trip(xml_text)).root
        texts = [child.string_value() for child in restored.elements("i")]
        assert texts == ["first", "second", "third"]

    def test_entities_round_trip(self):
        xml_text = "<a>fish &amp; chips &lt;now&gt;</a>"
        restored = parse_document(round_trip(xml_text)).root
        assert restored.string_value() == "fish & chips <now>"

    def test_attributes_nodes_mode(self):
        xml_text = '<cat><item id="i1" k="v">x</item><item id="i2" k="v">y</item></cat>'
        restored = parse_document(round_trip(xml_text, attributes="nodes")).root
        original = parse_document(xml_text).root
        assert dom_equal(restored, original)

    def test_attributes_ignored_by_default(self):
        xml_text = '<a id="gone"><b/></a>'
        restored = parse_document(round_trip(xml_text)).root
        assert restored.attributes == {}

    @pytest.mark.parametrize("corpus", ["dblp", "shakespeare", "baseball"])
    def test_corpus_round_trip(self, corpus):
        xml_text = generate(corpus, 8, seed=5).xml
        assert dom_equal(
            parse_document(round_trip(xml_text)).root,
            parse_document(xml_text).root,
            compare_attributes=False,  # corpora carry no attributes anyway
        )

    def test_comments_and_prolog_are_canonicalised_away(self):
        xml_text = "<?xml version='1.0'?><!--gone--><a>kept<!--also gone--></a>"
        restored = parse_document(round_trip(xml_text)).root
        assert restored.string_value() == "kept"


class TestErrors:
    def test_requires_all_tags(self):
        result = load("<a><b/></a>", tags=["a"], collect_containers=True)
        with pytest.raises(ReproError, match="tags=None"):
            reassemble_element(result.instance, result.containers, result.layout)

    def test_requires_document_instance(self):
        from repro.corpora.binary_tree import compressed_instance
        from repro.strings.containers import ContainerStore
        from repro.skeleton.layout import TextLayout

        with pytest.raises(ReproError, match="document root"):
            reassemble_element(compressed_instance(2), ContainerStore(), TextLayout())

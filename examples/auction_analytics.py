"""Scenario: ad-hoc analytics over XMark-style auction data.

Shows the Engine API with per-schema instance caching: one document, many
exploratory path queries, each answered on the compressed skeleton with
exact tree-level counts decoded from DAG selections.

Run:  python examples/auction_analytics.py [scale]
"""

import sys

from repro.corpora import generate
from repro.engine.pipeline import Engine

EXPLORATION = [
    ("items listed in Africa", "/site/regions/africa/item"),
    ("items anywhere", "//item"),
    ("items paid by credit card", '//item[payment["Creditcard"]]'),
    (
        "US-located items in Africa",
        '//item[location["United States"] and parent::africa]',
    ),
    ("items with a mailbox thread", "//item[mailbox/mail]"),
    ("bidders in open auctions", "//open_auction/bidder"),
    ("auction items without bids", "//open_auction[not(bidder)]"),
    ("people with a street address", "//person[address/street]"),
]


def main(scale: int = 1200) -> None:
    corpus = generate("xmark", scale)
    print(f"Auction site: {corpus.megabytes:.1f} MB of XML\n")

    # reparse_per_query=False caches the compressed instance per schema; the
    # paper's measured setup re-parses instead (both are supported).
    engine = Engine(corpus.xml, reparse_per_query=False)
    for label, xpath in EXPLORATION:
        result = engine.query(xpath)
        growth = result.decompression_ratio()
        print(f"{label:32s} {result.tree_count():>7,} matches "
              f"({result.dag_count():>4} DAG vertices, "
              f"{1000 * result.seconds:7.2f}ms, decompression x{growth:.2f})")

    print("\nQuery plan for the US/africa query (Figure 3 style):")
    print(engine.explain('//item[location["United States"] and parent::africa]'))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 1200)

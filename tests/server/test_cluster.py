"""Tests for the pre-forked worker fleet: routing, failover, drain.

Worker processes are spawned for real (``multiprocessing`` spawn start
method), so the module-scoped fleet is shared by every test that only
*reads* it; the destructive kill/respawn tests build their own.
"""

import http.client
import json
import os
import signal
import threading
import time

import pytest

from repro.engine.pipeline import Engine
from repro.errors import CatalogError, ClusterError, WorkerUnavailableError, XPathSyntaxError
from repro.server.catalog import Catalog
from repro.server.cluster import WorkerFleet, default_worker_count
from repro.server.http import create_server, wait_ready
from repro.server.service import decode_result

from tests.skeleton.test_loader import BIB_XML

TINY_XML = "<r><x><y/></x><x><y/></x><z/></r>"

QUERIES = ["//author", "//book/author", "/bib/paper/title", '//paper[author["Codd"]]']

#: Small but > 1 so routing decisions are real; spawn cost stays bounded.
WORKERS = 2


def wait_until(predicate, timeout=15.0, interval=0.05):
    """Poll ``predicate`` until true or the deadline passes (no fixed sleeps)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture(scope="module")
def shared_fleet(tmp_path_factory):
    root = tmp_path_factory.mktemp("cluster-cat")
    catalog = Catalog(str(root))
    catalog.add("bib", BIB_XML)
    catalog.add("tiny", TINY_XML)
    fleet = WorkerFleet(catalog, workers=WORKERS, health_interval=0.1)
    assert fleet.wait_ready(timeout=60)
    try:
        yield fleet
    finally:
        fleet.close()


@pytest.fixture
def own_fleet(tmp_path):
    """A private fleet for destructive tests; killed workers stay contained."""
    catalog = Catalog(str(tmp_path / "cat"))
    catalog.add("bib", BIB_XML)
    fleet = WorkerFleet(catalog, workers=WORKERS, health_interval=0.05)
    assert fleet.wait_ready(timeout=60)
    try:
        yield fleet
    finally:
        fleet.close()


class TestDispatch:
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_direct_evaluation(self, shared_fleet, query):
        response = shared_fleet.query("bib", query, paths=50)
        expected = decode_result(Engine(BIB_XML).query(query), paths=50)
        assert response["tree_count"] == expected["tree_count"]
        assert response["paths"] == expected["paths"]
        assert response["worker"] in range(WORKERS)

    def test_routing_is_deterministic(self, shared_fleet):
        shards = {shared_fleet.shard_of("bib", "//author") for _ in range(10)}
        assert len(shards) == 1

    def test_shard_affinity_one_worker_per_key(self, shared_fleet):
        """After traffic over several documents, each key is resident once."""
        for document in ("bib", "tiny"):
            for query in ("//x", "//author"):
                shared_fleet.query(document, query)
        stats = shared_fleet.stats_dict()
        residency: dict[str, int] = {}
        for row in stats["workers"]:
            for document, strings in row.get("resident") or []:
                key = (document, tuple(strings))
                assert key not in residency, f"{key} resident in two workers"
                residency[key] = row["worker"]
        assert ("bib", ()) in residency and ("tiny", ()) in residency
        assert residency[("bib", ())] == shared_fleet.shard_of("bib", "//author")

    def test_front_end_validation_without_ipc(self, shared_fleet):
        with pytest.raises(CatalogError, match="unknown catalog document"):
            shared_fleet.query("ghost", "//a")
        with pytest.raises(XPathSyntaxError):
            shared_fleet.query("bib", "//a[[")

    def test_string_schema_routes_and_answers(self, shared_fleet):
        query = '//paper[author["Codd"]]'
        response = shared_fleet.query("bib", query, paths=10)
        expected = decode_result(Engine(BIB_XML).query(query), paths=10)
        assert response["tree_count"] == expected["tree_count"]
        assert response["paths"] == expected["paths"]

    def test_late_registration_visible_to_workers(self, shared_fleet):
        """Documents added by the front-end after spawn are served (refresh)."""
        shared_fleet.catalog.add("late", "<d><item/><item/><item/></d>")
        response = shared_fleet.query("late", "//item")
        assert response["tree_count"] == 3

    def test_stats_shape(self, shared_fleet):
        shared_fleet.query("bib", "//author")
        stats = shared_fleet.stats_dict()
        cluster = stats["cluster"]
        assert cluster["workers"] == WORKERS
        assert cluster["alive"] == WORKERS
        assert cluster["dispatched"] >= cluster["completed"] > 0
        rows = stats["workers"]
        assert [row["worker"] for row in rows] == list(range(WORKERS))
        for row in rows:
            assert row["alive"] and isinstance(row["pid"], int)
            assert row["queue_depth"] >= 0
            assert "pool" in row and "service" in row

    def test_evict_drops_residency_everywhere(self, shared_fleet):
        shared_fleet.query("bib", "//author")
        assert shared_fleet.evict("bib") >= 1
        stats = shared_fleet.stats_dict()
        for row in stats["workers"]:
            assert ["bib", []] not in (row.get("resident") or [])
        # Still servable afterwards (cold reload from the chunk store).
        assert shared_fleet.query("bib", "//author")["tree_count"] > 0

    def test_explain_is_optimized_from_catalog_stats(self, shared_fleet):
        payload = shared_fleet.explain("bib", "//book/author")
        plan = payload["plan"]
        assert plan["optimizer"]["optimized"] is True
        assert plan["optimizer"]["stats_available"] is True
        assert "analyzed" not in payload
        assert "actual" not in plan["algebra"]

    def test_explain_analyze_measures_dispatcher_side(self, shared_fleet):
        # Actuals come from a private dispatcher-side load; the answer must
        # agree with what the shard's worker actually serves.
        payload = shared_fleet.explain("bib", "//book/author", analyze=True)
        assert payload["analyzed"] is True
        actual = payload["plan"]["algebra"]["actual"]
        served = shared_fleet.query("bib", "//book/author")
        assert actual["tree_count"] == served["tree_count"]
        assert actual["dag_count"] == served["dag_count"]


class TestFailover:
    def _shard_slot(self, fleet, document="bib"):
        return fleet._slot_for(document, ())

    def test_kill9_fails_inflight_with_503_error_then_respawns(self, own_fleet):
        """kill -9 mid-traffic: in-flight requests for the shard fail with
        WorkerUnavailableError (503; never a hang, never a wrong answer),
        the dispatcher respawns the worker, and later requests succeed."""
        expected = decode_result(Engine(BIB_XML).query("//author"))["tree_count"]
        slot = self._shard_slot(own_fleet)
        first_pid = slot.process.pid
        outcomes: list[object] = []

        def storm():
            for _ in range(40):
                try:
                    outcomes.append(own_fleet.query("bib", "//author")["tree_count"])
                except WorkerUnavailableError as error:
                    outcomes.append(error)
                time.sleep(0.002)

        thread = threading.Thread(target=storm)
        thread.start()
        time.sleep(0.02)  # let requests be genuinely in flight
        os.kill(first_pid, signal.SIGKILL)
        thread.join(timeout=60)
        assert not thread.is_alive(), "a request hung after the worker was killed"
        # Every outcome is either the correct count or the explicit
        # worker-unavailable error; nothing else ever surfaces.
        wrong = [
            o
            for o in outcomes
            if not isinstance(o, WorkerUnavailableError) and o != expected
        ]
        assert wrong == []
        assert any(isinstance(o, WorkerUnavailableError) for o in outcomes)
        # The monitor respawned the slot (same id, new pid) ...
        assert wait_until(
            lambda: slot.process.is_alive() and slot.process.pid != first_pid
        )
        # ... and the respawned worker answers correctly from the chunk store.
        response = own_fleet.query("bib", "//author", paths=10)
        assert response["tree_count"] == expected
        assert own_fleet.stats_dict()["cluster"]["respawns"] >= 1

    def test_dispatch_to_dead_worker_fails_fast(self, own_fleet):
        slot = self._shard_slot(own_fleet)
        pid = slot.process.pid
        os.kill(pid, signal.SIGKILL)
        wait_until(lambda: not (slot.process.pid == pid and slot.process.is_alive()))
        # Before or after the monitor's pass: a 503-class error or a correct
        # answer from the respawned worker — never a hang or wrong data.
        try:
            response = own_fleet.query("bib", "//author")
        except WorkerUnavailableError:
            pass
        else:
            expected = decode_result(Engine(BIB_XML).query("//author"))["tree_count"]
            assert response["tree_count"] == expected

    def test_crash_loop_backs_off_and_keeps_failing_fast(self, tmp_path):
        """A worker dying deterministically at startup must not spawn-storm.

        Corrupting the catalog manifest makes every respawned worker die
        during boot; the monitor accumulates strikes and throttles
        respawns, while queries keep failing fast (503-class) — never
        hanging — and shutdown stays clean.
        """
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(catalog, workers=1, health_interval=0.05)
        assert fleet.wait_ready(timeout=60)
        (tmp_path / "cat" / "catalog.json").write_text("{not json")
        os.kill(fleet._slots[0].process.pid, signal.SIGKILL)
        saw_unavailable = False
        deadline = time.monotonic() + 20
        while time.monotonic() < deadline and fleet._slots[0].strikes < 3:
            try:
                fleet.query("bib", "//author")
            except WorkerUnavailableError:
                saw_unavailable = True
            time.sleep(0.05)
        assert fleet._slots[0].strikes >= 3, "respawn storm was never throttled"
        assert saw_unavailable
        assert fleet.stats_dict()["cluster"]["respawns"] >= 3
        fleet.close()

    def test_close_is_graceful_and_final(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(catalog, workers=WORKERS, health_interval=0.1)
        assert fleet.wait_ready(timeout=60)
        assert fleet.query("bib", "//author")["tree_count"] > 0
        fleet.close()
        for slot in fleet._slots:
            assert not slot.process.is_alive()
        with pytest.raises(ClusterError, match="shutting down"):
            fleet.query("bib", "//author")
        fleet.close()  # idempotent


class TestClusterHTTP:
    @pytest.fixture
    def server(self, tmp_path):
        Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
        server = create_server(str(tmp_path / "cat"), port=0, workers=WORKERS)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        assert wait_ready(host, port, timeout=60)
        assert server.service.wait_ready(timeout=60)
        try:
            yield server
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()
            thread.join(timeout=10)

    def request(self, server, method, path, body=None):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=60)
        try:
            payload = json.dumps(body) if body is not None else None
            connection.request(method, path, payload)
            response = connection.getresponse()
            return response.status, json.loads(response.read().decode("utf-8"))
        finally:
            connection.close()

    def test_query_and_worker_tag(self, server):
        status, payload = self.request(
            server, "POST", "/query", {"document": "bib", "query": "//author", "paths": 5}
        )
        assert status == 200
        expected = decode_result(Engine(BIB_XML).query("//author"), paths=5)
        assert payload["tree_count"] == expected["tree_count"]
        assert payload["paths"] == expected["paths"]
        assert payload["worker"] in range(WORKERS)

    def test_healthz_and_stats_expose_fleet(self, server):
        status, payload = self.request(server, "GET", "/healthz")
        assert status == 200 and payload["workers"] == WORKERS
        self.request(server, "POST", "/query", {"document": "bib", "query": "//author"})
        status, stats = self.request(server, "GET", "/stats")
        assert status == 200
        assert stats["cluster"]["alive"] == WORKERS
        assert len(stats["workers"]) == WORKERS
        assert all("queue_depth" in row for row in stats["workers"])

    def test_dead_shard_maps_to_503(self, server):
        slot = server.service._slot_for("bib", ())
        os.kill(slot.process.pid, signal.SIGKILL)
        status, payload = self.request(
            server, "POST", "/query", {"document": "bib", "query": "//author"}
        )
        if status == 200:  # monitor already respawned: correctness still holds
            expected = decode_result(Engine(BIB_XML).query("//author"))
            assert payload["tree_count"] == expected["tree_count"]
        else:
            assert status == 503
            assert payload["error"]["kind"] == "worker-unavailable"
            assert "respawning" in payload["error"]["message"]

    def test_register_then_query_through_fleet(self, server):
        status, payload = self.request(
            server, "POST", "/catalog/tiny", {"xml": TINY_XML}
        )
        assert status == 201 and payload["name"] == "tiny"
        status, payload = self.request(
            server, "POST", "/query", {"document": "tiny", "query": "//x"}
        )
        assert status == 200 and payload["tree_count"] == 2

    def test_delete_then_reregister_serves_fresh_data(self, server):
        """Workers must drop stale chunks when a name is removed + re-added.

        Regression test for the evict/remove ordering: the catalog entry
        must leave the manifest *before* workers refresh, or a worker
        keeps its cached chunk store and answers from the old document.
        """
        self.request(server, "POST", "/catalog/doc", {"xml": "<d><x/><x/></d>"})
        status, payload = self.request(
            server, "POST", "/query", {"document": "doc", "query": "//x"}
        )
        assert status == 200 and payload["tree_count"] == 2
        status, _ = self.request(server, "DELETE", "/catalog/doc")
        assert status == 200
        status, payload = self.request(
            server, "POST", "/catalog/doc", {"xml": "<d><x/><x/><x/><x/><x/></d>"}
        )
        assert status == 201
        status, payload = self.request(
            server, "POST", "/query", {"document": "doc", "query": "//x"}
        )
        assert status == 200 and payload["tree_count"] == 5


class TestDefaults:
    def test_default_worker_count_positive(self):
        assert default_worker_count() >= 1

    def test_rejects_zero_workers(self, tmp_path):
        with pytest.raises(ClusterError, match=">= 1 worker"):
            WorkerFleet(Catalog(str(tmp_path / "cat")), workers=0)


class TestBackoffAmnesty:
    """Regression: respawn-backoff strikes must reset after a sustained
    healthy period, not persist until the next crash."""

    def test_strikes_reset_after_sustained_healthy_window(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(
            catalog, workers=WORKERS, health_interval=0.05, backoff_healthy_window=0.3
        )
        try:
            assert fleet.wait_ready(timeout=60)
            slot = fleet._slots[0]
            # Simulate a past crash-loop: strikes high, incarnation healthy
            # for longer than the amnesty window.
            slot.strikes = 4
            slot.last_spawn = time.monotonic() - 1.0
            assert wait_until(lambda: slot.strikes == 0, timeout=10)
            # The wiped slate means the *next* young death is strike one,
            # not strike five: respawn stays immediate, not backed off.
        finally:
            fleet.close()

    def test_strikes_persist_within_healthy_window(self, own_fleet):
        slot = own_fleet._slots[0]
        slot.strikes = 2
        slot.last_spawn = time.monotonic()  # freshly (re)spawned: no amnesty yet
        time.sleep(0.3)  # several monitor ticks at health_interval=0.05
        assert slot.strikes == 2


class TestBreakerRouting:
    """Open circuit breakers route shards around; a fleet-wide outage
    still dispatches (the primary absorbs it) instead of failing closed."""

    def test_open_breaker_routes_around_the_shard(self, own_fleet):
        primary = own_fleet.shard_of("bib", "//author")
        breaker = own_fleet._slots[primary].breaker
        for _ in range(breaker.threshold):
            breaker.record_failure()
        payload = own_fleet.query("bib", "//author")
        assert payload["worker"] != primary
        assert own_fleet.stats_dict()["cluster"]["breakers_open"] == 1
        health = own_fleet.health_dict()
        assert health["status"] == "degraded"
        assert primary in health["open_breakers"]

    def test_all_breakers_open_still_uses_primary(self, own_fleet):
        primary = own_fleet.shard_of("bib", "//author")
        for slot in own_fleet._slots:
            for _ in range(slot.breaker.threshold):
                slot.breaker.record_failure()
        payload = own_fleet.query("bib", "//author")  # fail open, not closed
        assert payload["worker"] == primary


class TestFleetQuarantineVisibility:
    """Quarantine happens inside a worker's own catalog; the front-end's
    health view must surface it — and see the recovery — across the
    process boundary."""

    def test_worker_quarantine_degrades_health_then_repair_recovers(
        self, own_fleet, tmp_path
    ):
        from repro.errors import IntegrityError, QuarantinedError

        from tests.server.test_catalog import corrupt_chunk

        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises((IntegrityError, QuarantinedError)):
            own_fleet.query("bib", "//author")
        # The verdict lives in the worker process; the union in
        # health_dict must still see it.
        wait_until(lambda: own_fleet.health_dict()["status"] == "degraded")
        health = own_fleet.health_dict()
        assert "bib" in health["quarantined"]
        # Operator repair from an independent handle (separate process in
        # production): the worker's stats probe re-reads the manifest, so
        # health recovers without a restart...
        Catalog(str(tmp_path / "cat")).verify(repair=True)
        wait_until(lambda: own_fleet.health_dict()["status"] == "ok")
        # ...and so does service itself.
        expected = decode_result(Engine(BIB_XML).query("//author"))["tree_count"]
        assert own_fleet.query("bib", "//author")["tree_count"] == expected


class TestTracePropagation:
    """Trace IDs cross the worker wire protocol and come back in payloads."""

    def test_trace_round_trips_through_worker(self, shared_fleet):
        payload = shared_fleet.query("bib", "//author", trace="feedface01234567")
        assert payload["trace"] == "feedface01234567"

    def test_no_trace_means_no_trace_key(self, shared_fleet):
        payload = shared_fleet.query("bib", "//author")
        assert "trace" not in payload


class TestRespawnMonotonicStats:
    """Regression: per-shard /stats counters must survive a worker respawn
    monotonically.  A killed-and-respawned shard starts its in-process
    counters at zero; the dispatcher carries the last probed totals
    forward and folds them in, so dashboards and the overload bench's
    sliding-window shed-rate never see counters jump backwards."""

    def _service_row(self, fleet, worker_id):
        stats = fleet.stats_dict()
        return stats["workers"][worker_id].get("service") or {}

    def test_counters_survive_kill_and_respawn(self, own_fleet):
        shard = own_fleet.shard_of("bib", "//author")
        for _ in range(5):
            own_fleet.query("bib", "//author")
        # A stats probe captures the pre-crash totals (the carry source).
        before = self._service_row(own_fleet, shard)
        assert before.get("requests", 0) >= 5
        before_requests = before["requests"]

        first_pid = own_fleet._slots[shard].process.pid
        os.kill(first_pid, signal.SIGKILL)
        assert wait_until(
            lambda: own_fleet._slots[shard].process is not None
            and own_fleet._slots[shard].process.pid != first_pid
            and own_fleet._slots[shard].process.is_alive(),
            timeout=30,
        ), "shard never respawned"

        # Fresh worker, zeroed in-process counters — the report must not
        # regress below the carried pre-crash totals...
        after_respawn = self._service_row(own_fleet, shard)
        assert after_respawn.get("requests", 0) >= before_requests

        # ...and new traffic accumulates on top of the carry.
        for _ in range(3):
            own_fleet.query("bib", "//author")
        after_traffic = self._service_row(own_fleet, shard)
        assert after_traffic["requests"] >= before_requests + 3
        # Monotone across repeated probes too.
        again = self._service_row(own_fleet, shard)
        assert again["requests"] >= after_traffic["requests"]

    def test_gauges_report_live_values_not_sums(self, own_fleet):
        shard = own_fleet.shard_of("bib", "//author")
        own_fleet.query("bib", "//author")
        own_fleet.stats_dict()  # capture a probe with resident >= 1
        first_pid = own_fleet._slots[shard].process.pid
        os.kill(first_pid, signal.SIGKILL)
        assert wait_until(
            lambda: own_fleet._slots[shard].process is not None
            and own_fleet._slots[shard].process.pid != first_pid
            and own_fleet._slots[shard].process.is_alive(),
            timeout=30,
        )
        stats = own_fleet.stats_dict()
        pool = stats["workers"][shard].get("pool") or {}
        # Capacity is a configuration gauge: summing the carry into it
        # would double it after one respawn.  The fleet default is 8.
        assert pool.get("capacity") == 8
        assert pool.get("resident", 0) <= pool["capacity"]

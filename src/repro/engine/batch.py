"""Batch evaluation of query workloads over one shared instance.

The paper's experiments always run a *mix* of queries against one document
(Figure 7), yet a straight loop over :class:`CompressedEvaluator` copies the
instance once per query and re-evaluates every shared algebra prefix (the
``//article`` of a DBLP mix, the ``{root}`` leaf of every absolute path).
:class:`BatchEvaluator` evaluates N compiled queries over **one** working
instance — one copy total — with a cross-query *common-subexpression
cache*: every algebra subtree is identified by its canonical
:meth:`~repro.xpath.algebra.AlgebraExpr.structural_key`, and the named
selection it materialised is reused by any later query containing the same
subtree.

Two invariants make this sound:

* **every set is carried through a rebuild** (section 3.3 of the paper):
  axis applications that partially decompress the instance copy all schema
  sets onto the rebuilt vertices, so a cached selection from query i is
  still a correct selection when query j > i forces a split;
* **results are snapshotted as durable selections**: the final selection of
  query i is copied into ``#q<i>`` (:func:`repro.model.schema.result_set`)
  before query i+1 runs, so dropping the engine temporaries at the end of
  the batch cannot invalidate any per-query result.

The cache is exact, not heuristic: keys are canonical structural tuples, so
two subtrees share iff they denote the same algebra expression (relative
queries additionally share the evaluator's single context selection).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Sequence

from repro.engine.evaluator import CompressedEvaluator
from repro.engine.results import BatchResult, BatchStats, QueryResult
from repro.model.instance import Instance
from repro.model.schema import is_result, is_temp, result_set
from repro.xpath.algebra import AlgebraExpr
from repro.xpath.compiler import compile_query


class BatchEvaluator(CompressedEvaluator):
    """Evaluates many algebra expressions over one shared working instance.

    Construction mirrors :class:`CompressedEvaluator` (one ``instance.copy()``
    unless ``copy=False``); :meth:`evaluate_batch` is the entry point.  The
    single-query :meth:`evaluate` is routed through the batch machinery so a
    ``BatchEvaluator`` can also be fed queries one at a time and still share
    subexpressions across them.
    """

    def __init__(
        self,
        instance: Instance,
        context: str | None = None,
        axes: str = "functional",
        copy: bool = True,
        short_circuit: bool = False,
    ):
        super().__init__(
            instance, context=context, axes=axes, copy=copy, short_circuit=short_circuit
        )
        self._memo: dict[tuple, str] = {}
        self._result_counter = 0
        self.stats = BatchStats()

    # ------------------------------------------------------------------

    def _eval(self, expr: AlgebraExpr) -> str:
        """Memoising wrapper: identical subtrees materialise once per batch."""
        self.stats.nodes_total += 1
        key = expr.structural_key()
        name = self._memo.get(key)
        if name is not None and self._instance.has_set(name):
            self.stats.nodes_reused += 1
            if self._trace is not None:
                self._trace[id(expr)] = name
            return name
        self.stats.nodes_evaluated += 1
        name = super()._eval(expr)
        self._memo[key] = name
        return name

    def _fresh_snapshot(self) -> str:
        """The next unused ``#q<i>`` name on the working instance."""
        while True:
            name = result_set(self._result_counter)
            self._result_counter += 1
            if not self._instance.has_set(name):
                return name

    def evaluate_batch(
        self,
        queries: Iterable[str | AlgebraExpr],
        keep_temps: bool = False,
        check: Callable[[], None] | None = None,
    ) -> BatchResult:
        """Evaluate ``queries`` (strings or compiled algebra) as one workload.

        Returns a :class:`BatchResult` whose per-query :class:`QueryResult`\\ s
        all share the final working instance, each holding its own durable
        ``#q<i>`` snapshot selection.  Temporaries (and with them the
        common-subexpression cache) are dropped at the end unless
        ``keep_temps`` is set.

        ``check`` is the cooperative cancellation seam: called before each
        per-query evaluation, it may raise (e.g.
        :class:`~repro.errors.DeadlineExceededError` from the serving layer
        once no waiter's deadline is still live) to abort the rest of the
        batch — bounding how long a slow workload occupies a batch slot to
        one query's evaluation, without preemption inside the engine.
        """
        exprs: Sequence[AlgebraExpr] = [
            compile_query(q) if isinstance(q, str) else q for q in queries
        ]
        before = self._before_sizes()
        # self.stats accumulates over the evaluator's lifetime; the returned
        # BatchResult gets a snapshot of just this batch's contribution.
        mark = (
            self.stats.queries,
            self.stats.nodes_total,
            self.stats.nodes_evaluated,
            self.stats.nodes_reused,
        )
        batch_started = time.perf_counter()
        snapshots: list[str] = []
        timings: list[float] = []
        for expr in exprs:
            if check is not None:
                check()
            self.stats.queries += 1
            started = time.perf_counter()
            name = self._eval(expr)
            snapshot = self._fresh_snapshot()
            # Snapshot the selection under a durable name (union with itself
            # is a one-pass bit copy on the mask plane).
            self._instance.combine_sets("union", name, name, snapshot)
            timings.append(time.perf_counter() - started)
            snapshots.append(snapshot)
        elapsed = time.perf_counter() - batch_started
        if not keep_temps:
            self._instance.drop_sets(
                name for name in self._instance.schema if is_temp(name)
            )
            self._memo.clear()
        final = self._instance  # axes may have rebuilt it during the loop
        results = [
            QueryResult(instance=final, set_name=snapshot, before=before, seconds=seconds)
            for snapshot, seconds in zip(snapshots, timings)
        ]
        batch_stats = BatchStats(
            queries=self.stats.queries - mark[0],
            nodes_total=self.stats.nodes_total - mark[1],
            nodes_evaluated=self.stats.nodes_evaluated - mark[2],
            nodes_reused=self.stats.nodes_reused - mark[3],
        )
        return BatchResult(results=results, seconds=elapsed, stats=batch_stats)

    def reset_results(self) -> None:
        """Drop every durable ``#q<i>`` snapshot from the working instance.

        The long-lived serving path (:mod:`repro.server.service`,
        ``mode="persistent"``) reuses one working instance across many
        batches: results are decoded to plain payloads immediately after
        each batch, after which their snapshot selections are dead weight —
        without this reset the schema (and with it every vertex mask) would
        grow by one set per query forever.  Do **not** call this while any
        undecoded :class:`QueryResult` of this evaluator is still alive.
        """
        self._instance.drop_sets(
            name for name in self._instance.schema if is_result(name)
        )
        self._result_counter = 0

    def evaluate(
        self,
        query: str | AlgebraExpr,
        keep_temps: bool = False,
        trace: dict[int, str] | None = None,
    ) -> QueryResult:
        """Single-query entry point, still sharing work with earlier calls.

        Note that ``keep_temps=False`` (the default) drops the
        common-subexpression cache along with the temporaries; pass
        ``keep_temps=True`` while streaming queries one at a time to keep
        sharing across calls, then drop temporaries yourself.  ``trace``
        behaves as in :meth:`CompressedEvaluator.evaluate` (memo hits are
        traced to the cached selection).
        """
        self._trace = trace
        try:
            return self.evaluate_batch([query], keep_temps=keep_temps).results[0]
        finally:
            self._trace = None


def evaluate_batch(
    instance: Instance,
    queries: Iterable[str | AlgebraExpr],
    context: str | None = None,
    axes: str = "functional",
    copy: bool = True,
) -> BatchResult:
    """One-shot convenience wrapper around :class:`BatchEvaluator`."""
    return BatchEvaluator(instance, context=context, axes=axes, copy=copy).evaluate_batch(
        queries
    )

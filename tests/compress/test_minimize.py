"""Tests for the compressor M(I) (Propositions 2.5-2.6)."""

from repro.compress.minimize import is_compressed, minimize
from repro.model.equivalence import equivalent
from repro.model.instance import Instance, tree_instance


class TestMinimize:
    def test_bib_tree_compresses_to_figure1b(self, bib_tree, figure2_compressed):
        minimal = minimize(bib_tree)
        assert minimal.num_vertices == 5
        assert equivalent(minimal, bib_tree)
        # Align schemas before comparing with the hand-built Figure 2(a).
        assert equivalent(minimal, figure2_compressed.reduct(minimal.schema))

    def test_multiplicity_edges_created(self, bib_tree):
        minimal = minimize(bib_tree)
        book = next(iter(minimal.members("book")))
        counts = sorted(count for _, count in minimal.children(book))
        assert counts == [1, 3]  # title x1, author x3

    def test_minimal_fixed_point(self, figure2_compressed):
        once = minimize(figure2_compressed)
        twice = minimize(once)
        assert once.num_vertices == twice.num_vertices
        assert equivalent(once, twice)

    def test_relational_table_compresses_to_c_plus_r(self):
        # Section 1: an R-row, C-column relational table compresses from
        # O(C*R) to O(C+R); with multiplicity edges the row fan-out is one
        # entry, so the vertex count is exactly 3 (cell, row, table).
        rows, cols = 50, 8
        spec = ("table", [("row", [("col", [])] * cols)] * rows)
        tree = tree_instance(spec)
        assert tree.num_vertices == 1 + rows + rows * cols
        minimal = minimize(tree)
        assert minimal.num_vertices == 3
        assert minimal.num_edge_entries == 2

    def test_unreachable_vertices_ignored(self):
        instance = Instance(["a"])
        instance.new_vertex(["a"])  # unreachable
        root = instance.new_vertex(["a"])
        instance.set_root(root)
        minimal = minimize(instance)
        assert minimal.num_vertices == 1

    def test_is_compressed(self, bib_tree, figure2_compressed):
        assert not is_compressed(bib_tree)
        assert is_compressed(figure2_compressed)
        assert is_compressed(minimize(bib_tree))

    def test_empty_labels_share(self):
        # Unlabeled leaves are all identical.
        spec = ((), [((), []), ((), []), ((), [])])
        minimal = minimize(tree_instance(spec))
        assert minimal.num_vertices == 2
        assert minimal.children(minimal.root)[0][1] == 3

    def test_deep_chain(self):
        instance = Instance()
        vertex = instance.new_vertex()
        for _ in range(30_000):
            vertex = instance.new_vertex(children=[(vertex, 1)])
        instance.set_root(vertex)
        minimal = minimize(instance)
        # A chain of unlabeled vertices is already minimal (each vertex has a
        # distinct unfolding depth).
        assert minimal.num_vertices == 30_001

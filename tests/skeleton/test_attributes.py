"""Tests for the attribute-node extension (section 1's "not critical" note)."""

import pytest

from repro.engine.pipeline import load_for_query, query
from repro.errors import ReproError
from repro.skeleton.loader import load, load_instance

DOC = """
<catalog>
  <item id="i1" cat="tools"><name>hammer</name></item>
  <item id="i2" cat="tools"><name>wrench</name></item>
  <item id="i3" cat="toys"><name>kite</name></item>
</catalog>
"""


class TestAttributeNodes:
    def test_ignored_by_default(self):
        instance = load_instance(DOC)
        assert not instance.has_set("@id")

    def test_nodes_mode_creates_attribute_sets(self):
        result = load(DOC, attributes="nodes")
        instance = result.instance
        assert instance.has_set("@id")
        assert instance.has_set("@cat")
        # Skeleton nodes now include 6 attribute nodes.
        assert result.skeleton_nodes == 1 + 1 + 3 + 3 + 6

    def test_attribute_values_matchable(self):
        instance = load(DOC, strings=["toys"], attributes="nodes").instance
        from repro.model.schema import string_set

        members = instance.members(string_set("toys"))
        cat_nodes = instance.members("@cat")
        assert members & cat_nodes  # the cat="toys" attribute node matched

    def test_query_with_attribute_step(self):
        result = query(DOC, "//item/@id")
        assert result.tree_count() == 3

    def test_query_with_attribute_condition(self):
        result = query(DOC, '//item[@cat["toys"]]/name')
        assert result.tree_count() == 1

    def test_load_for_query_autodetects(self):
        loaded = load_for_query(DOC, "//item/@cat")
        assert loaded.instance.has_set("@cat")

    def test_attribute_containers(self):
        result = load(DOC, attributes="nodes", collect_containers=True)
        container = result.containers.container("@cat")
        assert container is not None
        assert sorted(container.chunks) == ["tools", "tools", "toys"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="attributes mode"):
            load(DOC, attributes="maybe")

    def test_attribute_sharing(self):
        # The skeleton ignores attribute *values*, so all three items share
        # one vertex; a string constraint on a value splits the sharing.
        plain = load(DOC, attributes="nodes").instance
        assert len(plain.members("item")) == 1
        split = load(DOC, attributes="nodes", strings=["toys"]).instance
        assert len(split.members("item")) == 2

    def test_engine_caches_attribute_schema(self):
        from repro.engine.pipeline import Engine

        engine = Engine(DOC, reparse_per_query=False)
        assert engine.query("//item/@id").tree_count() == 3
        assert engine.query("//item/@id").tree_count() == 3

#!/usr/bin/env python
"""Overload behaviour: bounded latency and honest shedding at 2x capacity.

PR 6's admission control exists so that overload degrades *predictably*:
accepted requests keep a bounded latency and everything over the bound is
shed at the door with an honest ``429 + Retry-After`` instead of queueing
into collapse.  This benchmark measures exactly that contract over real
HTTP against a live ``repro serve`` with a bounded admission queue:

* **capacity phase** — as many closed-loop clients as the admission queue
  admits measure the sustained accepted throughput and its latency
  profile (no shedding expected: the load fits);
* **overload phase** — twice the capacity clients hammer the same server;
  the offered rate is ~2x what the queue admits, so the server must split
  the stream into accepted requests (whose p50/p99 stay bounded) and
  sheds (whose replies must *all* be ``429`` with a ``Retry-After``
  header and an ``overloaded`` envelope — no other failure mode).

The run itself gates (exit 1) on three properties:

* the overload phase actually shed (otherwise nothing was measured);
* every non-200 during overload was an honest 429;
* the accepted-request p99 under overload stayed within
  ``--p99-headroom`` x the capacity-phase p99 (plus a small absolute
  grace for scheduler noise) — bounded latency, the whole point;
* a **control** phase drives the identical overload at an *unbounded*
  server: its median latency must come out worse than the bounded
  server's — the direct measurement of what shedding at the door buys.

Results go to ``BENCH_overload.json`` (headline: ``accepted_rps``).

Usage::

    PYTHONPATH=src python benchmarks/bench_overload.py [--smoke]
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import re
import shutil
import socket
import statistics
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from corpus_cache import cached_xml
from repro.corpora import relational
from repro.engine.pipeline import Engine
from repro.server.catalog import Catalog
from repro.server.http import wait_ready
from repro.server.metrics import histogram_series, parse_prometheus_text, quantile_bounds
from repro.server.service import decode_result

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

#: Pre-flight correctness checks (fixed queries, answers verified).
QUERIES = [
    "/table/row/col0",
    '//row[col1["r1c1"]]/col2',
    "//col3/following-sibling::col5",
]


def load_query(index: int) -> str:
    """A string-predicate query whose needle is unique per request.

    Each distinct needle is a distinct string schema, hence a distinct
    resident-master key in the serving pool — so every request does
    *real* work (a pool miss, an instance load, an evaluation over the
    kept text; a needle that matches nothing costs the same scan as one
    that does).  That is the workload shape admission control exists
    for: one hot cached query would never build a queue no matter how
    many clients fired it.
    """
    return f'//row[col1["needle-{index}"]]/col2'

#: Admission bound under test: at most this many requests in flight.
MAX_QUEUE = 4

#: Result paths requested during the pre-flight correctness check.
CHECK_PATHS = 25


def percentile(samples: list[float], fraction: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, math.ceil(fraction * len(ranked)) - 1))
    return ranked[index]


def canonical(payload: dict) -> str:
    return json.dumps(
        {"tree_count": payload["tree_count"], "paths": payload.get("paths", [])},
        sort_keys=True,
    )


class BoundedServer:
    """A live ``repro serve`` **subprocess** with a bounded admission queue.

    The server must not share this process's GIL: an in-process server
    steals interpreter time from the very clients trying to overload it,
    so the offered pressure collapses to whatever the scheduler happens
    to interleave and the shed rate becomes noise.  A real child process
    serves at its own pace while this process generates load at full
    speed — the same separation a production deployment has.
    """

    def __init__(self, catalog_dir: str, max_queue: int, frontend: str = "async"):
        script = (
            "from repro.server.http import serve; "
            f"serve({catalog_dir!r}, port=0, max_queue={max_queue}, "
            f"frontend={frontend!r})"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")])
        )
        self.process = subprocess.Popen(
            [sys.executable, "-c", script],
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            banner = self.process.stderr.readline()  # blocks until it serves
            match = re.search(r"http://([\d.]+):(\d+)", banner)
            if match is None:
                raise AssertionError(f"unexpected serve banner: {banner!r}")
            self.host, self.port = match.group(1), int(match.group(2))
            if not wait_ready(self.host, self.port, timeout=60):
                raise AssertionError(f"server on port {self.port} never became ready")
        except BaseException:
            self.close()
            raise

    def connect(self) -> http.client.HTTPConnection:
        connection = http.client.HTTPConnection(self.host, self.port, timeout=120)
        connection.connect()
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    def admission_stats(self) -> dict:
        connection = self.connect()
        try:
            connection.request("GET", "/stats")
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            return payload.get("admission", {})
        finally:
            connection.close()

    def scrape_metrics(self) -> dict:
        """GET /metrics, strictly parsed — invalid exposition fails the run."""
        connection = self.connect()
        try:
            connection.request("GET", "/metrics")
            response = connection.getresponse()
            text = response.read().decode("utf-8")
            if response.status != 200:
                raise AssertionError(f"/metrics returned {response.status}: {text[:200]}")
            return parse_prometheus_text(text)
        finally:
            connection.close()

    def close(self) -> None:
        self.process.terminate()
        try:
            self.process.wait(timeout=15)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()
        if self.process.stderr is not None:
            self.process.stderr.close()


def verify_correctness(under_test: BoundedServer, xml: str) -> int:
    """Every query's served answer must be byte-identical to direct evaluation."""
    connection = under_test.connect()
    try:
        for query in QUERIES:
            body = json.dumps({"document": "rel", "query": query, "paths": CHECK_PATHS})
            connection.request("POST", "/query", body)
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            if response.status != 200:
                raise AssertionError(f"pre-flight error {response.status}: {payload}")
            direct = decode_result(Engine(xml).query(query), paths=CHECK_PATHS)
            if canonical(payload) != canonical(direct):
                raise AssertionError(f"divergence on {query!r}")
    finally:
        connection.close()
    return len(QUERIES)


def reconcile_metrics(
    families: dict, accepted: int, shed: int, client_p99_ms: float
) -> tuple[dict, list[str]]:
    """Cross-check the /metrics scrape against the bench's own counts.

    The server's numbers must *equal* the client's, not approximate them:
    every accepted request was one 200 on ``/query`` (plus the pre-flight
    checks), every shed was one 429, and the server-side latency
    histogram must place its p99 at or below what the client measured
    (the client's clock includes the server's and the network's).
    Returns ``(summary, problems)``.
    """
    problems: list[str] = []
    request_samples = families["repro_http_requests_total"]["samples"]

    def count(status: str) -> float:
        return sum(
            value for _, labels, value in request_samples
            if labels.get("route") == "/query" and labels.get("status") == status
        )

    served_200 = count("200")
    served_429 = count("429")
    expected_200 = accepted + len(QUERIES)  # pre-flight checks are 200s too
    if served_200 != expected_200:
        problems.append(
            f"/metrics 200-count {served_200:.0f} != client accepted+preflight "
            f"{expected_200}"
        )
    if served_429 != shed:
        problems.append(f"/metrics 429-count {served_429:.0f} != client sheds {shed}")

    shed_total = sum(
        value
        for _, _, value in families["repro_admission_shed_total"]["samples"]
    )
    if shed_total != shed:
        problems.append(
            f"repro_admission_shed_total {shed_total:.0f} != client sheds {shed}"
        )

    buckets, _, histogram_count = histogram_series(
        families["repro_http_request_seconds"]["samples"],
        "repro_http_request_seconds",
        route="/query", status="200",
    )
    if histogram_count != expected_200:
        problems.append(
            f"latency histogram count {histogram_count:.0f} != accepted+preflight "
            f"{expected_200}"
        )
    lower_s, upper_s = quantile_bounds(buckets, 0.99)
    # Server-side p99 lives in [lower_s, upper_s]; the client's p99 adds
    # queueing/network on top, so the server's lower edge must not exceed
    # it (grace for bucket granularity and scheduler noise).
    p99_consistent = 1000 * lower_s <= client_p99_ms + 50.0
    if not p99_consistent:
        problems.append(
            f"server-side p99 lower bound {1000 * lower_s:.1f}ms exceeds "
            f"client-measured p99 {client_p99_ms:.1f}ms"
        )
    summary = {
        "query_200_total": served_200,
        "query_429_total": served_429,
        "admission_shed_total": shed_total,
        "latency_histogram_count": histogram_count,
        "p99_bucket_bounds_ms": [
            round(1000 * lower_s, 2),
            None if upper_s == math.inf else round(1000 * upper_s, 2),
        ],
        "p99_consistent_with_client": p99_consistent,
        "families_scraped": len(families),
    }
    return summary, problems


def drive(under_test: BoundedServer, clients: int, seconds: float) -> dict:
    """Closed-loop clients for ``seconds``; split accepted vs shed outcomes."""
    stop_at = time.perf_counter() + seconds
    lock = threading.Lock()
    accepted_latencies: list[float] = []
    sheds = 0
    dishonest: list[str] = []
    failures: list[str] = []
    counter = {"next": 0}

    def worker(index: int):
        nonlocal sheds
        connection = under_test.connect()
        local_latencies: list[float] = []
        local_sheds = 0
        try:
            while time.perf_counter() < stop_at:
                with lock:
                    cursor = counter["next"]
                    counter["next"] = cursor + 1
                query = load_query(cursor)
                body = json.dumps({"document": "rel", "query": query})
                started = time.perf_counter()
                connection.request("POST", "/query", body)
                response = connection.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
                elapsed = time.perf_counter() - started
                if response.status == 200:
                    local_latencies.append(elapsed)
                elif response.status == 429:
                    local_sheds += 1
                    retry_after = response.getheader("Retry-After")
                    kind = payload.get("error", {}).get("kind")
                    if not retry_after or int(retry_after) < 1 or kind != "overloaded":
                        dishonest.append(
                            f"429 without honest envelope: Retry-After={retry_after!r} "
                            f"kind={kind!r}"
                        )
                    # A paced retry, not a spin: enough backoff to keep the
                    # shed loop from monopolising the process, far less than
                    # Retry-After so the offered pressure stays ~2x.
                    time.sleep(0.002)
                else:
                    dishonest.append(f"unexpected status {response.status}: {payload}")
        except Exception as error:  # noqa: BLE001 - reported via failures
            failures.append(repr(error))
        finally:
            connection.close()
            with lock:
                accepted_latencies.extend(local_latencies)
                sheds += local_sheds

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    if failures:
        raise AssertionError(f"client failures: {failures[:3]}")
    accepted = len(accepted_latencies)
    return {
        "clients": clients,
        "wall_seconds": round(wall, 3),
        "accepted": accepted,
        "shed": sheds,
        "offered_rps": round((accepted + sheds) / wall, 1),
        "accepted_rps": round(accepted / wall, 1),
        "shed_rps": round(sheds / wall, 1),
        "shed_fraction": round(sheds / max(1, accepted + sheds), 3),
        "latency_p50_ms": round(1000 * percentile(accepted_latencies, 0.50), 2),
        "latency_p99_ms": round(1000 * percentile(accepted_latencies, 0.99), 2),
        "latency_mean_ms": round(1000 * statistics.fmean(accepted_latencies), 2),
        "dishonest_responses": dishonest[:5],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small corpus, short run")
    parser.add_argument(
        "--seconds", type=float, default=None,
        help="drive duration per phase (default 6, smoke 2)",
    )
    parser.add_argument(
        "--p99-headroom", type=float, default=10.0,
        help="overload p99 must stay within this multiple of the capacity p99",
    )
    parser.add_argument(
        "--frontend", choices=("async", "threaded"), default="async",
        help="HTTP front-end for the servers under test (matches `repro serve`)",
    )
    parser.add_argument(
        "--output", default=os.path.join(REPO_ROOT, "BENCH_overload.json"),
    )
    args = parser.parse_args(argv)
    seconds = args.seconds if args.seconds is not None else (2.0 if args.smoke else 6.0)

    rows, cols = (60, 8) if args.smoke else (250, 10)
    xml = cached_xml(
        "relational",
        lambda: relational.generate_xml(rows, cols, distinct_texts=True).xml,
        rows=rows,
        cols=cols,
        distinct=True,
    )

    catalog_dir = tempfile.mkdtemp(prefix="repro-bench-overload-")
    report: dict = {
        "benchmark": "overload",
        "smoke": args.smoke,
        "frontend": args.frontend,
        "max_queue": MAX_QUEUE,
        "corpus": {"rows": rows, "cols": cols},
        "seconds_per_phase": seconds,
        "min_accepted_rps_required": 1.0,
        "p99_headroom_required": args.p99_headroom,
    }
    problems: list[str] = []
    try:
        Catalog(catalog_dir).add("rel", xml)
        under_test = BoundedServer(
            catalog_dir, max_queue=MAX_QUEUE, frontend=args.frontend
        )
        try:
            report["checked_byte_identical"] = verify_correctness(under_test, xml)
            # Capacity: exactly as many closed-loop clients as admission
            # slots — the load fits, nothing sheds, p99 is the baseline.
            capacity = drive(under_test, clients=MAX_QUEUE, seconds=seconds)
            # Overload: 4x the clients offer well over the accepted capacity.
            overload = drive(under_test, clients=4 * MAX_QUEUE, seconds=seconds)
            stats = under_test.admission_stats()
            # The same server's /metrics must parse strictly and agree —
            # exactly — with the client-side split of accepted vs shed.
            metrics_summary, metrics_problems = reconcile_metrics(
                under_test.scrape_metrics(),
                accepted=capacity["accepted"] + overload["accepted"],
                shed=capacity["shed"] + overload["shed"],
                client_p99_ms=overload["latency_p99_ms"],
            )
        finally:
            under_test.close()
        # Control: the identical overload against an *unbounded* server.
        # Everything is admitted, everything queues — the collapse mode
        # admission control exists to prevent.
        unbounded = BoundedServer(catalog_dir, max_queue=0, frontend=args.frontend)
        try:
            control = drive(unbounded, clients=4 * MAX_QUEUE, seconds=seconds)
        finally:
            unbounded.close()
    finally:
        shutil.rmtree(catalog_dir, ignore_errors=True)

    report["capacity"] = capacity
    report["overload"] = overload
    report["unbounded_control"] = control
    report["admission"] = stats
    report["metrics"] = metrics_summary
    report["metrics_reconciled"] = not metrics_problems
    problems.extend(metrics_problems)
    report["accepted_rps"] = overload["accepted_rps"]
    # Bounded either absolutely (within the headroom of the uncontended
    # p99) or relatively (comparable to the unbounded collapse case at the
    # same offered load) — scheduler noise moves both yardsticks, so
    # meeting either one is the honest pass.  The relative term carries
    # its own headroom: when the machine absorbs the offered load (few
    # sheds), bounded and unbounded p99 are the *same* distribution plus
    # noise, and a bare `control p99` bound flakes on that noise.
    p99_bound_ms = max(
        args.p99_headroom * capacity["latency_p99_ms"] + 100.0,
        1.5 * control["latency_p99_ms"] + 100.0,
    )
    report["p99_bound_ms"] = round(p99_bound_ms, 2)
    report["p99_bounded"] = overload["latency_p99_ms"] <= p99_bound_ms
    report["p50_vs_unbounded"] = round(
        overload["latency_p50_ms"] / max(0.001, control["latency_p50_ms"]), 3
    )

    if overload["shed"] == 0:
        problems.append("overload phase shed nothing: the bound was never hit")
    if overload["dishonest_responses"] or capacity["dishonest_responses"]:
        problems.append(
            f"dishonest overload responses: "
            f"{(overload['dishonest_responses'] + capacity['dishonest_responses'])[:3]}"
        )
    if not report["p99_bounded"]:
        problems.append(
            f"accepted p99 {overload['latency_p99_ms']:.1f}ms exceeded the bound "
            f"{p99_bound_ms:.1f}ms (max of capacity p99 "
            f"{capacity['latency_p99_ms']:.1f}ms x {args.p99_headroom:g} + 100ms "
            f"and the unbounded control's p99 "
            f"{control['latency_p99_ms']:.1f}ms x 1.5 + 100ms)"
        )
    if overload["latency_p50_ms"] > 1.25 * control["latency_p50_ms"]:
        problems.append(
            f"shedding bought nothing: bounded p50 {overload['latency_p50_ms']:.1f}ms "
            f"is over 1.25x the unbounded p50 {control['latency_p50_ms']:.1f}ms"
        )
    report["honest_429s"] = not (
        overload["dishonest_responses"] or capacity["dishonest_responses"]
    )
    report["passed"] = not problems

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    print(
        f"capacity : {capacity['accepted_rps']:.1f} rps accepted, "
        f"p50 {capacity['latency_p50_ms']:.1f}ms p99 {capacity['latency_p99_ms']:.1f}ms"
    )
    print(
        f"overload : {overload['offered_rps']:.1f} rps offered -> "
        f"{overload['accepted_rps']:.1f} accepted + {overload['shed_rps']:.1f} shed "
        f"({100 * overload['shed_fraction']:.0f}%), "
        f"p50 {overload['latency_p50_ms']:.1f}ms p99 {overload['latency_p99_ms']:.1f}ms "
        f"(bound {p99_bound_ms:.1f}ms)"
    )
    print(
        f"control  : unbounded queue at the same offered load: "
        f"p50 {control['latency_p50_ms']:.1f}ms p99 {control['latency_p99_ms']:.1f}ms "
        f"(bounded p50 is {report['p50_vs_unbounded']:.2f}x of it)"
    )
    print(
        f"metrics  : {metrics_summary['families_scraped']} families scraped, "
        f"200s {metrics_summary['query_200_total']:.0f} "
        f"429s {metrics_summary['query_429_total']:.0f} "
        f"(sheds reconcile: {metrics_summary['admission_shed_total']:.0f}), "
        f"server p99 in {metrics_summary['p99_bucket_bounds_ms']} ms "
        f"({'consistent' if metrics_summary['p99_consistent_with_client'] else 'INCONSISTENT'} "
        f"with client)"
    )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    print(f"report -> {args.output}")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())

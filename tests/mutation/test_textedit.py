"""Unit tests for tree-path addressing and text splicing.

:func:`repro.mutation.textedit.locate` must resolve element-child
ordinal paths to the exact byte span of the addressed element —
attributes never consume ordinals, self-closing elements are spans too
— and :func:`repro.mutation.textedit.splice` must edit the kept source
text so that re-parsing it yields the post-mutation document.
"""

import pytest

from repro.errors import MutationError
from repro.mutation.ops import Mutation
from repro.mutation.textedit import locate, splice

DOC = "<a><b><c>x</c></b><b/><d attr='v'><e>y</e></d></a>"


def test_locate_root():
    span = locate(DOC, ())
    assert (span.start, span.end) == (0, len(DOC))
    assert span.name == "a"
    assert not span.self_closing


def test_locate_nested_ordinals():
    span = locate(DOC, (0, 0))
    assert DOC[span.start:span.end] == "<c>x</c>"
    span = locate(DOC, (2, 0))
    assert DOC[span.start:span.end] == "<e>y</e>"


def test_locate_self_closing():
    span = locate(DOC, (1,))
    assert DOC[span.start:span.end] == "<b/>"
    assert span.self_closing


def test_locate_rejects_missing():
    with pytest.raises(MutationError):
        locate(DOC, (9,))
    with pytest.raises(MutationError):
        locate(DOC, (0, 0, 0))  # <c> has no element children


def test_splice_delete():
    new_text, removed, inserted = splice(DOC, Mutation("delete_subtree", (0, 0)))
    assert new_text == "<a><b></b><b/><d attr='v'><e>y</e></d></a>"
    assert removed == "<c>x</c>"
    assert inserted == ""


def test_splice_replace():
    new_text, removed, inserted = splice(
        DOC, Mutation("replace_subtree", (1,), xml="<f>z</f>")
    )
    assert new_text == "<a><b><c>x</c></b><f>z</f><d attr='v'><e>y</e></d></a>"
    assert removed == "<b/>"
    assert inserted == "<f>z</f>"


def test_splice_append_into_open_element():
    new_text, _, inserted = splice(
        DOC, Mutation("append_child", (0,), xml="<g/>")
    )
    assert new_text == "<a><b><c>x</c><g/></b><b/><d attr='v'><e>y</e></d></a>"
    assert inserted == "<g/>"


def test_splice_append_reopens_self_closing():
    new_text, _, _ = splice(DOC, Mutation("append_child", (1,), xml="<g/>"))
    assert "<b><g/></b>" in new_text


def test_splice_append_keeps_attributes_when_reopening():
    text = "<a><d x='1' y=\"2\"/></a>"
    new_text, _, _ = splice(text, Mutation("append_child", (0,), xml="<g/>"))
    assert new_text == "<a><d x='1' y=\"2\"><g/></d></a>"


def test_splice_append_to_root():
    new_text, _, _ = splice(DOC, Mutation("append_child", (), xml="<z/>"))
    assert new_text.endswith("<z/></a>")

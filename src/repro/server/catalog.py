"""A persistent multi-document catalog over the chunked store.

The serving model of the paper — and of Arion et al.'s path-partitioned
stores — is *load once, query forever*: a document is shredded into the
compressed chunk store exactly once, at registration time, and every later
query is answered from the resident (or quickly re-assembled) instance
without touching the XML again.

A :class:`Catalog` is a directory::

    <root>/catalog.json            registry: name -> entry metadata
    <root>/<name>/document.xml     the original text (string-schema reloads)
    <root>/<name>/chunks/          the shredded instance (storage.chunked)
    <root>/<name>/stats.json       optimizer statistics (PR 9)
    <root>/<name>/journal.wal      mutation write-ahead journal (live docs)
    <root>/<name>/v<N>/            a mutated version's document.xml/chunks/stats

Registration publishes into the document directory itself (the layout
above, ``version_dir == ""``); each :meth:`mutate` publishes a complete
new version *directory* ``v<N>`` beside it and flips the manifest entry's
``version_dir`` — readers holding the previous version keep valid paths
until the post-publish GC, and a crashed mutation can never half-overwrite
the live version.  The manifest rewrite is the single commit point for
both paths.

Documents are registered with **every** tag as a node set, so any tag-only
query can be served from the shredded chunks alone (a *warm start*: one
:func:`repro.model.serialize.load` per distinct chunk, no XML parse).  Only
queries with string-containment predicates need the original text again —
string sets are computed by the one-scan matcher at load time — and the
resulting instances are cached upstream in the server's instance pool,
keyed by their string schema.

All catalog methods are thread-safe: registration and removal serialise on
one lock, and the manifest is rewritten atomically (temp file + rename).

The on-disk layout is also the fleet's replication channel: any number of
*reader* processes (the pre-forked workers of :mod:`repro.server.cluster`)
may open the same directory concurrently with one writer (the front-end).
A document's chunk files are fully written *before* its manifest entry is
published, and the manifest itself is replaced atomically, so a reader
either sees a complete document or none at all; :meth:`Catalog.refresh`
re-reads the manifest so long-lived readers pick up registrations and
removals made by the front-end after they started.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import asdict, dataclass, field

from repro.compress.stats import STATS_FORMAT_VERSION, DocumentStats
from repro.errors import CatalogError, IntegrityError, QuarantinedError, ReproError
from repro.mutation.apply import apply_mutations
from repro.mutation.ops import as_mutations
from repro.server.journal import JOURNAL_FILE, Journal
from repro.server.resilience import FAULTS
from repro.skeleton.loader import load
from repro.storage.chunked import ChunkedStore

_MANIFEST = "catalog.json"
_FORMAT = "repro-catalog-1"
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")
_STATS_FILE = "stats.json"

#: Version of the shredded skeleton layout an entry was published with.
#: Stamped alongside ``stats_version`` so readers can tell "registered by
#: an older build" apart from "stats file torn" without probing the disk.
SKELETON_FORMAT_VERSION = 1

#: Orphaned staging directories older than this are GCed even when their
#: recorded pid appears alive (pids recycle; no registration takes an hour).
_STAGING_MAX_AGE = 3600.0

#: A manifest temp file older than this is a torn write (a live writer
#: renames it within milliseconds) and is swept at startup recovery.
_MANIFEST_TMP_MAX_AGE = 60.0


@dataclass
class CatalogEntry:
    """Registry metadata for one shredded document."""

    name: str
    #: ``"ignore"`` or ``"nodes"`` — how attributes were encoded at shred time.
    attributes: str = "ignore"
    megabytes: float = 0.0
    skeleton_nodes: int = 0
    dag_vertices: int = 0
    dag_edge_entries: int = 0
    chunks: int = 0
    shred_seconds: float = 0.0
    #: Tag sets available in the shredded schema (queries outside this set
    #: still work: missing sets are materialised empty at serve time).
    tags: list[str] = field(default_factory=list)
    #: Unique per registration (wall-clock stamp).  A name removed and
    #: re-registered gets a different stamp even for identical content, so
    #: :meth:`Catalog.refresh` can tell "same entry" from "replaced entry"
    #: and long-lived readers never keep a stale chunk-store cache.
    registered_at: float = 0.0
    #: Version stamps of what was persisted at registration time.  Both
    #: default to 0, so entries published by builds that predate document
    #: statistics deserialise cleanly — and ``stats_version == 0`` (or any
    #: value other than the current :data:`~repro.compress.stats.STATS_FORMAT_VERSION`)
    #: makes :meth:`Catalog.document_stats` answer ``None``: the optimizer
    #: falls back to the unoptimized plan instead of erroring.
    stats_version: int = 0
    skeleton_version: int = 0
    #: Monotonic per-catalog document version.  Allocated from the
    #: manifest's ``next_version`` counter on every publish — registration,
    #: re-registration under the same name, and each mutation — so caches
    #: keyed on it (instance pools, optimized plans, worker masters) can
    #: never confuse two states of a name, even when two registrations land
    #: on the same ``registered_at`` wall-clock stamp.
    doc_version: int = 0
    #: Subdirectory of ``<root>/<name>/`` holding this version's files;
    #: ``""`` is the registration layout (files in the document directory
    #: itself), ``"v<N>"`` a mutation-published version directory.
    version_dir: str = ""


class Catalog:
    """A directory of registered documents, shredded once, served many times."""

    def __init__(self, root: str, journal_replay: bool = True):
        self.root = root
        self._lock = threading.RLock()
        #: Serialises whole mutations (journal append through publish) per
        #: catalog, so two writers in one process cannot interleave version
        #: allocation and replay.  The registry ``_lock`` stays fine-grained.
        self._mutation_lock = threading.Lock()
        self._entries: dict[str, CatalogEntry] = {}
        self._stores: dict[str, ChunkedStore] = {}
        #: Parsed stats.json per name (``None`` = known absent/unreadable).
        self._stats: dict[str, DocumentStats | None] = {}
        #: Names whose chunks failed an integrity check; serving is refused
        #: (:class:`QuarantinedError`) until :meth:`reload` re-shreds them.
        self._quarantined: set[str] = set()
        #: Next ``doc_version`` to allocate; floor 1 so version 0 always
        #: means "published before versioning existed".
        self._next_version = 1
        #: What startup recovery swept (observability; see :meth:`recover`).
        self.last_recovery: dict = {}
        #: What journal replay re-applied at startup (see :meth:`replay_journals`).
        self.last_replay: dict = {}
        self.recover()
        # One manifest-reading path for open and re-open: refresh() treats
        # a missing manifest as an empty catalog, same as a fresh directory.
        self.refresh()
        # Only the writing process replays: pre-forked reader workers open
        # the same directory concurrently, and N processes re-applying the
        # same intent would race each other's staging renames.
        if journal_replay:
            self.replay_journals()

    # -- registry --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[CatalogEntry]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def entry(self, name: str) -> CatalogEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = ", ".join(sorted(self._entries)) or "(catalog is empty)"
                raise CatalogError(
                    f"unknown catalog document {name!r}; known: {known}"
                ) from None

    def refresh(self) -> None:
        """Re-read the manifest from disk, picking up other processes' writes.

        Entries that disappeared **or changed** are dropped (with their
        cached stores — a re-registered name must never be served from the
        previous registration's cached chunks); entries that appeared are
        added.  Safe against a concurrent writer:
        the manifest is replaced atomically and every entry's chunk files
        are on disk before the entry is published, so whatever version this
        read observes is complete.  A missing manifest means the catalog is
        (still) empty — not an error, matching ``Catalog(dir)`` on a fresh
        directory.
        """
        manifest_path = os.path.join(self.root, _MANIFEST)
        FAULTS.fire("catalog.manifest", path=manifest_path)
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            manifest = {"format": _FORMAT, "documents": []}
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            # A torn manifest (crash mid-write without the atomic rename, or
            # disk corruption) must be a diagnosable failure, not a raw
            # JSONDecodeError bubbling out of a serving path.
            raise CatalogError(
                f"torn or corrupt catalog manifest {manifest_path}: {error}; "
                f"restore it from backup or re-register the documents"
            ) from error
        if manifest.get("format") != _FORMAT:
            raise CatalogError(f"not a repro catalog: {self.root}")
        fresh = {}
        for raw in manifest["documents"]:
            entry = CatalogEntry(**raw)
            fresh[entry.name] = entry
        with self._lock:
            # The version counter only ratchets forward: the manifest's
            # persisted watermark, the highest published version, and any
            # in-memory allocations (journaled intents not yet published)
            # all hold it up.
            self._next_version = max(
                self._next_version,
                int(manifest.get("next_version") or 0),
                1 + max((entry.doc_version for entry in fresh.values()), default=0),
            )
            for name in list(self._stores):
                # Dataclass equality over every field including the
                # registration stamp: removal and replacement both
                # invalidate; an unchanged entry keeps its warm store.
                if fresh.get(name) != self._entries.get(name):
                    del self._stores[name]
            for name in list(self._stats):
                if fresh.get(name) != self._entries.get(name):
                    del self._stats[name]
            # A quarantined name that was removed or re-registered has
            # fresh (or no) chunks; the old verdict no longer applies.
            for name in list(self._quarantined):
                if fresh.get(name) != self._entries.get(name):
                    self._quarantined.discard(name)
            self._entries = fresh

    def recover(self) -> dict:
        """Crash recovery: GC orphaned staging dirs, sweep torn manifest temps.

        Run at every :class:`Catalog` construction (front-end and workers
        alike), so a crashed registration never leaks half-written files
        forever.  Only provably dead garbage is touched:

        * ``.staging-<name>-<pid>-<tid>`` directories whose recorded pid is
          gone (the registering process died between staging and publish) —
          or, as a pid-recycling backstop, older than an hour;
        * ``catalog.json.tmp`` older than a minute (a live writer renames
          within milliseconds; an old temp is a crash between write and
          rename — the canonical manifest is whichever version the atomic
          replace last published, so the temp is garbage by construction).

        Returns (and stores on ``last_recovery``) what was swept.
        """
        report: dict = {"staging_removed": [], "manifest_tmp_removed": False}
        self.last_recovery = report
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return report  # fresh directory: nothing to recover
        now = time.time()
        for name in names:
            if not name.startswith(".staging-"):
                continue
            path = os.path.join(self.root, name)
            try:
                age = now - os.path.getmtime(path)
            except OSError:
                continue  # a racing publish/GC renamed or removed it
            if self._staging_owner_dead(name) or age > _STAGING_MAX_AGE:
                shutil.rmtree(path, ignore_errors=True)
                report["staging_removed"].append(name)
        tmp_path = os.path.join(self.root, _MANIFEST + ".tmp")
        try:
            if now - os.path.getmtime(tmp_path) > _MANIFEST_TMP_MAX_AGE:
                os.remove(tmp_path)
                report["manifest_tmp_removed"] = True
        except OSError:
            pass  # absent, or a live writer just renamed it away
        return report

    @staticmethod
    def _staging_owner_dead(staging_name: str) -> bool:
        """Is the process that created ``.staging-<name>-<pid>-<tid>`` gone?"""
        try:
            pid = int(staging_name.rsplit("-", 2)[1])
        except (IndexError, ValueError):
            return False  # unrecognised layout: leave it to the age backstop
        if pid == os.getpid():
            return False  # our own in-flight registration
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except (PermissionError, OSError):
            return False  # alive (owned by someone else) or unknowable
        return False

    def _write_manifest(self) -> None:
        manifest = {
            "format": _FORMAT,
            "next_version": self._next_version,
            "documents": [asdict(self._entries[name]) for name in sorted(self._entries)],
        }
        os.makedirs(self.root, exist_ok=True)
        temp_path = os.path.join(self.root, _MANIFEST + ".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        os.replace(temp_path, os.path.join(self.root, _MANIFEST))

    # -- registration ----------------------------------------------------

    def add(self, name: str, xml: str, attributes: str = "ignore") -> CatalogEntry:
        """Register ``xml`` under ``name``: shred once, serve forever.

        The document is loaded over *all* tags (every element tag becomes a
        node set) and shredded into the chunk store; the original text is
        kept beside it for string-schema reloads.  The (possibly slow)
        parse + shred runs *outside* the registry lock so a registration
        never stalls concurrent query traffic; only the registry update is
        serialised.
        """
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid document name {name!r} (use letters, digits, '.', '_', '-')"
            )
        with self._lock:
            if name in self._entries:
                raise CatalogError(f"document {name!r} is already in the catalog")
        result = load(xml, tags=None, attributes=attributes)
        doc_dir = os.path.join(self.root, name)
        # Shred into a private staging directory and only rename it to the
        # published path under the registry lock: two racing registrations
        # of one name never share files, so the loser's cleanup can only
        # ever delete its own staging area — never the winner's chunks.
        staging = os.path.join(
            self.root, f".staging-{name}-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            return self._publish(name, xml, result, staging, doc_dir, attributes)
        finally:
            # A successful publish renamed the staging directory away; on
            # any failure (shred error, disk full, lost registration race)
            # this is the garbage collection for the half-written files.
            shutil.rmtree(staging, ignore_errors=True)

    def _publish(
        self, name: str, xml: str, result, staging: str, doc_dir: str, attributes: str
    ) -> CatalogEntry:
        """Stage, then atomically publish, one registration (see :meth:`add`)."""
        instance = result.instance
        os.makedirs(staging)
        with open(os.path.join(staging, "document.xml"), "w", encoding="utf-8") as handle:
            handle.write(xml)
        store = ChunkedStore.save(instance, os.path.join(staging, "chunks"))
        # Document statistics for the plan optimizer, collected while the
        # freshly shredded instance is still in memory.  The catalog shreds
        # over *every* tag, so the stats' tag universe is complete: an
        # unknown tag is provably empty for any future query.
        stats = DocumentStats.from_instance(instance, text=xml, complete_tags=True)
        with open(os.path.join(staging, _STATS_FILE), "w", encoding="utf-8") as handle:
            json.dump(stats.to_dict(), handle)
            handle.write("\n")
        entry = CatalogEntry(
            name=name,
            attributes=attributes,
            megabytes=len(xml.encode("utf-8")) / 1e6,
            skeleton_nodes=result.skeleton_nodes,
            dag_vertices=instance.num_vertices,
            dag_edge_entries=instance.num_edge_entries,
            chunks=store.num_chunks,
            shred_seconds=result.parse_seconds,
            tags=[set_name for set_name in instance.schema if not set_name.startswith("#")],
            registered_at=time.time(),
            stats_version=STATS_FORMAT_VERSION,
            skeleton_version=SKELETON_FORMAT_VERSION,
        )
        with self._lock:
            if name in self._entries:
                # Lost a registration race: keep the winner's files (the
                # caller's finally clause garbage-collects our staging).
                raise CatalogError(f"document {name!r} is already in the catalog")
            if os.path.exists(doc_dir):
                # Unreferenced leftovers (a crash between a removal's manifest
                # write and its rmtree): no live entry points here.
                shutil.rmtree(doc_dir, ignore_errors=True)
            os.rename(staging, doc_dir)
            # Re-open at the published path — the staging store's directory
            # no longer exists, so its lazy chunk loads would miss.
            store = ChunkedStore(os.path.join(doc_dir, "chunks"))
            entry.doc_version = self._next_version
            self._next_version += 1
            self._entries[name] = entry
            self._stores[name] = store
            self._stats[name] = stats
            self._write_manifest()
        return entry

    def add_file(self, name: str, path: str, attributes: str = "ignore") -> CatalogEntry:
        """Register the XML file at ``path`` (see :meth:`add`)."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add(name, handle.read(), attributes=attributes)

    def remove(self, name: str) -> None:
        """Drop ``name`` from the registry and delete its files."""
        with self._lock:
            self.entry(name)  # raises CatalogError when unknown
            del self._entries[name]
            self._stores.pop(name, None)
            self._stats.pop(name, None)
            # The quarantine verdict was about chunks that no longer exist.
            self._quarantined.discard(name)
            self._write_manifest()
            shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)

    # -- serving ---------------------------------------------------------

    def _data_dir(self, entry: CatalogEntry) -> str:
        """Where ``entry``'s files live: the doc dir, or its version subdir."""
        base = os.path.join(self.root, entry.name)
        return os.path.join(base, entry.version_dir) if entry.version_dir else base

    def xml(self, name: str) -> str:
        """The current document text (string-schema reloads, mutation base)."""
        entry = self.entry(name)
        with open(
            os.path.join(self._data_dir(entry), "document.xml"), "r", encoding="utf-8"
        ) as handle:
            return handle.read()

    def store(self, name: str) -> ChunkedStore:
        """The (cached) chunk store of ``name``."""
        with self._lock:
            store = self._stores.get(name)
            if store is None:
                entry = self.entry(name)
                store = ChunkedStore(os.path.join(self._data_dir(entry), "chunks"))
                self._stores[name] = store
            return store

    def document_stats(self, name: str) -> DocumentStats | None:
        """The persisted optimizer statistics of ``name`` — or ``None``.

        ``None`` — never an exception — whenever the statistics cannot be
        trusted: the entry was published by a build without statistics
        (``stats_version == 0``), with a different stats format version,
        or the ``stats.json`` beside the chunks is missing, torn, or
        malformed.  Callers (the query service, ``Database.explain``)
        treat ``None`` as "serve the unoptimized plan".
        """
        entry = self.entry(name)
        if entry.stats_version != STATS_FORMAT_VERSION:
            return None
        with self._lock:
            if name in self._stats:
                return self._stats[name]
        stats: DocumentStats | None
        try:
            with open(
                os.path.join(self._data_dir(entry), _STATS_FILE), "r", encoding="utf-8"
            ) as handle:
                stats = DocumentStats.from_dict(json.load(handle))
        except (OSError, ValueError, json.JSONDecodeError, UnicodeDecodeError):
            stats = None
        with self._lock:
            # Cache even the None verdict: a missing file stays missing
            # until the entry is republished (which invalidates the cache).
            if self._entries.get(name) == entry:
                self._stats[name] = stats
        return stats

    def load_instance(self, name: str, strings: tuple[str, ...] = ()):
        """A full instance of ``name`` over its tag schema plus ``strings``.

        Without string constraints this is the warm path: the instance is
        assembled from the shredded chunks (``serialize.load`` per distinct
        chunk, run-length repetition from the manifest) — the XML is never
        re-parsed.  With string constraints the original text is re-scanned
        once to compute the containment sets; callers cache the result.

        A chunk failing its checksum quarantines the document on the spot
        (the first observer gets the precise :class:`IntegrityError`; later
        requests fail fast with :class:`QuarantinedError` without touching
        disk) — corrupt chunks are never decoded into a served instance.
        """
        self.check_serveable(name)
        FAULTS.fire("catalog.load_instance", name=name, strings=strings)
        if not strings:
            try:
                return self.store(name).assemble()
            except IntegrityError:
                self.quarantine(name)
                raise
        entry = self.entry(name)
        return load(
            self.xml(name), tags=None, strings=list(strings), attributes=entry.attributes
        ).instance

    # -- mutation --------------------------------------------------------

    def _journal(self, name: str) -> Journal:
        return Journal(os.path.join(self.root, name, JOURNAL_FILE))

    def mutate(self, name: str, mutations) -> CatalogEntry:
        """Apply a mutation batch to ``name`` and publish the new version.

        The durability order is journal-first: the validated batch is
        appended to the document's write-ahead journal (fsynced) *before*
        any maintenance work, so a crash anywhere after the append is
        recoverable by replay — :meth:`replay_journals` re-applies the
        intent deterministically from the last published text.  Then the
        incremental maintainer (:func:`repro.mutation.apply.apply_mutations`)
        produces the new instance/text/stats, which are staged and renamed
        to ``v<doc_version>`` and committed by the atomic manifest rewrite.
        Readers of the previous version are untouched until the manifest
        flips; their files are GCed only after publish.
        """
        batch = as_mutations(mutations)
        with self._mutation_lock:
            entry = self.check_serveable(name)
            with self._lock:
                target_version = self._next_version
                self._next_version += 1
            self._journal(name).append(
                {
                    "name": name,
                    "base_version": entry.doc_version,
                    "doc_version": target_version,
                    "mutations": [mutation.to_dict() for mutation in batch],
                    "ts": time.time(),
                }
            )
            return self._apply_and_publish(name, entry, batch, target_version)

    def _apply_and_publish(
        self, name: str, entry: CatalogEntry, batch: list, target_version: int
    ) -> CatalogEntry:
        """Maintenance + staged publish of one journaled mutation batch."""
        started = time.perf_counter()
        try:
            instance = self.store(name).assemble()
        except IntegrityError:
            self.quarantine(name)
            raise
        outcome = apply_mutations(
            instance,
            self.xml(name),
            batch,
            attributes=entry.attributes,
            old_stats=self.document_stats(name),
        )
        staging = os.path.join(
            self.root, f".staging-{name}-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            return self._publish_version(name, entry, outcome, target_version, staging, started)
        finally:
            # On success the staging directory was renamed away; on failure
            # this sweeps the half-written version files (the journal keeps
            # the intent, so a later replay can retry).
            shutil.rmtree(staging, ignore_errors=True)

    def _publish_version(
        self, name, base_entry, outcome, version: int, staging: str, started: float
    ) -> CatalogEntry:
        """Stage ``outcome`` as ``v<version>`` and commit it to the manifest."""
        os.makedirs(staging)
        with open(os.path.join(staging, "document.xml"), "w", encoding="utf-8") as handle:
            handle.write(outcome.text)
        ChunkedStore.save(outcome.instance, os.path.join(staging, "chunks"))
        with open(os.path.join(staging, _STATS_FILE), "w", encoding="utf-8") as handle:
            json.dump(outcome.stats.to_dict(), handle)
            handle.write("\n")
        version_dir = f"v{version}"
        target = os.path.join(self.root, name, version_dir)
        with self._lock:
            current = self._entries.get(name)
            if current is None or current.doc_version != base_entry.doc_version:
                raise CatalogError(
                    f"document {name!r} changed underneath the mutation "
                    f"(expected version {base_entry.doc_version}); retry against "
                    f"the current version"
                )
            if os.path.exists(target):
                # A crashed earlier attempt at this version number left a
                # stray directory; it was never published, so replace it.
                shutil.rmtree(target, ignore_errors=True)
            os.rename(staging, target)
            store = ChunkedStore(os.path.join(target, "chunks"))
            # The chaos seam between the two commit points: a kill here has
            # journaled + staged the version but not published it, which is
            # exactly what replay_journals() must recover.
            FAULTS.fire("catalog.journal", op="commit", name=name, doc_version=version)
            entry = CatalogEntry(
                name=name,
                attributes=base_entry.attributes,
                megabytes=len(outcome.text.encode("utf-8")) / 1e6,
                skeleton_nodes=outcome.stats.tree_nodes,
                dag_vertices=outcome.instance.num_vertices,
                dag_edge_entries=outcome.instance.num_edge_entries,
                chunks=store.num_chunks,
                shred_seconds=time.perf_counter() - started,
                tags=[
                    set_name
                    for set_name in outcome.instance.schema
                    if not set_name.startswith("#")
                ],
                registered_at=time.time(),
                stats_version=STATS_FORMAT_VERSION,
                skeleton_version=SKELETON_FORMAT_VERSION,
                doc_version=version,
                version_dir=version_dir,
            )
            self._entries[name] = entry
            self._stores[name] = store
            self._stats[name] = outcome.stats
            self._next_version = max(self._next_version, version + 1)
            self._write_manifest()
        # Post-publish housekeeping: the previous version's files are
        # unreferenced now, and the journaled intent is live in the manifest.
        self._gc_version_files(name, base_entry)
        self._journal(name).compact(version)
        return entry

    def _gc_version_files(self, name: str, old_entry) -> None:
        """Delete the files of a superseded version (never the journal)."""
        if old_entry.version_dir:
            shutil.rmtree(
                os.path.join(self.root, name, old_entry.version_dir), ignore_errors=True
            )
            return
        # Registration layout: the version's files live in the document
        # directory itself, next to the journal and the new v<N> subdirs.
        doc_dir = os.path.join(self.root, name)
        for leftover in ("document.xml", _STATS_FILE):
            try:
                os.remove(os.path.join(doc_dir, leftover))
            except OSError:
                pass
        shutil.rmtree(os.path.join(doc_dir, "chunks"), ignore_errors=True)

    def _sweep_stray_versions(self, name: str, entry) -> list[str]:
        """Remove unpublished ``v<N>`` directories (crashed staging renames)."""
        doc_dir = os.path.join(self.root, name)
        swept = []
        try:
            children = os.listdir(doc_dir)
        except OSError:
            return swept
        for child in children:
            if re.fullmatch(r"v\d+", child) and child != entry.version_dir:
                shutil.rmtree(os.path.join(doc_dir, child), ignore_errors=True)
                swept.append(child)
        return swept

    def replay_journals(self) -> dict:
        """Re-apply journaled intents the manifest never published.

        Runs at writer startup (after :meth:`recover` and :meth:`refresh`):
        for every document, torn journal tails are truncated, intent
        records newer than the published ``doc_version`` are re-applied in
        version order — each must chain from the version the previous one
        published, else replay stops (the remaining intents were written
        against a state that no longer exists, e.g. after a reload) — and
        stray ``v<N>`` directories from crashed publishes are swept.
        Returns (and stores on ``last_replay``) a per-document report.
        """
        report: dict = {}
        with self._mutation_lock:
            for name in self.names():
                entry = self.entry(name)
                journal = self._journal(name)
                records, torn = journal.records()
                if torn:
                    journal.repair()
                pending = sorted(
                    (r for r in records if r.get("doc_version", 0) > entry.doc_version),
                    key=lambda r: r.get("doc_version", 0),
                )
                replayed: list[int] = []
                for record in pending:
                    if record.get("base_version") != entry.doc_version:
                        break
                    try:
                        batch = as_mutations(record.get("mutations", []))
                        entry = self._apply_and_publish(
                            name, entry, batch, int(record["doc_version"])
                        )
                    except ReproError:
                        break
                    replayed.append(entry.doc_version)
                journal.compact(entry.doc_version)
                swept = self._sweep_stray_versions(name, entry)
                if torn or replayed or swept:
                    report[name] = {
                        "replayed": replayed,
                        "torn_truncated": torn,
                        "stray_versions_swept": swept,
                    }
        self.last_replay = report
        return report

    # -- integrity -------------------------------------------------------

    def check_serveable(self, name: str) -> CatalogEntry:
        """The entry for ``name`` — unless it is quarantined (then raise).

        A quarantined name probes the manifest first: an operator's
        ``repro catalog verify --repair`` (or re-register) runs in another
        process and publishes a fresh ``registered_at`` stamp, which
        :meth:`refresh` turns into a lifted quarantine — so service comes
        back without a restart.  The probe costs one manifest read per
        refused request, on a path that is already the error path.
        """
        entry = self.entry(name)
        with self._lock:
            quarantined = name in self._quarantined
        if quarantined:
            self.refresh()
            entry = self.entry(name)
            with self._lock:
                if name in self._quarantined:
                    raise QuarantinedError(
                        f"document {name!r} is quarantined after an "
                        f"integrity failure; reload it (repro catalog "
                        f"verify --repair) to restore service"
                    )
        return entry

    def quarantine(self, name: str) -> None:
        """Refuse to serve ``name`` until it is reloaded."""
        with self._lock:
            if name in self._entries:
                self._quarantined.add(name)
            self._stores.pop(name, None)  # drop any cache of the bad chunks

    def quarantined(self) -> list[str]:
        with self._lock:
            return sorted(self._quarantined)

    def verify(self, repair: bool = False) -> dict:
        """Checksum chunks and validate journals; optionally repair both.

        Returns ``{name: {"status", "chunks", "corrupt", "journal"}}`` where
        status is ``ok`` / ``corrupt`` / ``repaired`` / ``unverifiable``
        (pre-checksum store) and ``journal`` reports the write-ahead
        journal's intact record count, whether its tail is torn, and how
        many intents are still unpublished.  Corrupt documents are
        quarantined; with ``repair=True`` they are immediately re-shredded
        from the kept original text (see :meth:`reload` for why re-shred,
        not patch), torn journal tails are truncated, and unpublished
        intents are replayed (:meth:`replay_journals`).
        """
        report: dict = {}
        for name in self.names():
            try:
                verdict = self.store(name).verify()
            except (OSError, ReproError) as error:
                # Missing chunks dir / torn chunk manifest: corrupt wholesale.
                verdict = {"chunks": 0, "corrupt": [], "error": str(error)}
                verdict["corrupt"] = ["*"]
            row = {
                "status": "ok",
                "chunks": verdict["chunks"],
                "corrupt": verdict["corrupt"],
            }
            if verdict.get("unverifiable"):
                row["status"] = "unverifiable"
            elif verdict["corrupt"]:
                self.quarantine(name)
                row["status"] = "corrupt"
                if repair:
                    self.reload(name)
                    row["status"] = "repaired"
            records, torn = self._journal(name).records()
            entry = self._entries.get(name)
            published = entry.doc_version if entry else 0
            row["journal"] = {
                "records": len(records),
                "torn": torn,
                "pending": sum(
                    1 for r in records if r.get("doc_version", 0) > published
                ),
            }
            report[name] = row
        if repair:
            replayed = self.replay_journals()
            for name, outcome in replayed.items():
                if name in report:
                    report[name]["journal"]["repaired"] = outcome
        return report

    def reload(self, name: str) -> CatalogEntry:
        """Re-shred ``name`` from its kept original text; clears quarantine.

        Recovery always re-shreds rather than patching chunks in place: the
        kept text is the only trustworthy source once a chunk's bytes are
        wrong, and per the recompression-cost analysis in *Optimizing XML
        Compression* the shred cost is dominated by the parse — which a
        chunk-level repair would pay anyway to recompute the subtree — so
        in-place repair saves almost nothing while adding a second publish
        path to get crash-safe.  The re-registration gets a fresh
        ``registered_at`` stamp, so pools and fleet shards drop any cached
        master built from the old chunks.
        """
        entry = self.entry(name)
        xml = self.xml(name)  # read the kept text BEFORE dropping the entry
        with self._lock:
            self.entry(name)  # re-check under the lock (racing remove/reload)
            del self._entries[name]
            self._stores.pop(name, None)
            self._stats.pop(name, None)
            self._quarantined.discard(name)
            self._write_manifest()
        # add() stages fresh chunks and atomically republishes over the old
        # directory (its publish path GCs the unreferenced leftover files).
        return self.add(name, xml, attributes=entry.attributes)

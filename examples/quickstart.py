"""Quickstart: Example 1.1 of the paper, end to end.

Builds the bibliographic document of section 1, shows the three
representations of Figure 1 (tree skeleton, shared-subtree DAG, multiplicity
edges), then evaluates path queries directly on the compressed instance.

Run:  python examples/quickstart.py
"""

from repro.compress.stats import instance_stats
from repro.engine.pipeline import query
from repro.skeleton.loader import load

BIB = """\
<bib>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author><author>Hull</author><author>Vianu</author>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
  <paper>
    <title>The Complexity of Relational Query Languages</title>
    <author>Vardi</author>
  </paper>
</bib>
"""


def main() -> None:
    print("=== Example 1.1: the bibliographic database ===\n")

    # One scan builds the *minimal* compressed instance (Figure 1 (b)+(c)):
    # string data goes to containers, structure is hash-consed on the fly.
    result = load(BIB, collect_containers=True)
    instance = result.instance
    stats = instance_stats(instance)

    print(f"skeleton tree nodes |V^T|   : {stats.tree_vertices}  (Figure 1 (a), + document root)")
    print(f"compressed vertices |V^M|   : {stats.vertices}  (Figure 1 (b))")
    print(f"multiplicity edges  |E^M|   : {stats.edge_entries}  (Figure 1 (c))")
    print(f"compression ratio |E^M|/|E^T|: {stats.edge_ratio:.0%}\n")

    print("The DAG, in graphviz dot syntax (note the x3 author edge):\n")
    print(instance.to_dot())

    print("\nString containers (XMILL-style skeleton/text separation):")
    print(result.containers.summary())

    print("\n=== Queries on the compressed instance ===\n")
    for xpath in (
        "/bib/book/author",
        "//author",
        '//paper[author["Codd"]]/title',
        "//title/following-sibling::author",
        "/self::*[bib/book/author]",
    ):
        answer = query(BIB, xpath)
        print(f"{xpath}")
        print(f"    -> {answer.dag_count()} DAG vertex(es) standing for "
              f"{answer.tree_count()} tree node(s); {answer.summary()}")
        for path in answer.tree_paths(limit=1000)[:5]:
            print(f"       tree node at edge path {'.'.join(map(str, path)) or '(root)'}")
    print("\nNote the sharing: //author selects 5 tree nodes as ONE DAG vertex,")
    print("and querying never rebuilt the document tree.")


if __name__ == "__main__":
    main()

"""Tests for the coalescing query service: correctness, sharing, isolation."""

import threading

import pytest

from repro.engine.pipeline import Engine
from repro.errors import CatalogError, DeadlineExceededError, XPathSyntaxError
from repro.server.catalog import Catalog
from repro.server.resilience import Deadline
from repro.server.service import QueryService, decode_result

from tests.skeleton.test_loader import BIB_XML

QUERIES = [
    "//author",
    "//book/author",
    "/bib/paper/title",
    '//paper[author["Codd"]]',
    "//paper/following-sibling::paper",
    "/bib/*",
]


@pytest.fixture
def catalog(tmp_path):
    catalog = Catalog(str(tmp_path / "cat"))
    catalog.add("bib", BIB_XML)
    return catalog


def expected_payload(query, paths=0):
    """Direct one-shot evaluation decoded through the same wire shape."""
    return decode_result(Engine(BIB_XML).query(query), paths=paths)


class TestCorrectness:
    @pytest.mark.parametrize("mode", ["snapshot", "persistent"])
    @pytest.mark.parametrize("query", QUERIES)
    def test_matches_direct_evaluation(self, catalog, mode, query):
        service = QueryService(catalog, mode=mode)
        response = service.query("bib", query, paths=50)
        expected = expected_payload(query, paths=50)
        assert response["tree_count"] == expected["tree_count"]
        assert response["paths"] == expected["paths"]

    @pytest.mark.parametrize("mode", ["snapshot", "persistent"])
    def test_repeated_queries_stay_correct(self, catalog, mode):
        """Round 2+ exercises the pool-hit path (and persistent reuse)."""
        service = QueryService(catalog, mode=mode)
        for _ in range(3):
            for query in QUERIES:
                response = service.query("bib", query, paths=50)
                expected = expected_payload(query, paths=50)
                assert response["tree_count"] == expected["tree_count"]
                assert response["paths"] == expected["paths"]

    def test_absent_tag_selects_nothing(self, catalog):
        response = QueryService(catalog).query("bib", "//nosuchtag")
        assert response["tree_count"] == 0

    def test_unknown_document_raises_before_batching(self, catalog):
        service = QueryService(catalog)
        with pytest.raises(CatalogError, match="unknown catalog document"):
            service.query("ghost", "//a")
        assert service.stats.requests == 0

    def test_malformed_query_raises_before_batching(self, catalog):
        service = QueryService(catalog)
        with pytest.raises(XPathSyntaxError):
            service.query("bib", "//a[[")
        assert service.stats.requests == 0

    def test_rejects_unknown_mode(self, catalog):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="unknown evaluation mode"):
            QueryService(catalog, mode="turbo")


class TestMasterIsolation:
    def test_snapshot_mode_never_mutates_the_master(self, catalog):
        service = QueryService(catalog, mode="snapshot")
        for query in QUERIES:
            service.query("bib", query)
        key = next(k for k in service.pool.keys() if k[0] == "bib" and k[1] == ())
        entry = service.pool.get_or_load(key, lambda: None)
        master = entry.instance
        assert not any(name.startswith("#t") for name in master.schema)
        assert not any(name.startswith("#q") for name in master.schema)
        # Structural generation untouched: no split ever reached the master.
        assert master.generation == catalog.load_instance("bib").generation

    def test_persistent_mode_resets_result_snapshots(self, catalog):
        service = QueryService(catalog, mode="persistent")
        for _ in range(4):
            for query in QUERIES:
                service.query("bib", query)
        key = next(k for k in service.pool.keys() if k[0] == "bib" and k[1] == ())
        entry = service.pool.get_or_load(key, lambda: None)
        working = entry.working
        assert not any(name.startswith("#q") for name in working.schema)
        assert not any(
            name.startswith("#t") and name[2:].isdigit() for name in working.schema
        )
        # The master itself stayed pristine (persistent forks once).
        assert not any(name.startswith("#q") for name in entry.instance.schema)

    def test_string_queries_get_their_own_pool_entry(self, catalog):
        service = QueryService(catalog)
        service.query("bib", "//author")
        service.query("bib", '//paper[author["Codd"]]')
        assert sorted(service.resident_keys()) == [("bib", ()), ("bib", ("Codd",))]

    def test_evict_drops_all_entries_of_a_document(self, catalog):
        service = QueryService(catalog)
        service.query("bib", "//author")
        service.query("bib", '//paper[author["Codd"]]')
        assert service.evict("bib") == 2
        assert service.pool.keys() == []


class TestCoalescing:
    @pytest.mark.parametrize("mode", ["snapshot", "persistent"])
    def test_concurrent_requests_coalesce_and_stay_correct(self, catalog, mode):
        service = QueryService(catalog, mode=mode, window=0.05)
        service.query("bib", "//author")  # warm the pool outside the window
        barrier = threading.Barrier(8)
        responses = {}

        def worker(index, query):
            barrier.wait(timeout=5)
            responses[index] = service.query("bib", query, paths=50)

        jobs = [(i, QUERIES[i % len(QUERIES)]) for i in range(8)]
        threads = [threading.Thread(target=worker, args=job) for job in jobs]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(responses) == 8
        for index, query in jobs:
            expected = expected_payload(query, paths=50)
            assert responses[index]["tree_count"] == expected["tree_count"]
            assert responses[index]["paths"] == expected["paths"]
        stats = service.stats
        # The window makes the 8 simultaneous requests share evaluations.
        assert stats.batches < stats.requests
        assert stats.max_batch_size >= 2
        assert stats.coalesced_requests >= 2

    def test_max_batch_bounds_one_evaluation(self, catalog):
        service = QueryService(catalog, window=0.05, max_batch=2)
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait(timeout=5)
            service.query("bib", "//author")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert service.stats.max_batch_size <= 2
        assert service.stats.requests == 6


class TestFailureIsolation:
    def test_decode_failure_does_not_poison_batch(self, catalog):
        """One request's blown path limit fails only that request."""
        from repro.errors import DecompressionLimitError

        service = QueryService(catalog, window=0.05)
        service.query("bib", "//author")  # warm the pool outside the window
        barrier = threading.Barrier(2)
        outcomes = {}

        def bad():
            barrier.wait(timeout=5)
            try:
                # limit counts *visited tree nodes*: decoding any path of a
                # bib selection blows a limit of 2.
                service.query("bib", "//author", paths=5, limit=2)
            except DecompressionLimitError as error:
                outcomes["bad"] = error

        def good():
            barrier.wait(timeout=5)
            outcomes["good"] = service.query("bib", "//title", paths=5)

        threads = [threading.Thread(target=bad), threading.Thread(target=good)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert isinstance(outcomes["bad"], DecompressionLimitError)
        expected = expected_payload("//title", paths=5)
        assert outcomes["good"]["tree_count"] == expected["tree_count"]
        assert outcomes["good"]["paths"] == expected["paths"]
        assert service.stats.errors == 1

    @pytest.mark.parametrize("mode", ["snapshot", "persistent"])
    def test_still_correct_after_decode_failure(self, catalog, mode):
        """Regression: a failed decode must not leave polluted engine state
        (stale #t/#q sets) behind for later batches on the same entry."""
        from repro.errors import DecompressionLimitError

        service = QueryService(catalog, mode=mode)
        for _ in range(2):
            with pytest.raises(DecompressionLimitError):
                service.query("bib", "//author", paths=5, limit=2)
            for query in QUERIES:
                response = service.query("bib", query, paths=50)
                expected = expected_payload(query, paths=50)
                assert response["tree_count"] == expected["tree_count"]
                assert response["paths"] == expected["paths"]

    def test_pending_registry_is_bounded(self, catalog):
        """Idle per-key pending entries are dropped, not retained forever."""
        service = QueryService(catalog)
        for needle in ("a", "b", "c", "d"):
            service.query("bib", f'//paper[author["{needle}"]]')
        assert service._pending == {}


class TestDeadlines:
    """End-to-end deadlines inside the coalescing service."""

    def test_expired_request_never_reaches_evaluation(self, catalog):
        service = QueryService(catalog)
        try:
            before = service.stats_dict()["service"]["batches"]
            with pytest.raises(DeadlineExceededError):
                service.query("bib", "//author", deadline=Deadline.after(-0.01))
            stats = service.stats_dict()["service"]
            assert stats["deadline_expired"] >= 1
            assert stats["batches"] == before  # no batch slot was occupied
        finally:
            service.close()

    def test_generous_deadline_answers_correctly(self, catalog):
        service = QueryService(catalog)
        try:
            payload = service.query("bib", "//author", deadline=Deadline.after(60.0))
            assert payload["tree_count"] == expected_payload("//author")["tree_count"]
        finally:
            service.close()

    def test_stats_expose_admission(self, catalog):
        service = QueryService(catalog, max_queue=7, rate_limit=2.0)
        try:
            service.query("bib", "//author")
            admission = service.stats_dict()["admission"]
            assert admission["max_queue"] == 7
            assert admission["admitted"] >= 1
            assert admission["inflight"] == 0  # released after every request
        finally:
            service.close()


class TestKernelProvenance:
    """The plane-kernel tier and cold-load form surfaced in stats/plans."""

    def test_stats_expose_kernel_tier(self, catalog):
        from repro.model import planes

        service = QueryService(catalog)
        try:
            kernel = service.stats_dict()["kernel"]
            assert kernel["tier"] == planes.kernel_tier()
            assert kernel["numpy"] == planes.numpy_active()
            assert kernel["plane_format_version"] == planes.PLANE_FORMAT_VERSION
        finally:
            service.close()

    def test_cold_load_served_from_skeleton(self, catalog):
        """A shredded document's first load maps the succinct skeleton."""
        service = QueryService(catalog)
        try:
            service.query("bib", "//author")
            pool = service.stats_dict()["pool"]
            assert pool["skeleton_loads"] == 1
            assert pool["bytes_mapped"] > 0
            info = service.instance_info("bib", ())
            assert info["resident"] is True
            assert info["load"]["format"] == "skeleton"
            assert info["load"]["mmap"] in (True, False)  # REPRO_NO_MMAP fallback
            assert info["kernel"]["plane_format_version"] >= 1
        finally:
            service.close()

    def test_explain_attaches_kernel_info(self, catalog):
        service = QueryService(catalog)
        try:
            plan = service.explain("bib", "//author")["plan"]
            assert plan["instance"]["kernel"]["tier"] in ("numpy", "stdlib")
            assert plan["instance"]["load"] is None  # nothing resident yet
        finally:
            service.close()

    def test_string_schema_load_reports_parse(self, catalog):
        service = QueryService(catalog)
        try:
            service.query("bib", '//paper[author["Codd"]]')
            key = next(
                key for key in service.pool.keys() if key[1]  # the strings key
            )
            assert service.pool.load_info(key)["format"] == "parse"
        finally:
            service.close()

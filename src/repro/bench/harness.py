"""Experiment runners reproducing Figure 6 and Figure 7 row by row.

Each function computes one table row with the same columns as the paper;
the benchmark modules under ``benchmarks/`` drive these and print the
assembled tables (see EXPERIMENTS.md for paper-vs-measured discussion).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.bench.queries import queries_for
from repro.compress.stats import instance_stats
from repro.corpora import get_corpus
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query
from repro.skeleton.loader import load


@dataclass(frozen=True)
class Figure6Row:
    """One corpus line of Figure 6 (both the "-" and "+" settings)."""

    corpus: str
    megabytes: float
    tree_vertices: int
    vertices_minus: int
    edges_minus: int
    ratio_minus: float
    vertices_plus: int
    edges_plus: int
    ratio_plus: float
    paper_ratio_minus: float | None
    paper_ratio_plus: float | None


def figure6_row(corpus: str, xml: str) -> Figure6Row:
    """Compress ``xml`` with tags ignored ("-") and included ("+")."""
    info = get_corpus(corpus)
    bare = instance_stats(load(xml, tags=()).instance)
    full = instance_stats(load(xml, tags=None).instance)
    return Figure6Row(
        corpus=corpus,
        megabytes=len(xml.encode("utf-8")) / 1e6,
        tree_vertices=full.tree_vertices,
        vertices_minus=bare.vertices,
        edges_minus=bare.edge_entries,
        ratio_minus=bare.edge_ratio,
        vertices_plus=full.vertices,
        edges_plus=full.edge_entries,
        ratio_plus=full.edge_ratio,
        paper_ratio_minus=info.paper_ratio_minus,
        paper_ratio_plus=info.paper_ratio_plus,
    )


@dataclass(frozen=True)
class Figure7Row:
    """One (corpus, query) line of Figure 7, columns (1)-(8)."""

    corpus: str
    query_id: str
    query: str
    parse_seconds: float  # (1) includes compression, as in the paper
    vertices_before: int  # (2)
    edges_before: int  # (3)
    query_seconds: float  # (4)
    vertices_after: int  # (5)
    edges_after: int  # (6)
    selected_dag: int  # (7)
    selected_tree: int  # (8)


def figure7_row(corpus: str, xml: str, query_id: str, axes: str = "functional") -> Figure7Row:
    """Run one Figure 7 cell: parse over the query's schema, then evaluate."""
    query_text = queries_for(corpus)[query_id]
    started = time.perf_counter()
    loaded = load_for_query(xml, query_text)
    parse_seconds = time.perf_counter() - started
    evaluator = CompressedEvaluator(loaded.instance, axes=axes, copy=False)
    result = evaluator.evaluate(query_text)
    after_vertices, after_edges = result.after
    return Figure7Row(
        corpus=corpus,
        query_id=query_id,
        query=query_text,
        parse_seconds=parse_seconds,
        vertices_before=result.before[0],
        edges_before=result.before[1],
        query_seconds=result.seconds,
        vertices_after=after_vertices,
        edges_after=after_edges,
        selected_dag=result.dag_count(),
        selected_tree=result.tree_count(),
    )

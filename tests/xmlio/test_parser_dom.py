"""Tests for the structural parser, DOM and writer."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlio.dom import Element, parse_document
from repro.xmlio.parser import Handler, parse_events, sax_parse
from repro.xmlio.writer import serialize


class TestParseEvents:
    def test_well_formed(self):
        kinds = [e.kind for e in parse_events("<a><b>x</b></a>")]
        assert kinds == ["start", "start", "text", "end", "end"]

    def test_mismatched_tags_rejected(self):
        with pytest.raises(XMLSyntaxError, match="mismatched"):
            list(parse_events("<a><b></a></b>"))

    def test_unclosed_element_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unclosed"):
            list(parse_events("<a><b></b>"))

    def test_stray_close_rejected(self):
        with pytest.raises(XMLSyntaxError, match="no open element"):
            list(parse_events("<a></a></b>"))

    def test_two_roots_rejected(self):
        with pytest.raises(XMLSyntaxError, match="second root"):
            list(parse_events("<a/><b/>"))

    def test_empty_document_rejected(self):
        with pytest.raises(XMLSyntaxError, match="no root"):
            list(parse_events("  <!-- nothing here -->  "))

    def test_text_outside_root_rejected(self):
        with pytest.raises(XMLSyntaxError, match="outside the root"):
            list(parse_events("<a/>trailing"))

    def test_whitespace_outside_root_tolerated(self):
        kinds = [e.kind for e in parse_events("\n <a/> \n")]
        assert kinds == ["start", "end"]

    def test_adjacent_text_coalesced(self):
        events = list(parse_events("<a>one&amp;<![CDATA[two]]>three</a>"))
        texts = [e for e in events if e.kind == "text"]
        assert len(texts) == 1
        assert texts[0].data == "one&twothree"

    def test_prolog_passed_through(self):
        kinds = [e.kind for e in parse_events('<?xml version="1.0"?><!DOCTYPE a><a/>')]
        assert kinds == ["pi", "doctype", "start", "end"]


class TestSaxParse:
    def test_handler_callbacks(self):
        calls = []

        class Recorder(Handler):
            def start_element(self, name, attributes):
                calls.append(("start", name, dict(attributes)))

            def end_element(self, name):
                calls.append(("end", name))

            def characters(self, data):
                calls.append(("text", data))

        sax_parse('<a x="1"><b>hi</b></a>', Recorder())
        assert calls == [
            ("start", "a", {"x": "1"}),
            ("start", "b", {}),
            ("text", "hi"),
            ("end", "b"),
            ("end", "a"),
        ]

    def test_default_handler_ignores_everything(self):
        sax_parse("<a><!--c--><?pi d?>t</a>", Handler())


class TestDom:
    def test_parse_document_structure(self):
        doc = parse_document('<bib><book year="1995"><title>FoD</title></book></bib>')
        assert doc.root.tag == "bib"
        book = doc.root.first("book")
        assert book is not None
        assert book.attributes["year"] == "1995"
        assert book.first("title").string_value() == "FoD"

    def test_string_value_concatenates_descendants(self):
        doc = parse_document("<a>x<b>y<c>z</c></b>w</a>")
        assert doc.root.string_value() == "xyzw"

    def test_elements_filter(self):
        doc = parse_document("<a><b/><c/><b/></a>")
        assert len(list(doc.root.elements("b"))) == 2
        assert len(list(doc.root.elements())) == 3

    def test_descendants_document_order(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        tags = [e.tag for e in doc.root.descendants()]
        assert tags == ["a", "b", "c", "d"]

    def test_skeleton_size(self):
        doc = parse_document("<a><b><c/></b><d/></a>")
        assert doc.root.skeleton_size() == 4

    def test_comments_and_pis_collected(self):
        doc = parse_document("<?xml version='1.0'?><!--hello--><a><!--inner--></a>")
        assert doc.comments == ["hello", "inner"]
        assert doc.processing_instructions[0][0] == "xml"

    def test_element_builder_api(self):
        root = Element("bib")
        book = root.element("book")
        book.element("title", "Foundations of Databases")
        assert root.first("book").first("title").string_value() == (
            "Foundations of Databases"
        )


class TestWriter:
    def test_round_trip_compact(self):
        text = '<a x="1"><b>hi &amp; ho</b><c/></a>'
        doc = parse_document(text)
        again = parse_document(serialize(doc, declaration=False))
        assert serialize(doc) == serialize(again)

    def test_escapes_special_characters(self):
        root = Element("a")
        root.children.append('<tag> & "quote"')
        text = serialize(root, declaration=False)
        assert "&lt;tag&gt;" in text
        assert "&amp;" in text

    def test_attribute_escaping(self):
        root = Element("a", {"v": 'say "hi" <now>'})
        text = serialize(root, declaration=False)
        assert parse_document(text).root.attributes["v"] == 'say "hi" <now>'

    def test_declaration_emitted_once(self):
        assert serialize(Element("a")).startswith('<?xml version="1.0"')

    def test_indented_output_parses_back(self):
        doc = parse_document("<a><b><c/></b><d>t</d></a>")
        pretty = serialize(doc, indent=2)
        assert "\n" in pretty
        again = parse_document(pretty)
        assert again.root.first("d").string_value() == "t"


SIMPLE_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), max_size=40
)


@given(SIMPLE_TEXT)
def test_text_round_trips_through_serialisation(payload):
    root = Element("a")
    root.children.append(payload)
    parsed = parse_document(serialize(root, declaration=False))
    assert parsed.root.string_value() == payload


@given(SIMPLE_TEXT)
def test_attribute_round_trips_through_serialisation(payload):
    root = Element("a", {"v": payload})
    parsed = parse_document(serialize(root, declaration=False))
    assert parsed.root.attributes["v"] == payload

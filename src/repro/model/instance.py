"""The sigma-instance data structure (section 2.1 of the paper).

An instance is a tuple ``(V, gamma, root, S_1 ... S_n)`` where ``gamma`` maps
each vertex to the *ordered sequence* of its children, the induced directed
graph is acyclic with a single root, and each ``S_i`` is a vertex subset named
by the schema.  Both uncompressed XML skeletons (trees) and their compressed
DAG versions are values of this one type.

Representation choices (see DESIGN.md sections 4 and 11):

* vertices are dense integers ``0 .. num_vertices-1``;
* child sequences are stored run-length encoded as ``(child, count)`` pairs —
  the *edge multiplicities* of Figure 1(c); ``count >= 1`` and adjacent
  entries with the same child are merged by :meth:`Instance.set_children`;
* set membership is **transposed** into contiguous bit planes: each schema
  set owns one fixed-width ``array('Q')`` (bit ``v`` = membership of vertex
  ``v``; see :mod:`repro.model.planes`), so whole-set algebra, emptiness
  tests and set dropping are word operations instead of per-vertex loops,
  and a plane's bytes are exactly what the succinct on-disk skeleton format
  stores and maps back.

The row-mask view survives as an *interface*: :meth:`mask`,
:meth:`set_mask` and :meth:`new_vertex_masked` still speak per-vertex
integer bitmasks (bit position = schema position), which keeps the
compressor's hash-consing key a cheap ``(mask, children)`` tuple.  Reading
one row mask gathers across all planes (O(S)); writers that need many rows
should use :meth:`row_masks`, and renumbering constructions should use
:meth:`gather_sets_from` (one vectorised gather per plane).

The structure is mutable: the query engine adds selections (new sets) and
splits shared vertices during partial decompression.  Use :meth:`copy` when
an evaluation must not disturb its input.

Three facilities keep the query engine's constant factors down (DESIGN.md
sections 5 and 11):

* *bulk plane operations* (:meth:`combine_sets`, :meth:`fill_set`,
  :meth:`clear_sets`, :meth:`drop_sets`) run word-at-a-time over whole
  planes; dropping a set is now just deleting its plane — no mask
  compaction pass at all;
* *cached traversals*: :meth:`preorder`/:meth:`postorder` memoise their
  result, invalidated by a structural generation counter that every
  structure-mutating method bumps.  Callers must treat the returned lists
  as read-only.
* *cached edge structure*: :meth:`edge_csr` memoises a flat edge list
  grouped into longest-path levels, the input of the engine's vectorised
  level-synchronous axis kernels; :meth:`reachable_plane` memoises the
  reachable vertex set as a plane.  Both are structural, so :meth:`copy`
  shares them like the traversal caches.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from repro.errors import InstanceError, SchemaError
from repro.model import planes as _pl

#: A run-length encoded edge: ``(child vertex, multiplicity)``.
Edge = tuple[int, int]


def normalize_edges(edges: Iterable[Edge]) -> tuple[Edge, ...]:
    """Merge adjacent runs with equal targets and validate multiplicities.

    ``[(a, 2), (a, 3), (b, 1)]`` becomes ``((a, 5), (b, 1))``.  Entries with
    ``count == 0`` are dropped; negative counts are rejected.
    """
    out: list[Edge] = []
    for child, count in edges:
        if count < 0:
            raise InstanceError(f"negative edge multiplicity {count} to vertex {child}")
        if count == 0:
            continue
        if out and out[-1][0] == child:
            out[-1] = (child, out[-1][1] + count)
        else:
            out.append((child, count))
    return tuple(out)


def expand_edges(edges: Iterable[Edge]) -> Iterator[int]:
    """Yield the child sequence with multiplicities expanded."""
    for child, count in edges:
        for _ in range(count):
            yield child


class EdgeFlat:
    """The reachable edge entries of an instance, flat, in no fixed order.

    Same field layout as :class:`EdgeCSR` but *without* the longest-path
    level grouping — and without any ordering guarantee at all, which is
    fine for the kernels whose recurrence is order-free per edge: the
    ``parent`` axis and the ``child``-axis split check.  Building this
    skips the level relaxation and bucketing entirely (and the product
    rebuilds seed it for free as they emit edges), so it is markedly
    cheaper than the full CSR on rebuild-heavy query chains where every
    fresh instance needs a new one.

    Built once per structural generation (see :meth:`Instance.edge_flat`)
    and shared by :meth:`Instance.copy`; strictly read-only.
    """

    __slots__ = ("esrc", "edst", "ecnt", "nvertices", "_np")

    def __init__(self, esrc: list[int], edst: list[int], ecnt: list[int], nvertices: int):
        self.esrc = esrc
        self.edst = edst
        self.ecnt = ecnt
        self.nvertices = nvertices
        self._np: tuple | None = None

    def __len__(self) -> int:
        return len(self.esrc)

    def np_arrays(self):
        """``(esrc, edst)`` as numpy intp arrays, built lazily, memoised."""
        if self._np is None:
            numpy = _pl._numpy
            self._np = (
                numpy.asarray(self.esrc, dtype=numpy.intp),
                numpy.asarray(self.edst, dtype=numpy.intp),
            )
        return self._np


class EdgeCSR:
    """The reachable edge entries of an instance, flat and level-grouped.

    ``esrc[i]``/``edst[i]``/``ecnt[i]`` are the parent, child and
    multiplicity of the ``i``-th run-length edge entry; entries are grouped
    by the *longest-path level* of their parent, ascending, with
    ``spans[L] = (start, end)`` delimiting level ``L``.  Because every
    parent of a vertex sits at a strictly smaller level, iterating spans in
    order gives a level-synchronous schedule for downward propagation, and
    iterating them reversed gives one for upward propagation.

    Built once per structural generation (see :meth:`Instance.edge_csr`)
    and shared by :meth:`Instance.copy`; strictly read-only.
    """

    __slots__ = ("esrc", "edst", "ecnt", "spans", "nvertices", "_np")

    def __init__(
        self,
        esrc: list[int],
        edst: list[int],
        ecnt: list[int],
        spans: list[tuple[int, int]],
        nvertices: int,
    ):
        self.esrc = esrc
        self.edst = edst
        self.ecnt = ecnt
        self.spans = spans
        self.nvertices = nvertices
        self._np: tuple | None = None

    def __len__(self) -> int:
        return len(self.esrc)

    def np_arrays(self):
        """``(esrc, edst)`` as numpy intp arrays, built lazily, memoised."""
        if self._np is None:
            numpy = _pl._numpy
            self._np = (
                numpy.asarray(self.esrc, dtype=numpy.intp),
                numpy.asarray(self.edst, dtype=numpy.intp),
            )
        return self._np


class Instance:
    """A rooted, ordered, acyclic sigma-instance with multiplicity edges."""

    __slots__ = (
        "_schema",
        "_bits",
        "_children",
        "_planes",
        "_nwords",
        "_nedge_entries",
        "_root",
        "_generation",
        "_pre_cache",
        "_post_cache",
        "_reach_cache",
        "_csr_cache",
        "_flat_cache",
    )

    def __init__(self, schema: Iterable[str] = ()):
        self._schema: list[str] = []
        self._bits: dict[str, int] = {}
        self._planes: list[array] = []
        self._nwords: int = 0
        for name in schema:
            self.ensure_set(name)
        self._children: list[tuple[Edge, ...]] = []
        self._nedge_entries: int = 0
        self._root: int = -1
        self._generation: int = 0
        self._pre_cache: list[int] | None = None
        self._post_cache: list[int] | None = None
        self._reach_cache: array | None = None
        self._csr_cache: EdgeCSR | None = None
        self._flat_cache: EdgeFlat | None = None

    @classmethod
    def from_parts(
        cls,
        schema: Sequence[str],
        children: list[tuple[Edge, ...]],
        plane_list: list[array],
        nwords: int,
        root: int,
    ) -> "Instance":
        """Adopt pre-built columns wholesale (the mmap skeleton fast path).

        ``children`` and every plane are adopted, not copied; planes must
        all be ``nwords`` long with no bits at or above ``len(children)``.
        """
        if len(plane_list) != len(schema):
            raise InstanceError(
                f"{len(plane_list)} planes for {len(schema)} schema sets"
            )
        if nwords < _pl.words_for(len(children)):
            raise InstanceError(
                f"{nwords} words cannot hold {len(children)} vertex bits"
            )
        for plane in plane_list:
            if len(plane) != nwords:
                raise InstanceError("plane width disagrees with nwords")
        instance = cls.__new__(cls)
        instance._schema = list(schema)
        instance._bits = {name: i for i, name in enumerate(instance._schema)}
        if len(instance._bits) != len(instance._schema):
            raise InstanceError("duplicate set name in schema")
        instance._planes = plane_list
        instance._nwords = nwords
        instance._children = children
        instance._nedge_entries = sum(len(edges) for edges in children)
        instance._root = root
        instance._generation = 0
        instance._pre_cache = None
        instance._post_cache = None
        instance._reach_cache = None
        instance._csr_cache = None
        instance._flat_cache = None
        if children:
            instance._check_vertex(root)
        return instance

    # ------------------------------------------------------------------
    # Schema management
    # ------------------------------------------------------------------

    @property
    def schema(self) -> tuple[str, ...]:
        """The schema as an ordered tuple of set names (order = bit position)."""
        return tuple(self._schema)

    def has_set(self, name: str) -> bool:
        """True if ``name`` is in the schema."""
        return name in self._bits

    def bit_of(self, name: str) -> int:
        """Bit position of set ``name``; raises :class:`SchemaError` if absent."""
        try:
            return self._bits[name]
        except KeyError:
            raise SchemaError(f"set {name!r} is not in the schema {self._schema!r}") from None

    def ensure_set(self, name: str) -> int:
        """Add ``name`` to the schema if missing; return its bit position."""
        if not name:
            raise SchemaError("set names must be non-empty")
        bit = self._bits.get(name)
        if bit is None:
            bit = len(self._schema)
            self._schema.append(name)
            self._bits[name] = bit
            self._planes.append(_pl.new_plane(self._nwords))
        return bit

    def drop_set(self, name: str) -> None:
        """Remove set ``name`` from the schema."""
        self.drop_sets((name,))

    def drop_sets(self, names: Iterable[str]) -> None:
        """Remove several sets from the schema in one pass.

        With transposed planes a dropped set is simply a deleted plane;
        surviving sets keep their planes untouched and only their bit
        positions shift.  Duplicate and adjacent names are handled
        uniformly (the historical mask-compaction segments were
        order-sensitive; planes make the question moot).
        """
        dropped = {self.bit_of(name) for name in dict.fromkeys(names)}
        if not dropped:
            return
        self._schema = [name for i, name in enumerate(self._schema) if i not in dropped]
        self._planes = [plane for i, plane in enumerate(self._planes) if i not in dropped]
        self._bits = {n: i for i, n in enumerate(self._schema)}

    def clear_sets(self, names: Iterable[str]) -> None:
        """Empty several sets (schema unchanged); one plane wipe per set."""
        for bit in {self.bit_of(name) for name in dict.fromkeys(names)}:
            _pl.zero(self._planes[bit])

    # ------------------------------------------------------------------
    # Vertices and edges
    # ------------------------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._children)

    @property
    def root(self) -> int:
        """The root vertex; raises if unset."""
        if self._root < 0:
            raise InstanceError("instance has no root (call set_root)")
        return self._root

    @property
    def has_root(self) -> bool:
        return self._root >= 0

    @property
    def generation(self) -> int:
        """Structural generation: bumped by every mutation of the DAG shape.

        Mask-only updates (set membership) do not count — traversal orders
        depend only on ``_children`` and the root.
        """
        return self._generation

    def _touch(self) -> None:
        """Invalidate structure-derived caches after a structural mutation."""
        self._generation += 1
        self._pre_cache = None
        self._post_cache = None
        self._reach_cache = None
        self._csr_cache = None
        self._flat_cache = None

    def _grow(self, nbits: int) -> None:
        """Ensure every plane can hold ``nbits`` vertex bits (doubling)."""
        needed = _pl.words_for(nbits)
        if needed <= self._nwords:
            return
        nwords = self._nwords or 1
        while nwords < needed:
            nwords <<= 1
        for plane in self._planes:
            _pl.grow_plane(plane, nwords)
        self._nwords = nwords

    def set_root(self, vertex: int) -> None:
        self._check_vertex(vertex)
        self._root = vertex
        self._touch()

    def new_vertex(self, sets: Iterable[str] = (), children: Iterable[Edge] = ()) -> int:
        """Create a vertex, optionally with set memberships and children.

        Children must already exist, which enforces acyclicity for instances
        built bottom-up.  (Top-down construction can use
        :meth:`set_children` later; :meth:`validate` re-checks acyclicity.)
        """
        mask = 0
        for name in sets:
            mask |= 1 << self.ensure_set(name)
        vertex = self.new_vertex_masked(mask)
        if children:
            self.set_children(vertex, children)
        return vertex

    def new_vertex_masked(self, mask: int, children: tuple[Edge, ...] = ()) -> int:
        """Fast-path vertex creation from a precomputed mask and normalized edges."""
        vertex = len(self._children)
        self._children.append(children)
        self._nedge_entries += len(children)
        if vertex >= self._nwords << 6:
            self._grow(vertex + 1)
        if mask:
            plane_list = self._planes
            if mask >> len(plane_list):
                raise SchemaError(
                    f"mask {mask:#x} has bits outside the {len(plane_list)}-set schema"
                )
            word = vertex >> 6
            bit = 1 << (vertex & 63)
            while mask:
                low = mask & -mask
                plane_list[low.bit_length() - 1][word] |= bit
                mask ^= low
        self._touch()
        return vertex

    def set_children(self, vertex: int, edges: Iterable[Edge]) -> None:
        """Replace the child sequence of ``vertex`` (normalizing runs)."""
        self._check_vertex(vertex)
        normalized = normalize_edges(edges)
        for child, _ in normalized:
            self._check_vertex(child)
        self._nedge_entries += len(normalized) - len(self._children[vertex])
        self._children[vertex] = normalized
        self._touch()

    def children(self, vertex: int) -> tuple[Edge, ...]:
        """The run-length encoded child sequence of ``vertex``."""
        return self._children[vertex]

    def expanded_children(self, vertex: int) -> Iterator[int]:
        """The child sequence of ``vertex`` with multiplicities expanded."""
        return expand_edges(self._children[vertex])

    def out_degree(self, vertex: int) -> int:
        """Number of children counting multiplicities."""
        return sum(count for _, count in self._children[vertex])

    @property
    def num_edge_entries(self) -> int:
        """Number of run-length edge entries (the paper's ``|E|`` for DAGs).

        Maintained incrementally, so reading it per evaluation is free.
        """
        return self._nedge_entries

    @property
    def num_edges_expanded(self) -> int:
        """Number of edges counting multiplicities (``|E|`` of the tree if a tree)."""
        return sum(self.out_degree(v) for v in range(len(self._children)))

    # ------------------------------------------------------------------
    # Set membership
    # ------------------------------------------------------------------

    def mask(self, vertex: int) -> int:
        """The set-membership bitmask of ``vertex`` (an O(S) plane gather).

        Callers touching many vertices should take :meth:`row_masks` once.
        """
        word = vertex >> 6
        shift = vertex & 63
        mask = 0
        for i, plane in enumerate(self._planes):
            mask |= (plane[word] >> shift & 1) << i
        return mask

    def set_mask(self, vertex: int, mask: int) -> None:
        """Overwrite the membership row of ``vertex`` across all planes."""
        plane_list = self._planes
        if mask >> len(plane_list):
            raise SchemaError(
                f"mask {mask:#x} has bits outside the {len(plane_list)}-set schema"
            )
        word = vertex >> 6
        bit = 1 << (vertex & 63)
        clear = _pl.FULL_WORD ^ bit
        for i, plane in enumerate(plane_list):
            if mask >> i & 1:
                plane[word] |= bit
            else:
                plane[word] &= clear

    def row_masks(self) -> list[int]:
        """All per-vertex masks at once (popcount-bounded plane iteration)."""
        rows = [0] * len(self._children)
        for i, plane in enumerate(self._planes):
            row_bit = 1 << i
            for vertex in _pl.iter_bits(plane):
                rows[vertex] |= row_bit
        return rows

    def in_set(self, vertex: int, name: str) -> bool:
        """True if ``vertex`` is a member of set ``name``."""
        return bool(self._planes[self.bit_of(name)][vertex >> 6] >> (vertex & 63) & 1)

    def add_to_set(self, vertex: int, name: str) -> None:
        """Add ``vertex`` to set ``name`` (creating the set if needed)."""
        self._planes[self.ensure_set(name)][vertex >> 6] |= 1 << (vertex & 63)

    def remove_from_set(self, vertex: int, name: str) -> None:
        self._planes[self.bit_of(name)][vertex >> 6] &= _pl.FULL_WORD ^ (
            1 << (vertex & 63)
        )

    def members(self, name: str) -> set[int]:
        """The vertex set named ``name`` as a Python set."""
        return set(_pl.iter_bits(self._planes[self.bit_of(name)]))

    def count_set(self, name: str, reachable_only: bool = True) -> int:
        """``|S|`` by popcount — without materialising a Python set."""
        plane = self._planes[self.bit_of(name)]
        if not reachable_only or len(self.preorder()) == len(self._children):
            return _pl.count_bits(plane)
        restricted = _pl.copy_plane(plane)
        _pl.intersect_into(restricted, self.reachable_plane())
        return _pl.count_bits(restricted)

    def sets_at(self, vertex: int) -> tuple[str, ...]:
        """Names of all sets containing ``vertex`` (in schema order)."""
        word = vertex >> 6
        shift = vertex & 63
        return tuple(
            name
            for name, plane in zip(self._schema, self._planes)
            if plane[word] >> shift & 1
        )

    # ------------------------------------------------------------------
    # Bulk plane operations (word-at-a-time over whole sets)
    # ------------------------------------------------------------------

    def combine_sets(self, op: str, left: str, right: str, target: str) -> str:
        """Compute ``target = left <op> right`` over all reachable vertices.

        ``op`` is ``"union"``, ``"intersect"`` or ``"difference"``.
        ``target`` is created if missing and accumulates (bits already in an
        existing target survive, matching the historical per-vertex OR).
        Returns ``target``.
        """
        left_plane = self._planes[self.bit_of(left)]
        right_plane = self._planes[self.bit_of(right)]
        fully_reachable = len(self.preorder()) == len(self._children)
        target_plane = self._planes[self.ensure_set(target)]
        if fully_reachable and not _pl.any_bit(target_plane):
            # Fresh target on a fully reachable instance (the common case on
            # the evaluator's temp sets): combine straight into its plane.
            _pl.combine(op, left_plane, right_plane, target_plane)
            return target
        result = _pl.new_plane(self._nwords)
        _pl.combine(op, left_plane, right_plane, result)
        if not fully_reachable:
            _pl.intersect_into(result, self.reachable_plane())
        _pl.or_into(target_plane, result)
        return target

    def fill_set(self, name: str) -> str:
        """Add every reachable vertex to set ``name`` in one plane OR.

        Creates the set if missing and returns ``name`` (the ``V`` of the
        algebra's ``AllNodes``).
        """
        reach = self.reachable_plane()  # raises without a root, as before
        _pl.or_into(self._planes[self.ensure_set(name)], reach)
        return name

    # ------------------------------------------------------------------
    # Hot-path accessors (engine internals)
    # ------------------------------------------------------------------

    def plane_of(self, name: str) -> array:
        """The internal bit plane of set ``name``, for engine hot loops.

        Setting and clearing vertex bits in place is allowed (membership
        carries no structural information, so traversal caches stay valid);
        never resize the array.  The reference stays live across vertex
        growth — planes grow in place.
        """
        return self._planes[self.bit_of(name)]

    def ensure_plane(self, name: str) -> array:
        """:meth:`ensure_set` + :meth:`plane_of` in one step."""
        return self._planes[self.ensure_set(name)]

    @property
    def nwords(self) -> int:
        """Current plane width in 64-bit words (capacity, not ``|V|/64``)."""
        return self._nwords

    def reachable_plane(self) -> array:
        """The root-reachable vertex set as a plane (cached; read-only)."""
        cached = self._reach_cache
        if cached is not None:
            return cached
        order = self.preorder()
        if len(order) == len(self._children):
            nbits = len(self._children)
            words = [_pl.FULL_WORD] * (nbits >> 6)
            if nbits & 63:
                words.append((1 << (nbits & 63)) - 1)
            words.extend([0] * (self._nwords - len(words)))
            plane = array("Q", words)
        else:
            plane = _pl.plane_from_bits(order, self._nwords)
        self._reach_cache = plane
        return plane

    def edge_table(self) -> Sequence[tuple[Edge, ...]]:
        """The internal per-vertex edge-tuple list, for engine hot loops.

        Strictly read-only: all structural mutation must go through
        :meth:`set_children` / :meth:`new_vertex` so caches invalidate.
        """
        return self._children

    def edge_flat(self) -> EdgeFlat:
        """The cached flat edge list in topological order (see :class:`EdgeFlat`)."""
        cached = self._flat_cache
        if cached is not None:
            return cached
        children = self._children
        esrc: list[int] = []
        edst: list[int] = []
        ecnt: list[int] = []
        add_src = esrc.append
        add_dst = edst.append
        add_cnt = ecnt.append
        for vertex in self.topological_order():
            for child, count in children[vertex]:
                add_src(vertex)
                add_dst(child)
                add_cnt(count)
        flat = EdgeFlat(esrc, edst, ecnt, len(children))
        self._flat_cache = flat
        return flat

    def adopt_edge_flat(self, esrc: list[int], edst: list[int], ecnt: list[int]) -> None:
        """Install a prebuilt flat edge list (see :class:`EdgeFlat`).

        For construction paths that already know every reachable edge entry
        as they emit it (the product rebuilds): the lists are adopted, not
        copied, and must cover exactly the reachable entries.  Call after
        the last structural mutation — any later one re-derives the list.
        """
        self._flat_cache = EdgeFlat(esrc, edst, ecnt, len(self._children))

    def edge_csr(self) -> EdgeCSR:
        """The cached level-grouped flat edge list (see :class:`EdgeCSR`)."""
        cached = self._csr_cache
        if cached is not None:
            return cached
        children = self._children
        order = self.topological_order()
        level = [0] * len(children)
        # A vertex's level is final when it is visited (all in-edges fired),
        # so one pass both relaxes the children and buckets the vertex.
        buckets: list[list[int]] = []
        for vertex in order:
            vertex_level = level[vertex]
            edges = children[vertex]
            if not edges:
                continue
            next_level = vertex_level + 1
            for child, _ in edges:
                if level[child] < next_level:
                    level[child] = next_level
            while vertex_level >= len(buckets):
                buckets.append([])
            buckets[vertex_level].append(vertex)
        esrc: list[int] = []
        edst: list[int] = []
        ecnt: list[int] = []
        spans: list[tuple[int, int]] = []
        add_src = esrc.append
        add_dst = edst.append
        add_cnt = ecnt.append
        for bucket in buckets:
            start = len(esrc)
            for vertex in bucket:
                for child, count in children[vertex]:
                    add_src(vertex)
                    add_dst(child)
                    add_cnt(count)
            spans.append((start, len(esrc)))
        csr = EdgeCSR(esrc, edst, ecnt, spans, len(children))
        self._csr_cache = csr
        return csr

    def gather_sets_from(self, source: "Instance", origin: Sequence[int]) -> None:
        """Fill this instance's sets by gathering ``source``'s planes.

        ``origin[new_id]`` names the source vertex whose memberships vertex
        ``new_id`` inherits — the one bulk primitive behind every
        renumbering construction (product rebuilds, compaction, chunk
        assembly, common extension).  Only sets present in both schemas are
        gathered; this instance's extra sets are left untouched.
        """
        if len(origin) != len(self._children):
            raise InstanceError(
                f"origin maps {len(origin)} vertices, instance has {len(self._children)}"
            )
        shared = [
            (i, source._planes[source._bits[name]])
            for i, name in enumerate(self._schema)
            if source.has_set(name)
        ]
        gathered = _pl.gather_many([plane for _, plane in shared], origin, self._nwords)
        for (i, _), plane in zip(shared, gathered):
            self._planes[i] = plane

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def topological_order(self) -> list[int]:
        """Vertices reachable from the root, every parent before its children.

        Computed as reverse DFS postorder, iteratively (instances can be very
        deep chains, e.g. compressed complete binary trees).
        """
        return list(reversed(self.postorder()))

    def postorder(self) -> list[int]:
        """Vertices reachable from the root in DFS postorder (children first).

        The result is cached until the next structural mutation; treat the
        returned list as read-only.
        """
        cached = self._post_cache
        if cached is not None:
            return cached
        root = self.root
        order: list[int] = []
        visited = bytearray(len(self._children))
        # Stack entries: (vertex, index of next distinct child to expand).
        stack: list[list[int]] = [[root, 0]]
        visited[root] = 1
        while stack:
            top = stack[-1]
            vertex, i = top
            edges = self._children[vertex]
            while i < len(edges) and visited[edges[i][0]]:
                i += 1
            top[1] = i + 1
            if i < len(edges):
                child = edges[i][0]
                visited[child] = 1
                stack.append([child, 0])
            else:
                order.append(vertex)
                stack.pop()
        self._post_cache = order
        return order

    def preorder(self) -> list[int]:
        """Vertices reachable from the root in DFS preorder (first visit).

        The result is cached until the next structural mutation; treat the
        returned list as read-only.
        """
        cached = self._pre_cache
        if cached is not None:
            return cached
        root = self.root
        order: list[int] = []
        visited = bytearray(len(self._children))
        stack = [root]
        visited[root] = 1
        while stack:
            vertex = stack.pop()
            order.append(vertex)
            for child, _ in reversed(self._children[vertex]):
                if not visited[child]:
                    visited[child] = 1
                    stack.append(child)
        self._pre_cache = order
        return order

    def reachable(self) -> set[int]:
        """Vertices reachable from the root."""
        return set(self.preorder())

    def parents(self) -> list[list[int]]:
        """For each vertex, the list of distinct parents (reachable subgraph)."""
        result: list[list[int]] = [[] for _ in range(len(self._children))]
        for vertex in self.preorder():
            seen: set[int] = set()
            for child, _ in self._children[vertex]:
                if child not in seen:
                    seen.add(child)
                    result[child].append(vertex)
        return result

    # ------------------------------------------------------------------
    # Structure checks and transformations
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check all structural invariants; raise :class:`InstanceError` if violated.

        Invariants: a root exists; the graph is acyclic; the root is the only
        vertex without incoming edges; every vertex is reachable from the
        root (implied by the former two, checked directly); multiplicities
        are positive and runs are merged.
        """
        root = self.root
        n = len(self._children)
        in_degree = [0] * n
        for edges in self._children:
            previous = -1
            for child, count in edges:
                if not 0 <= child < n:
                    raise InstanceError(f"edge target {child} out of range")
                if count < 1:
                    raise InstanceError(f"non-positive multiplicity {count}")
                if child == previous:
                    raise InstanceError(f"unmerged run of edges to vertex {child}")
                previous = child
                in_degree[child] += 1
        if in_degree[root]:
            raise InstanceError("root has incoming edges")
        for vertex, degree in enumerate(in_degree):
            if degree == 0 and vertex != root:
                raise InstanceError(f"vertex {vertex} has no incoming edge and is not the root")
        # Cycle check via iterative three-color DFS.
        WHITE, GRAY, BLACK = 0, 1, 2
        color = bytearray(n)
        stack: list[list[int]] = [[root, 0]]
        color[root] = GRAY
        while stack:
            top = stack[-1]
            vertex, i = top
            edges = self._children[vertex]
            advanced = False
            while i < len(edges):
                child = edges[i][0]
                i += 1
                if color[child] == GRAY:
                    raise InstanceError(f"cycle through vertex {child}")
                if color[child] == WHITE:
                    top[1] = i
                    color[child] = GRAY
                    stack.append([child, 0])
                    advanced = True
                    break
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
        if any(c == WHITE for c in color):
            unreachable = [v for v in range(n) if color[v] == WHITE]
            raise InstanceError(f"vertices not reachable from root: {unreachable[:10]}")

    def is_tree(self) -> bool:
        """True if every vertex has in-degree at most 1 and all counts are 1."""
        n = len(self._children)
        in_degree = [0] * n
        for edges in self._children:
            for child, count in edges:
                if count != 1:
                    return False
                in_degree[child] += 1
                if in_degree[child] > 1:
                    return False
        return True

    def copy(self) -> "Instance":
        """An independent copy (vertex numbering preserved)."""
        clone = Instance.__new__(Instance)
        clone._schema = list(self._schema)
        clone._bits = dict(self._bits)
        clone._children = list(self._children)  # edge tuples are immutable
        clone._planes = [_pl.copy_plane(plane) for plane in self._planes]
        clone._nwords = self._nwords
        clone._nedge_entries = self._nedge_entries
        clone._root = self._root
        clone._generation = self._generation
        # Structure-derived caches are read-only values over identical
        # structure, so the clone shares them; either side's next structural
        # mutation drops its own references only.
        clone._pre_cache = self._pre_cache
        clone._post_cache = self._post_cache
        clone._reach_cache = self._reach_cache
        clone._csr_cache = self._csr_cache
        clone._flat_cache = self._flat_cache
        return clone

    def compact(self) -> "Instance":
        """A copy with unreachable vertices dropped and ids renumbered.

        Vertices are renumbered in topological (parent-before-child) order,
        so the root becomes vertex 0.  Set memberships are carried over with
        one vectorised gather per plane.
        """
        order = self.topological_order()
        renumber = {old: new for new, old in enumerate(order)}
        clone = Instance(self._schema)
        clone._grow(len(order))
        clone._children = [
            tuple((renumber[child], count) for child, count in self._children[old])
            for old in order
        ]
        clone._nedge_entries = sum(len(edges) for edges in clone._children)
        clone._root = renumber[self.root]
        clone.gather_sets_from(self, order)
        return clone

    def reduct(self, names: Iterable[str]) -> "Instance":
        """The sigma'-reduct: same DAG, schema restricted to ``names`` (section 2.3)."""
        keep = list(names)
        kept_planes = [_pl.copy_plane(self._planes[self.bit_of(name)]) for name in keep]
        clone = Instance(keep)
        clone._planes = kept_planes
        clone._nwords = self._nwords
        clone._children = list(self._children)
        clone._nedge_entries = self._nedge_entries
        clone._root = self._root
        return clone

    # ------------------------------------------------------------------
    # Debugging / rendering
    # ------------------------------------------------------------------

    def to_dot(self, highlight: str | None = None) -> str:
        """Render the reachable subgraph in Graphviz dot syntax.

        Vertices are labeled with their set memberships; if ``highlight``
        names a set, its members are drawn with a double circle (used by the
        examples to mirror Figure 5 of the paper).
        """
        lines = ["digraph instance {", "  node [shape=circle];"]
        for vertex in self.preorder():
            label = ",".join(self.sets_at(vertex)) or str(vertex)
            shape = ""
            if highlight is not None and self.in_set(vertex, highlight):
                shape = ", shape=doublecircle"
            lines.append(f'  v{vertex} [label="{label}"{shape}];')
        for vertex in self.preorder():
            for position, (child, count) in enumerate(self._children[vertex]):
                attr = f' [label="x{count}"]' if count > 1 else ""
                lines.append(f"  v{vertex} -> v{child}{attr};")
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        root = self._root if self._root >= 0 else None
        return (
            f"<Instance |V|={self.num_vertices} |E|={self.num_edge_entries} "
            f"root={root} schema={self._schema!r}>"
        )

    # ------------------------------------------------------------------

    def _check_vertex(self, vertex: int) -> None:
        if not 0 <= vertex < len(self._children):
            raise InstanceError(f"vertex {vertex} does not exist")


# ----------------------------------------------------------------------
# Convenience constructors (used heavily by tests and examples)
# ----------------------------------------------------------------------

#: A nested tree spec: ``(sets, [children])`` where ``sets`` is a set name or
#: a sequence of set names.
TreeSpec = tuple


def tree_instance(spec: TreeSpec, schema: Iterable[str] = ()) -> Instance:
    """Build a tree-instance from a nested ``(sets, children)`` spec.

    Example::

        tree_instance(("bib", [("book", [("title", []), ("author", [])])]))

    builds the Example 1.1 skeleton fragment.  ``sets`` may be a single name,
    a tuple of names, or ``()`` for an unlabeled vertex.
    """
    instance = Instance(schema)

    def build(node: TreeSpec) -> int:
        sets, children = node
        if isinstance(sets, str):
            sets = (sets,)
        child_edges = [(build(child), 1) for child in children]
        return instance.new_vertex(sets, child_edges)

    # Recursion depth equals tree depth; tests keep specs shallow.  Corpus
    # generators use the streaming DagBuilder instead.
    root = build(spec)
    instance.set_root(root)
    return instance

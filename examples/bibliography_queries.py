"""Scenario: querying a DBLP-scale bibliography (paper section 5, DBLP rows).

Generates the synthetic DBLP corpus, then runs the paper's five Appendix A
DBLP queries through the measured pipeline: one scan extracts a compressed
instance over exactly the schema each query needs, evaluation happens purely
in memory on the DAG.

Run:  python examples/bibliography_queries.py [scale]
"""

import sys
import time

from repro.bench.queries import queries_for
from repro.corpora import generate
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query


def main(scale: int = 5000) -> None:
    print(f"Generating a {scale}-record bibliography ...")
    started = time.perf_counter()
    corpus = generate("dblp", scale)
    print(f"  {corpus.megabytes:.1f} MB of XML in {time.perf_counter() - started:.2f}s\n")

    for query_id, xpath in queries_for("dblp").items():
        loaded = load_for_query(corpus.xml, xpath)
        result = CompressedEvaluator(loaded.instance, copy=False).evaluate(xpath)
        after_v, after_e = result.after
        print(f"{query_id}: {xpath}")
        print(
            f"    parse+compress {loaded.parse_seconds:6.2f}s -> "
            f"{result.before[0]:>6} vertices / {result.before[1]:>6} edges "
            f"(from {loaded.skeleton_nodes:,} skeleton nodes)"
        )
        print(
            f"    query {1000 * result.seconds:9.2f}ms -> "
            f"{after_v:>6} vertices / {after_e:>6} edges | "
            f"selected {result.dag_count()} dag / {result.tree_count()} tree"
        )
    print(
        "\nThe bibliography compresses to a few dozen vertices no matter the"
        "\nscale — record shapes repeat — so queries run in milliseconds on"
        "\ndata whose tree form has hundreds of thousands of nodes."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)

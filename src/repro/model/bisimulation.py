"""Bisimilarity relations and their lattice (section 2.2).

A bisimilarity relation on an instance is an equivalence relation ``~`` on
vertices such that related vertices have identical set memberships and
position-wise ``~``-related children.  Quotienting by a bisimilarity relation
preserves equivalence (Proposition 2.3); the relations form a lattice whose
maximum yields the fully compressed instance ``M(I)`` (Proposition 2.5).

Partitions are represented as ``dict[vertex, class_id]`` over the reachable
vertices.
"""

from __future__ import annotations

from repro.model.canonical import canonical_ids
from repro.model.instance import Instance, normalize_edges

Partition = dict[int, int]


def identity_partition(instance: Instance) -> Partition:
    """The finest bisimilarity relation: every vertex in its own class."""
    return {v: v for v in instance.preorder()}


def _class_signature(instance: Instance, partition: Partition, vertex: int) -> tuple:
    """The (mask, normalized child-class runs) signature a class must agree on."""
    edges = normalize_edges(
        (partition[child], count) for child, count in instance.children(vertex)
    )
    return instance.mask(vertex), edges


def is_bisimilarity(instance: Instance, partition: Partition) -> bool:
    """Check whether ``partition`` is a bisimilarity relation on ``instance``.

    Two vertices may share a class only if they have the same set-membership
    mask and their expanded child sequences are position-wise in the same
    classes (equivalently: equal run-length-normalized class sequences).
    """
    reachable = instance.preorder()
    if set(partition) != set(reachable):
        return False
    signatures: dict[int, tuple] = {}
    for vertex in reachable:
        cls = partition[vertex]
        signature = _class_signature(instance, partition, vertex)
        if signatures.setdefault(cls, signature) != signature:
            return False
    return True


def quotient(instance: Instance, partition: Partition) -> Instance:
    """``I/~``: identify all vertices within a class.

    The caller must pass a genuine bisimilarity relation (checked cheaply by
    signature agreement in :func:`is_bisimilarity`); members of a class then
    agree on masks and child-class sequences, so any representative works.
    """
    order = instance.topological_order()
    class_vertex: dict[int, int] = {}
    result = Instance(instance.schema)
    # Children before parents so child classes exist when a parent is built.
    for vertex in reversed(order):
        cls = partition[vertex]
        if cls in class_vertex:
            continue
        edges = normalize_edges(
            (class_vertex[partition[child]], count)
            for child, count in instance.children(vertex)
        )
        class_vertex[cls] = result.new_vertex_masked(instance.mask(vertex), edges)
    result.set_root(class_vertex[partition[instance.root]])
    return result


def coarsest_bisimulation(instance: Instance) -> Partition:
    """The maximum of the bisimilarity lattice: vertex -> canonical id."""
    return canonical_ids(instance)


def is_minimal(instance: Instance) -> bool:
    """True if equality is the only bisimilarity relation (section 2.2)."""
    ids = coarsest_bisimulation(instance)
    return len(set(ids.values())) == len(ids)


def meet(p1: Partition, p2: Partition) -> Partition:
    """Greatest lower bound: the intersection of the two equivalence relations."""
    pairs: dict[tuple[int, int], int] = {}
    out: Partition = {}
    for vertex in p1:
        key = (p1[vertex], p2[vertex])
        out[vertex] = pairs.setdefault(key, len(pairs))
    return out


def join(p1: Partition, p2: Partition) -> Partition:
    """Least upper bound: transitive closure of the union (via union-find)."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        root = x
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[x] != root:  # path compression
            parent[x], x = root, parent[x]
        return root

    def union(x: int, y: int) -> None:
        rx, ry = find(x), find(y)
        if rx != ry:
            parent[rx] = ry

    by_class: dict[tuple[str, int], int] = {}
    for tag, partition in (("a", p1), ("b", p2)):
        for vertex, cls in partition.items():
            anchor = by_class.setdefault((tag, cls), vertex)
            union(anchor, vertex)

    renumber: dict[int, int] = {}
    out: Partition = {}
    for vertex in p1:
        root = find(vertex)
        out[vertex] = renumber.setdefault(root, len(renumber))
    return out

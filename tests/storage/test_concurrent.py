"""Concurrent-reader stress tests for the persistence seam the server uses.

The serving layer's warm start is ``serialize.load`` (per chunk) plus
``ChunkedStore`` assembly, possibly pruned.  These tests pin the two
properties the server relies on:

* ``serialize.dump``/``load`` round-trips instances exactly, including
  under many threads hammering one store concurrently;
* shredding (save) -> pruning -> assembly is equivalent to evaluating on
  the unshredded instance, even when the store (and its shared chunk
  cache) is read by many threads at once.
"""

import threading

import pytest

from repro.corpora import generate
from repro.engine.evaluator import evaluate
from repro.model.equivalence import equivalent
from repro.model.serialize import dumps, loads
from repro.skeleton.loader import load_instance
from repro.storage.chunked import ChunkedStore

from tests.skeleton.test_loader import BIB_XML


def run_threads(count, target):
    failures = []

    def wrapped(index):
        try:
            target(index)
        except Exception as error:  # noqa: BLE001 - surfaced by the assert below
            failures.append((index, repr(error)))

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert not failures, failures


class TestSerializeRoundTrip:
    @pytest.mark.parametrize("corpus", ["dblp", "baseball"])
    def test_dump_load_equivalence(self, corpus):
        instance = load_instance(generate(corpus, 10, seed=1).xml, strings=["a"])
        restored = loads(dumps(instance))
        restored.validate()
        assert equivalent(restored, instance)

    def test_concurrent_round_trips(self):
        instance = load_instance(BIB_XML, strings=["Codd"])
        text = dumps(instance)

        def worker(index):
            restored = loads(text)
            assert equivalent(restored, instance)
            assert dumps(restored) == text  # serialisation is canonical

        run_threads(8, worker)


class TestChunkedUnderConcurrentReaders:
    """save -> prune -> assemble == unshredded, with threads sharing a store."""

    QUERIES = [
        "/bib/paper/author",
        '/bib/paper[author["Codd"]]/title',
        "/bib/book/author",
        "//paper",  # unprunable: loads everything
        "/bib/book/title",
    ]

    def test_threaded_prune_assemble_equivalence(self, tmp_path):
        original = load_instance(BIB_XML, strings=["Codd"])
        store = ChunkedStore.save(original, str(tmp_path / "store"))
        expected = {
            query: evaluate(original, query).tree_count() for query in self.QUERIES
        }

        def worker(index):
            query = self.QUERIES[index % len(self.QUERIES)]
            partial, loaded = store.instance_for_query(query)
            partial.validate()
            assert loaded <= store.num_chunks
            assert evaluate(partial, query).tree_count() == expected[query]

        run_threads(10, worker)

    def test_threaded_full_assembly_is_lossless(self, tmp_path):
        original = load_instance(generate("dblp", 15, seed=2).xml)
        store = ChunkedStore.save(original, str(tmp_path / "store"))

        def worker(index):
            assembled = store.assemble()
            assert equivalent(assembled, original)

        run_threads(6, worker)

    def test_chunk_cache_loads_each_chunk_once(self, tmp_path):
        store = ChunkedStore.save(load_instance(BIB_XML), str(tmp_path / "store"))
        chunks = {}
        lock = threading.Lock()

        def worker(index):
            chunk = store.chunk(index % store.num_chunks)
            with lock:
                chunks.setdefault(index % store.num_chunks, chunk)
                assert chunks[index % store.num_chunks] is chunk

        run_threads(12, worker)

"""Schema conventions for instance node sets.

A *schema* (section 2.1 of the paper) is a finite set of unary relation
names; an instance carries one vertex subset per name.  This module fixes the
naming conventions used across the library so that tag sets, string-constraint
sets and engine temporaries never collide:

* tag sets use the element tag itself (``"book"``),
* the virtual document root vertex is in :data:`DOC_SET`,
* the set of vertices whose string value contains ``s`` is
  ``string_set(s)`` (``"#contains:s"``),
* engine intermediates are ``temp_set(i)`` (``"#t<i>"``),
* batch-engine result snapshots are ``result_set(i)`` (``"#q<i>"``).

``#`` cannot occur in an XML element name, so special sets can never collide
with tag sets.
"""

from __future__ import annotations

from repro.errors import SchemaError

#: Name of the node set containing exactly the virtual document root.
DOC_SET = "#document"

#: Prefix of sets recording string-containment matches.
_STRING_PREFIX = "#contains:"

#: Prefix of engine-generated intermediate selections.
_TEMP_PREFIX = "#t"


def tag_set(tag: str) -> str:
    """Return the set name holding all vertices labeled with ``tag``."""
    if not tag or tag.startswith("#"):
        raise SchemaError(f"invalid tag name: {tag!r}")
    return tag


def string_set(needle: str) -> str:
    """Return the set name holding vertices whose string value contains ``needle``."""
    return _STRING_PREFIX + needle


def is_string_set(name: str) -> bool:
    """True if ``name`` was produced by :func:`string_set`."""
    return name.startswith(_STRING_PREFIX)


def string_set_needle(name: str) -> str:
    """Inverse of :func:`string_set`."""
    if not is_string_set(name):
        raise SchemaError(f"not a string-constraint set: {name!r}")
    return name[len(_STRING_PREFIX):]


#: Prefix of batch-engine per-query result snapshots.
_RESULT_PREFIX = "#q"


def temp_set(index: int) -> str:
    """Return the name of the ``index``-th engine temporary selection."""
    return f"{_TEMP_PREFIX}{index}"


def is_temp(name: str) -> bool:
    """True if ``name`` is an engine temporary (droppable after evaluation)."""
    return name.startswith(_TEMP_PREFIX) and name[len(_TEMP_PREFIX):].isdigit()


def result_set(index: int) -> str:
    """Return the name of the ``index``-th batch-engine result snapshot.

    Snapshots are *durable*: unlike temporaries they survive the end of a
    batch evaluation, so every query of a batch keeps a valid selection on
    the shared final instance.
    """
    return f"{_RESULT_PREFIX}{index}"


def is_result(name: str) -> bool:
    """True if ``name`` is a batch-engine result snapshot."""
    return name.startswith(_RESULT_PREFIX) and name[len(_RESULT_PREFIX):].isdigit()

"""ResultSet materialisation tiers: vertices -> paths -> XML fragments."""

import pytest

import repro
from repro.api import ResultSet
from repro.api.envelope import decode_path, encode_path
from repro.api.results import fragment_at
from repro.errors import ReproError
from repro.server.service import decode_result
from repro.xmlio.dom import parse_document

XML = """\
<library>
  <shelf><book id="b1"><title>One</title></book><book id="b2"><title>Two</title>\
</book></shelf>
  <shelf><book id="b3"><title>Three</title></book></shelf>
</library>
"""


@pytest.fixture
def db():
    return repro.open(XML)


class TestStreaming:
    def test_streaming_equals_eager(self, db):
        result = db.execute("//book/title")
        assert list(result.iter_paths()) == result.paths()
        assert list(result.iter_fragments()) == result.fragments()

    def test_prefix_consumption_is_bounded(self, db):
        result = db.execute("//book")
        cursor = result.iter_paths()
        first = next(cursor)
        assert first == next(iter(result.paths(1)))
        assert len(result.paths(2)) == 2
        assert len(result.fragments(2)) == 2

    def test_paths_in_document_order(self, db):
        result = db.execute("//book")
        paths = result.paths()
        assert paths == sorted(paths)
        assert len(paths) == result.tree_count() == 3

    def test_limit_guards_decompression(self, db):
        from repro.errors import DecompressionLimitError

        with pytest.raises(DecompressionLimitError):
            db.execute("//book").paths(limit=2)


class TestFragments:
    def test_fragment_text(self, db):
        fragments = db.execute("//book/title").fragments()
        assert fragments == [
            "<title>One</title>",
            "<title>Two</title>",
            "<title>Three</title>",
        ]

    def test_fragment_reparse_round_trip(self, db):
        # reassemble -> reparse -> the fragment answers the same query shape.
        for fragment in db.execute("//book").fragments():
            inner = repro.open(fragment)
            assert inner.execute("/book/title").tree_count() == 1

    def test_attribute_fragment_is_its_value(self, db):
        values = db.execute("//book/@id").fragments()
        assert values == ["b1", "b2", "b3"]

    def test_root_fragment_is_whole_document(self, db):
        result = db.execute("/self::*[library]")
        assert result.paths() == [()]
        fragment = result.fragments()[0]
        assert fragment.startswith("<library>") and fragment.endswith("</library>")

    def test_fragment_at_rejects_bad_paths(self):
        root = parse_document("<a><b/></a>").root
        with pytest.raises(ReproError):
            fragment_at(root, (2,))
        with pytest.raises(ReproError):
            fragment_at(root, (1, 9))


class TestCanonicalEncoding:
    def test_to_json_matches_wire_format(self, db):
        from repro.engine.pipeline import Engine

        result = db.execute("//book")
        expected = decode_result(Engine(XML).query("//book"), paths=10)
        assert result.to_json(paths=10) == expected

    def test_path_codec_round_trips(self):
        for path in ((), (1,), (1, 2, 3), (10, 1)):
            assert decode_path(encode_path(path)) == path

    def test_served_resultset_decodes_paths(self):
        payload = {"dag_count": 2, "tree_count": 3, "paths": ["1.1", "1.2", "(root)"],
                   "seconds": 0.001, "document": "d"}
        result = ResultSet.from_payload(payload)
        assert result.served
        assert result.paths() == [(1, 1), (1, 2), ()]
        assert result.to_json(paths=2) == {
            "dag_count": 2, "tree_count": 3, "paths": ["1.1", "1.2"],
        }
        assert result.info == {"seconds": 0.001, "document": "d"}

    def test_served_resultset_without_paths_is_explicit(self):
        result = ResultSet.from_payload({"dag_count": 1, "tree_count": 1})
        with pytest.raises(ReproError, match="paths=N"):
            result.paths()
        with pytest.raises(ReproError, match="paths=N"):
            result.to_json(paths=3)
        with pytest.raises(ReproError):
            result.vertices()

    def test_resultset_wraps_exactly_one_backend(self):
        with pytest.raises(ReproError):
            ResultSet()


class TestMetadata:
    def test_embedded_metadata(self, db):
        result = db.execute("//book")
        assert result.before is not None and result.after is not None
        assert result.seconds >= 0
        assert not result.is_empty()
        assert "selected" in result.summary()
        assert "embedded" in repr(result)

    def test_served_summary(self):
        result = ResultSet.from_payload({"dag_count": 0, "tree_count": 0, "seconds": 0.0})
        assert result.is_empty()
        assert result.before is None and result.after is None
        assert "selected 0 dag" in result.summary()
        assert "served" in repr(result)

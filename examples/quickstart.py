"""Quickstart: Example 1.1 of the paper, end to end, through ``repro.api``.

Builds the bibliographic document of section 1, shows the three
representations of Figure 1 (tree skeleton, shared-subtree DAG, multiplicity
edges), then evaluates path queries directly on the compressed instance —
decoding each answer through all three :class:`repro.api.ResultSet`
materialisation tiers: DAG vertices, tree paths, actual XML fragments.

Run:  python examples/quickstart.py
"""

import repro
from repro.compress.stats import instance_stats
from repro.skeleton.loader import load

BIB = """\
<bib>
  <book>
    <title>Foundations of Databases</title>
    <author>Abiteboul</author><author>Hull</author><author>Vianu</author>
  </book>
  <paper>
    <title>A Relational Model for Large Shared Data Banks</title>
    <author>Codd</author>
  </paper>
  <paper>
    <title>The Complexity of Relational Query Languages</title>
    <author>Vardi</author>
  </paper>
</bib>
"""


def main() -> None:
    print("=== Example 1.1: the bibliographic database ===\n")

    # One scan builds the *minimal* compressed instance (Figure 1 (b)+(c)):
    # string data goes to containers, structure is hash-consed on the fly.
    result = load(BIB, collect_containers=True)
    instance = result.instance
    stats = instance_stats(instance)

    print(f"skeleton tree nodes |V^T|   : {stats.tree_vertices}  "
          "(Figure 1 (a), + document root)")
    print(f"compressed vertices |V^M|   : {stats.vertices}  (Figure 1 (b))")
    print(f"multiplicity edges  |E^M|   : {stats.edge_entries}  (Figure 1 (c))")
    print(f"compression ratio |E^M|/|E^T|: {stats.edge_ratio:.0%}\n")

    print("The DAG, in graphviz dot syntax (note the x3 author edge):\n")
    print(instance.to_dot())

    print("\nString containers (XMILL-style skeleton/text separation):")
    print(result.containers.summary())

    print("\n=== Queries on the compressed instance (the repro.api façade) ===\n")
    with repro.open(BIB) as db:
        for xpath in (
            "/bib/book/author",
            "//author",
            '//paper[author["Codd"]]/title',
            "//title/following-sibling::author",
            "/self::*[bib/book/author]",
        ):
            answer = db.execute(xpath)
            print(f"{xpath}")
            print(f"    -> {answer.dag_count()} DAG vertex(es) standing for "
                  f"{answer.tree_count()} tree node(s); {answer.summary()}")
            # Tier 2: tree paths, streamed lazily in document order.
            for path in answer.paths(3):
                print(f"       tree node at edge path {'.'.join(map(str, path)) or '(root)'}")
            # Tier 3: the actual XML, reassembled from skeleton + containers.
            for fragment in answer.fragments(2):
                one_line = " ".join(fragment.split())
                print(f"       fragment: {one_line[:68]}")

        print("\nThe structured plan of the string-predicate query:")
        print(db.explain('//paper[author["Codd"]]/title').to_json(indent=2))
    print("\nNote the sharing: //author selects 5 tree nodes as ONE DAG vertex,")
    print("and querying never rebuilt the document tree.")


if __name__ == "__main__":
    main()

"""Stress tests: deep nesting and scale must never hit recursion limits.

Every production code path (tokenizer, parser, builder, matcher, minimiser,
decompressor, axes, writer, reassembly) is iterative; these tests prove it
with documents far deeper than Python's default recursion limit.
"""

import sys

import pytest

from repro.compress.decompress import decompress
from repro.engine.evaluator import evaluate
from repro.engine.pipeline import query
from repro.skeleton.loader import load
from repro.skeleton.reassemble import reassemble

DEPTH = 5000  # default recursion limit is 1000


@pytest.fixture(scope="module")
def deep_xml():
    parts = ["<n>" for _ in range(DEPTH)]
    parts.append("payload")
    parts.extend("</n>" for _ in range(DEPTH))
    return "".join(parts)


class TestDeepDocuments:
    def test_load_deep_document(self, deep_xml):
        result = load(deep_xml, strings=["payload"])
        assert result.skeleton_nodes == DEPTH + 1
        # A uniform chain with the payload at the bottom: every vertex
        # distinct (different depths below), so no compression.
        assert result.instance.num_vertices == DEPTH + 1

    def test_query_deep_document(self, deep_xml):
        result = query(deep_xml, '//n["payload"]')
        assert result.tree_count() == DEPTH  # every n contains it

    def test_upward_axis_on_deep_document(self, deep_xml):
        from repro.skeleton.loader import load_instance
        from repro.xpath.algebra import AxisApply, NamedSet

        instance = load_instance(deep_xml)
        result = evaluate(instance, AxisApply("ancestor", NamedSet("n")))
        assert result.tree_count() == DEPTH  # doc root + all but deepest n

    def test_decompress_and_reassemble_deep(self, deep_xml):
        result = load(deep_xml, collect_containers=True)
        assert decompress(result.instance).tree.num_vertices == DEPTH + 1
        text = reassemble(result.instance, result.containers, result.layout)
        assert text.count("<n>") == DEPTH
        assert "payload" in text

    def test_recursion_limit_untouched(self, deep_xml):
        before = sys.getrecursionlimit()
        load(deep_xml)
        assert sys.getrecursionlimit() == before


class TestWideDocuments:
    def test_million_identical_children_via_multiplicity(self):
        # 100k identical siblings: one edge entry, constant vertices.
        xml = "<r>" + "<x/>" * 100_000 + "</r>"
        result = load(xml)
        assert result.instance.num_vertices == 3
        assert result.instance.num_edge_entries == 2
        answer = query(xml, "//x")
        assert answer.tree_count() == 100_000
        assert answer.dag_count() == 1

    def test_sibling_axis_on_wide_run(self):
        xml = "<r>" + "<x/>" * 10_000 + "</r>"
        answer = query(xml, "//x/following-sibling::x")
        assert answer.tree_count() == 9_999

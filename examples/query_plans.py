"""Rendering compiled query plans — Figure 3 and Example 3.1.

Every Core XPath query compiles to the node-set algebra of section 3.1:
the main path runs forward from {root}, predicates are *reversed* (child
becomes parent, following becomes preceding, ...) so conditions flow toward
the query root as plain set operations.  This example prints the algebra
tree for the paper's Figure 3 query and a few Appendix A queries, and flags
which are upward-only (Corollary 3.7: never decompress).

Run:  python examples/query_plans.py
"""

from repro.xpath.compiler import compile_query
from repro.xpath.algebra import axis_applications, uses_only_upward_axes

QUERIES = [
    # Figure 3 / Example 3.1 — verbatim from the paper.
    "/descendant::a/child::b[child::c/child::d or not(following::*)]",
    # Example 3.5.
    "//a/b",
    # A Q1-style tree pattern (upward-only after reversal).
    "/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]",
    # Branching predicate with a string constraint.
    '//Record[sequence/seq["MMSARGDFLN"] and protein/from["Rattus norvegicus"]]',
]


def main() -> None:
    for query_text in QUERIES:
        expr = compile_query(query_text)
        print("=" * 72)
        print(f"Query: {query_text}\n")
        print(expr.render())
        axes = axis_applications(expr)
        print(f"\n  axis applications (evaluation order): {', '.join(axes)}")
        if uses_only_upward_axes(expr):
            print("  upward-only: evaluation will NOT decompress (Corollary 3.7)")
        else:
            print(f"  |Q| = {expr.size()} -> worst-case growth 2^|Q| (Theorem 3.6)")
        print()


if __name__ == "__main__":
    main()

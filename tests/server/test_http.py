"""End-to-end tests of the JSON/HTTP serving layer (real sockets, threads)."""

import http.client
import json
import threading

import pytest

from repro.engine.pipeline import Engine
from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready
from repro.server.service import decode_result

from tests.skeleton.test_loader import BIB_XML


@pytest.fixture(params=["threaded", "async"])
def server(request, tmp_path):
    # Always port 0: the kernel hands out a free ephemeral port, so any
    # number of parallel CI runs can never collide; the real port is read
    # back off the socket and readiness is probed (not assumed) through
    # the same helper the benchmarks use.  Parametrized over both
    # front-ends: every endpoint/error-mapping assertion below is part of
    # the byte-identical contract the transports share.
    Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
    server = create_server(str(tmp_path / "cat"), port=0, frontend=request.param)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def request(server, method, path, body=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["documents"] == 1

    def test_query_matches_direct_evaluation(self, server):
        status, payload = request(
            server, "POST", "/query",
            {"document": "bib", "query": "//book/author", "paths": 10},
        )
        assert status == 200
        expected = decode_result(Engine(BIB_XML).query("//book/author"), paths=10)
        assert payload["tree_count"] == expected["tree_count"]
        assert payload["paths"] == expected["paths"]
        assert payload["document"] == "bib"
        assert payload["mode"] == "snapshot"

    def test_catalog_listing(self, server):
        status, payload = request(server, "GET", "/catalog")
        assert status == 200
        assert [doc["name"] for doc in payload["documents"]] == ["bib"]

    def test_register_then_query(self, server):
        status, payload = request(
            server, "POST", "/catalog/tiny", {"xml": "<r><x/><x/></r>"}
        )
        assert status == 201 and payload["name"] == "tiny"
        status, payload = request(
            server, "POST", "/query", {"document": "tiny", "query": "//x"}
        )
        assert status == 200 and payload["tree_count"] == 2

    def test_delete_document(self, server):
        status, payload = request(server, "DELETE", "/catalog/bib")
        assert status == 200 and payload["removed"] == "bib"
        status, _ = request(server, "POST", "/query", {"document": "bib", "query": "//a"})
        assert status == 404


def assert_envelope(payload: dict, kind: str) -> dict:
    """Every error body is the uniform ``{"error": {kind,message,detail}}``."""
    assert set(payload) == {"error"}
    envelope = payload["error"]
    assert set(envelope) == {"kind", "message", "detail"}
    assert envelope["kind"] == kind
    assert isinstance(envelope["message"], str) and envelope["message"]
    assert envelope["detail"] is None or isinstance(envelope["detail"], dict)
    return envelope


class TestErrorMapping:
    """Regression-pins the uniform error envelope on every route.

    The ``kind`` strings are the same families the cluster worker wire
    protocol round-trips (``repro.api.envelope.ERROR_KINDS``), so these
    bodies are identical at any worker count.
    """

    def test_unknown_document_is_404(self, server):
        status, payload = request(
            server, "POST", "/query", {"document": "ghost", "query": "//a"}
        )
        assert status == 404
        envelope = assert_envelope(payload, "catalog")
        assert "unknown catalog document" in envelope["message"]

    def test_malformed_query_is_400(self, server):
        status, payload = request(
            server, "POST", "/query", {"document": "bib", "query": "//a[["}
        )
        assert status == 400
        envelope = assert_envelope(payload, "xpath-syntax")
        assert "invalid query" in envelope["message"]
        # Syntax errors carry their machine-readable location.
        assert envelope["detail"]["position"] == 4

    def test_malformed_json_is_400(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("POST", "/query", "{not json")
            response = connection.getresponse()
            assert response.status == 400
            payload = json.loads(response.read())
            envelope = assert_envelope(payload, "bad-request")
            assert "malformed JSON" in envelope["message"]
        finally:
            connection.close()

    def test_missing_fields_is_400(self, server):
        status, payload = request(server, "POST", "/query", {"document": "bib"})
        assert status == 400
        envelope = assert_envelope(payload, "bad-request")
        assert "'document' and 'query'" in envelope["message"]

    def test_unknown_endpoint_is_404(self, server):
        status, payload = request(server, "GET", "/nope")
        assert status == 404
        assert_envelope(payload, "not-found")

    def test_bad_delete_is_404(self, server):
        status, payload = request(server, "DELETE", "/catalog/ghost")
        assert status == 404
        assert_envelope(payload, "catalog")

    def test_bad_registration_is_400(self, server):
        status, payload = request(server, "POST", "/catalog/bad%20name!", {"xml": "<r/>"})
        assert status == 400
        assert_envelope(payload, "catalog")

    def test_worker_unavailable_is_503(self, tmp_path):
        # The in-process service cannot lose a worker, so pin the mapping
        # through a stub service raising what a fleet dispatcher raises.
        from repro.errors import WorkerUnavailableError
        from repro.server.http import ReproHTTPServer

        class DownService:
            request_timeout = 1.0

            def query(self, document, query_text, **kwargs):
                raise WorkerUnavailableError("worker 3 is down; the shard is respawning")

        server = ReproHTTPServer(("127.0.0.1", 0), DownService())
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, payload = request(
                server, "POST", "/query", {"document": "d", "query": "//a"}
            )
            assert status == 503
            envelope = assert_envelope(payload, "worker-unavailable")
            assert "respawning" in envelope["message"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=10)


class TestExplain:
    def test_explain_get_and_post_agree(self, server):
        status, via_get = request(
            server, "GET", "/explain?document=bib&query=%2F%2Fbook%2Fauthor"
        )
        assert status == 200
        status, via_post = request(
            server, "POST", "/explain", {"document": "bib", "query": "//book/author"}
        )
        assert status == 200
        assert via_get == via_post
        plan = via_get["plan"]
        assert plan["required"]["tags"] == ["author", "book"]
        assert plan["algebra"]["op"] == "intersect"
        assert plan["instance"]["source"] == "pool"

    def test_explain_reports_pool_residency(self, server):
        _, before = request(server, "POST", "/explain", {"document": "bib", "query": "//a"})
        assert before["plan"]["instance"]["resident"] is False
        request(server, "POST", "/query", {"document": "bib", "query": "//a"})
        _, after = request(server, "POST", "/explain", {"document": "bib", "query": "//a"})
        assert after["plan"]["instance"]["resident"] is True

    def test_explain_without_document_is_plan_only(self, server):
        status, payload = request(server, "POST", "/explain", {"query": "//a/b"})
        assert status == 200
        assert payload["document"] is None
        assert "instance" not in payload["plan"]

    def test_explain_unknown_document_is_404(self, server):
        status, payload = request(
            server, "POST", "/explain", {"document": "ghost", "query": "//a"}
        )
        assert status == 404
        assert_envelope(payload, "catalog")

    def test_explain_malformed_query_is_400(self, server):
        status, payload = request(
            server, "POST", "/explain", {"document": "bib", "query": "//a[["}
        )
        assert status == 400
        assert_envelope(payload, "xpath-syntax")

    def test_explain_missing_query_is_400(self, server):
        status, payload = request(server, "GET", "/explain")
        assert status == 400
        assert_envelope(payload, "bad-request")


class TestConcurrentClients:
    def test_many_clients_all_served_correctly(self, server):
        queries = ["//author", "//title", "//book/author", "/bib/paper/title"]
        expected = {
            query: decode_result(Engine(BIB_XML).query(query), paths=20)
            for query in queries
        }
        failures = []

        def client(index):
            query = queries[index % len(queries)]
            try:
                status, payload = request(
                    server, "POST", "/query",
                    {"document": "bib", "query": query, "paths": 20},
                )
                assert status == 200, payload
                assert payload["tree_count"] == expected[query]["tree_count"]
                assert payload["paths"] == expected[query]["paths"]
            except Exception as error:  # noqa: BLE001 - collected for the assert
                failures.append((index, error))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        status, payload = request(server, "GET", "/stats")
        assert status == 200
        assert payload["service"]["requests"] >= 16


def raw_request(server, method, path, body=None, headers=None):
    """Like :func:`request` but also returns the response headers."""
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload, headers or {})
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8"))
        return response.status, data, dict(response.getheaders())
    finally:
        connection.close()


class TestResilienceSurface:
    """Deadlines, admission, and health reporting at the HTTP boundary."""

    def test_deadline_header_is_accepted(self, server):
        status, payload, _ = raw_request(
            server, "POST", "/query",
            {"document": "bib", "query": "//author"},
            headers={"X-Repro-Deadline-Ms": "30000"},
        )
        assert status == 200 and payload["tree_count"] > 0

    def test_bad_deadline_header_is_400(self, server):
        status, payload, _ = raw_request(
            server, "POST", "/query",
            {"document": "bib", "query": "//author"},
            headers={"X-Repro-Deadline-Ms": "soon"},
        )
        assert status == 400
        assert_envelope(payload, "bad-request")

    def test_negative_deadline_body_is_400(self, server):
        status, payload = request(
            server, "POST", "/query",
            {"document": "bib", "query": "//author", "deadline_ms": -5},
        )
        assert status == 400
        assert_envelope(payload, "bad-request")

    def test_zero_deadline_means_unbounded(self, server):
        status, payload = request(
            server, "POST", "/query",
            {"document": "bib", "query": "//author", "deadline_ms": 0},
        )
        assert status == 200

    def test_expired_deadline_is_504_envelope(self, server):
        status, payload = request(
            server, "POST", "/query",
            {"document": "bib", "query": "//author", "deadline_ms": 0.000001},
        )
        assert status == 504
        envelope = assert_envelope(payload, "deadline_exceeded")
        assert "deadline" in envelope["message"]

    def test_healthz_exposes_the_failure_surface(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["reasons"] == []
        assert payload["quarantined"] == []
        assert isinstance(payload["shed_rate"], (int, float))

    def test_quarantined_document_degrades_healthz_to_203(self, server):
        server.service.catalog._quarantined.add("bib")
        try:
            status, payload = request(server, "GET", "/healthz")
            assert status == 203
            assert payload["status"] == "degraded"
            assert payload["quarantined"] == ["bib"]
            assert any("quarantined" in reason for reason in payload["reasons"])
        finally:
            server.service.catalog._quarantined.discard("bib")

    def test_rate_limit_sheds_per_client_with_retry_after(self, tmp_path):
        Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
        server = create_server(str(tmp_path / "cat"), port=0, rate_limit=0.5)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        assert wait_ready(host, port, timeout=30)
        try:
            body = {"document": "bib", "query": "//author"}
            status, _, _ = raw_request(
                server, "POST", "/query", body, headers={"X-Repro-Client": "alice"}
            )
            assert status == 200  # burst of 1 at rate 0.5/s
            status, payload, headers = raw_request(
                server, "POST", "/query", body, headers={"X-Repro-Client": "alice"}
            )
            assert status == 429
            envelope = assert_envelope(payload, "overloaded")
            assert "rate limit" in envelope["message"]
            assert int(headers["Retry-After"]) >= 1
            # A different client identity has its own untouched bucket.
            status, _, _ = raw_request(
                server, "POST", "/query", body, headers={"X-Repro-Client": "bob"}
            )
            assert status == 200
        finally:
            server.shutdown()
            server.server_close()
            server.service.close()
            thread.join(timeout=10)

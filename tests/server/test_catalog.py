"""Tests for the persistent document catalog (load once, query forever)."""

import json
import os

import pytest

from repro.engine.evaluator import evaluate
from repro.errors import CatalogError, IntegrityError, QuarantinedError
from repro.model.equivalence import equivalent
from repro.server.catalog import Catalog
from repro.skeleton.loader import load_instance

from tests.skeleton.test_loader import BIB_XML


def corrupt_chunk(root, name, chunk_id=0):
    """Flip bytes in one published chunk file (bit rot / torn write).

    The succinct skeleton is removed alongside: whole-document loads would
    otherwise be served from it without touching the chunk files at all
    (skeleton-specific corruption has its own tests below).
    """
    skeleton = os.path.join(root, name, "chunks", "skeleton.rskl")
    if os.path.exists(skeleton):
        os.remove(skeleton)
    path = os.path.join(root, name, "chunks", f"chunk-{chunk_id}.dag")
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size // 2)
        handle.write(b"\xde\xad\xbe\xef")
    return path


def corrupt_skeleton(root, name):
    """Flip bytes inside the succinct skeleton's payload."""
    path = os.path.join(root, name, "chunks", "skeleton.rskl")
    with open(path, "r+b") as handle:
        handle.seek(0, os.SEEK_END)
        size = handle.tell()
        handle.seek(size - 4)
        handle.write(b"\xde\xad\xbe\xef")
    return path


@pytest.fixture
def catalog(tmp_path):
    return Catalog(str(tmp_path / "cat"))


class TestRegistry:
    def test_add_and_entry(self, catalog):
        entry = catalog.add("bib", BIB_XML)
        assert entry.name == "bib"
        assert entry.chunks == 2  # book chunk + shared paper chunk
        assert set(entry.tags) >= {"bib", "book", "paper", "title", "author"}
        assert "bib" in catalog
        assert catalog.names() == ["bib"]

    def test_duplicate_rejected(self, catalog):
        catalog.add("bib", BIB_XML)
        with pytest.raises(CatalogError, match="already in the catalog"):
            catalog.add("bib", BIB_XML)

    def test_unknown_document(self, catalog):
        with pytest.raises(CatalogError, match="unknown catalog document 'nope'"):
            catalog.entry("nope")

    @pytest.mark.parametrize("name", ["", "../up", "a/b", "a b", ".hidden"])
    def test_bad_names_rejected(self, catalog, name):
        with pytest.raises(CatalogError, match="invalid document name"):
            catalog.add(name, BIB_XML)

    def test_remove(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        catalog.remove("bib")
        assert "bib" not in catalog
        assert not (tmp_path / "cat" / "bib").exists()
        with pytest.raises(CatalogError):
            catalog.remove("bib")

    def test_reopen_from_disk(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        reopened = Catalog(str(tmp_path / "cat"))
        assert reopened.names() == ["bib"]
        assert reopened.entry("bib").chunks == 2
        assert reopened.xml("bib") == BIB_XML


class TestWarmStart:
    def test_assembled_equivalent_to_direct_load(self, catalog):
        """The warm path (chunks only, no XML parse) rebuilds the instance."""
        catalog.add("bib", BIB_XML)
        warm = catalog.load_instance("bib")
        warm.validate()
        assert equivalent(warm, load_instance(BIB_XML, tags=None))

    def test_warm_instance_answers_queries(self, catalog):
        catalog.add("bib", BIB_XML)
        result = evaluate(catalog.load_instance("bib"), "//book/author")
        assert result.tree_count() == 3

    def test_string_schema_reload(self, catalog):
        """String predicates force one re-scan of the kept document text."""
        catalog.add("bib", BIB_XML)
        instance = catalog.load_instance("bib", ("Codd",))
        assert instance.has_set("#contains:Codd")
        result = evaluate(instance, '//paper[author["Codd"]]')
        assert result.tree_count() == 1

    def test_attributes_mode_preserved(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        xml = '<r><item id="alpha"/><item id="beta"/></r>'
        catalog.add("doc", xml, attributes="nodes")
        assert catalog.entry("doc").attributes == "nodes"
        result = evaluate(catalog.load_instance("doc"), "//item/@id")
        assert result.tree_count() == 2
        # The string reload keeps attribute nodes too.
        with_strings = catalog.load_instance("doc", ("alpha",))
        result = evaluate(with_strings, '//item[@id["alpha"]]')
        assert result.tree_count() == 1


class TestRefresh:
    """Cross-process visibility: refresh() re-reads the shared manifest."""

    def test_picks_up_registration_by_another_handle(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        reader = Catalog(str(tmp_path / "cat"))  # opened before the write below
        catalog.add("tiny", "<r><x/></r>")
        assert "tiny" not in reader
        reader.refresh()
        assert reader.names() == ["bib", "tiny"]
        assert evaluate(reader.load_instance("tiny"), "//x").tree_count() == 1

    def test_picks_up_removal_and_drops_cached_store(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        reader = Catalog(str(tmp_path / "cat"))
        reader.load_instance("bib")  # caches the chunk store
        catalog.remove("bib")
        reader.refresh()
        assert "bib" not in reader
        with pytest.raises(CatalogError, match="unknown catalog document"):
            reader.entry("bib")

    def test_refresh_on_missing_manifest_means_empty(self, tmp_path):
        catalog = Catalog(str(tmp_path / "fresh"))
        catalog.refresh()
        assert len(catalog) == 0

    def test_refresh_keeps_existing_entries(self, catalog):
        catalog.add("bib", BIB_XML)
        catalog.refresh()
        assert catalog.names() == ["bib"]
        assert catalog.entry("bib").chunks == 2

    def test_torn_manifest_is_a_diagnosable_error(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        manifest = tmp_path / "cat" / "catalog.json"
        manifest.write_text(manifest.read_text()[: len(manifest.read_text()) // 2])
        with pytest.raises(CatalogError, match="torn or corrupt catalog manifest"):
            catalog.refresh()

    def test_refresh_invalidates_replaced_entry(self, catalog, tmp_path):
        """remove + re-register under one name must drop the cached store.

        Long-lived readers (fleet workers) may only learn of the swap
        *after* the new registration is already in the manifest; entry
        equality (including the registration stamp) must invalidate the
        cached chunks, or the reader serves the old document forever.
        """
        catalog.add("doc", "<d><x/><x/></d>")
        reader = Catalog(str(tmp_path / "cat"))
        assert evaluate(reader.load_instance("doc"), "//x").tree_count() == 2
        catalog.remove("doc")
        catalog.add("doc", "<d><x/><x/><x/><x/><x/></d>")
        reader.refresh()  # sees only the final state: 'doc' present both times
        assert evaluate(reader.load_instance("doc"), "//x").tree_count() == 5


class TestIntegrity:
    """Checksums, quarantine, verify/repair — the catalog's failure model."""

    def test_corrupt_chunk_raises_integrity_error(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError, match="failed its checksum"):
            catalog.load_instance("bib")

    def test_corruption_quarantines_then_fails_fast(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError):
            catalog.load_instance("bib")
        assert catalog.quarantined() == ["bib"]
        # Later requests never touch the bad chunks again.
        with pytest.raises(QuarantinedError, match="quarantined"):
            catalog.load_instance("bib")
        with pytest.raises(QuarantinedError):
            catalog.check_serveable("bib")

    def test_missing_chunk_is_integrity_not_crash(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        # Without the skeleton, the load must fall back to chunks and
        # discover the missing file there.
        os.remove(tmp_path / "cat" / "bib" / "chunks" / "skeleton.rskl")
        os.remove(tmp_path / "cat" / "bib" / "chunks" / "chunk-0.dag")
        with pytest.raises(IntegrityError, match="missing"):
            catalog.load_instance("bib")

    def test_corrupt_skeleton_quarantines(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        corrupt_skeleton(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError, match="failed its checksum"):
            catalog.load_instance("bib")
        assert catalog.quarantined() == ["bib"]

    def test_missing_skeleton_falls_back_to_chunks(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        os.remove(tmp_path / "cat" / "bib" / "chunks" / "skeleton.rskl")
        warm = catalog.load_instance("bib")
        assert equivalent(warm, load_instance(BIB_XML, tags=None))
        store = catalog.store("bib")
        assert store.last_load_info["format"] == "chunks"

    def test_verify_reports_corrupt_skeleton(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        corrupt_skeleton(str(tmp_path / "cat"), "bib")
        report = catalog.verify()
        assert report["bib"]["status"] == "corrupt"
        assert report["bib"]["corrupt"] == ["skeleton"]
        assert catalog.quarantined() == ["bib"]

    def test_verify_reports_ok(self, catalog):
        catalog.add("bib", BIB_XML)
        report = catalog.verify()
        assert report["bib"]["status"] == "ok"
        assert report["bib"]["chunks"] == 2
        assert report["bib"]["corrupt"] == []

    def test_verify_detects_and_quarantines(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        catalog.add("tiny", "<r><x/></r>")
        corrupt_chunk(str(tmp_path / "cat"), "bib", chunk_id=1)
        report = catalog.verify()
        assert report["bib"]["status"] == "corrupt"
        assert report["bib"]["corrupt"] == [1]
        assert report["tiny"]["status"] == "ok"
        assert catalog.quarantined() == ["bib"]

    def test_verify_repair_reshreds_from_kept_text(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        before = catalog.entry("bib").registered_at
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        report = catalog.verify(repair=True)
        assert report["bib"]["status"] == "repaired"
        assert catalog.quarantined() == []
        # Fresh registration stamp: pools and shards drop old masters.
        assert catalog.entry("bib").registered_at != before
        warm = catalog.load_instance("bib")
        assert equivalent(warm, load_instance(BIB_XML, tags=None))

    def test_reload_clears_quarantine_and_serves_again(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError):
            catalog.load_instance("bib")
        catalog.reload("bib")
        assert catalog.quarantined() == []
        result = evaluate(catalog.load_instance("bib"), "//book/author")
        assert result.tree_count() == 3

    def test_verify_missing_chunks_dir_is_wholesale_corrupt(self, catalog, tmp_path):
        import shutil

        catalog.add("bib", BIB_XML)
        shutil.rmtree(tmp_path / "cat" / "bib" / "chunks")
        report = catalog.verify()
        assert report["bib"]["status"] == "corrupt"
        # Every chunk is unreadable: each one is reported individually.
        assert report["bib"]["corrupt"] == list(range(report["bib"]["chunks"]))
        assert report["bib"]["chunks"] > 0

    def test_pre_checksum_store_is_unverifiable_not_corrupt(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        manifest_path = tmp_path / "cat" / "bib" / "chunks" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["checksums"]  # a store shredded before checksums existed
        manifest_path.write_text(json.dumps(manifest))
        fresh = Catalog(str(tmp_path / "cat"))
        report = fresh.verify()
        assert report["bib"]["status"] == "unverifiable"
        fresh.load_instance("bib")  # still serves, unverified, as before

    def test_external_repair_lifts_quarantine_without_restart(
        self, catalog, tmp_path
    ):
        """An operator runs ``repro catalog verify --repair`` in a separate
        process; the long-lived server's next request to the quarantined
        document must probe the manifest and come back — no restart."""
        catalog.add("bib", BIB_XML)
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError):
            catalog.load_instance("bib")
        with pytest.raises(QuarantinedError):
            catalog.check_serveable("bib")
        # The operator's CLI process: an independent handle on the same root.
        operator = Catalog(str(tmp_path / "cat"))
        operator.verify(repair=True)
        entry = catalog.check_serveable("bib")  # probes, lifts, serves
        assert entry.name == "bib"
        assert catalog.quarantined() == []
        catalog.load_instance("bib")  # fresh chunks really do load

    def test_quarantine_without_manifest_change_stays_quarantined(
        self, catalog, tmp_path
    ):
        catalog.add("bib", BIB_XML)
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError):
            catalog.load_instance("bib")
        # Nothing repaired: the probe must not lift the verdict.
        with pytest.raises(QuarantinedError):
            catalog.check_serveable("bib")
        assert catalog.quarantined() == ["bib"]

    def test_removal_lifts_quarantine(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        corrupt_chunk(str(tmp_path / "cat"), "bib")
        with pytest.raises(IntegrityError):
            catalog.load_instance("bib")
        catalog.remove("bib")
        catalog.refresh()
        assert catalog.quarantined() == []
        catalog.add("bib", BIB_XML)  # re-registered clean: serveable
        catalog.check_serveable("bib")


class TestRecovery:
    """Startup crash recovery: staging GC and torn manifest temps."""

    def test_dead_owner_staging_dir_is_swept(self, tmp_path):
        root = tmp_path / "cat"
        Catalog(str(root)).add("bib", BIB_XML)
        orphan = root / ".staging-doc-999999999-1"  # pid that cannot exist
        orphan.mkdir()
        (orphan / "document.xml").write_text("<half/>")
        fresh = Catalog(str(root))
        assert not orphan.exists()
        assert fresh.last_recovery["staging_removed"] == [orphan.name]
        assert fresh.names() == ["bib"]

    def test_live_owner_staging_dir_is_kept(self, tmp_path):
        root = tmp_path / "cat"
        root.mkdir()
        mine = root / f".staging-doc-{os.getpid()}-1"
        mine.mkdir()
        fresh = Catalog(str(root))
        assert mine.exists()  # our pid is alive: not provably garbage
        assert fresh.last_recovery["staging_removed"] == []

    def test_ancient_staging_dir_swept_despite_live_pid(self, tmp_path):
        root = tmp_path / "cat"
        root.mkdir()
        # Not our pid: use another live pid (init) to hit the age path.
        stale = root / ".staging-doc-1-1"
        stale.mkdir()
        ancient = 4000.0
        os.utime(stale, (os.path.getmtime(stale) - ancient,) * 2)
        fresh = Catalog(str(root))
        if stale.exists():
            # pid 1 probed as dead on this platform — also a valid sweep.
            pytest.skip("pid 1 not visible; dead-owner path covered elsewhere")
        assert fresh.last_recovery["staging_removed"] == [stale.name]

    def test_old_manifest_tmp_is_swept(self, tmp_path):
        root = tmp_path / "cat"
        Catalog(str(root)).add("bib", BIB_XML)
        tmp_file = root / "catalog.json.tmp"
        tmp_file.write_text("{torn")
        os.utime(tmp_file, (os.path.getmtime(tmp_file) - 120.0,) * 2)
        fresh = Catalog(str(root))
        assert not tmp_file.exists()
        assert fresh.last_recovery["manifest_tmp_removed"] is True
        assert fresh.names() == ["bib"]  # canonical manifest untouched

    def test_fresh_manifest_tmp_is_left_alone(self, tmp_path):
        root = tmp_path / "cat"
        root.mkdir()
        tmp_file = root / "catalog.json.tmp"
        tmp_file.write_text("{mid-write")
        fresh = Catalog(str(root))
        assert tmp_file.exists()  # could be a live writer mid-rename
        assert fresh.last_recovery["manifest_tmp_removed"] is False

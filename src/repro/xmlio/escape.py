"""Character and entity escaping for the XML substrate.

Supports the five predefined XML entities plus decimal and hexadecimal
character references.  Unescaping is only attempted when an ampersand is
present, so the common no-entity path is a no-op.
"""

from __future__ import annotations

import re

from repro.errors import XMLSyntaxError

PREDEFINED = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_ENTITY_RE = re.compile(r"&(#x[0-9A-Fa-f]+|#[0-9]+|[A-Za-z][A-Za-z0-9]*);")


def _entity_value(body: str) -> str:
    if body.startswith("#x"):
        return chr(int(body[2:], 16))
    if body.startswith("#"):
        return chr(int(body[1:]))
    try:
        return PREDEFINED[body]
    except KeyError:
        raise XMLSyntaxError(f"unknown entity &{body};") from None


def unescape(text: str) -> str:
    """Resolve entity and character references in ``text``."""
    if "&" not in text:
        return text
    out = _ENTITY_RE.sub(lambda m: _entity_value(m.group(1)), text)
    if "&" in out and _ENTITY_RE.sub("", text).count("&"):
        # A bare ampersand survived that was not part of any reference.
        raise XMLSyntaxError("bare '&' in character data (use &amp;)")
    return out


def escape_text(text: str) -> str:
    """Escape character data for element content."""
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def escape_attribute(text: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    return escape_text(text).replace('"', "&quot;").replace("\n", "&#10;")

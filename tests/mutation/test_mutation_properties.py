"""Property test: random edit scripts are indistinguishable from re-shredding.

For random sequences of ``append_child`` / ``replace_subtree`` /
``delete_subtree`` over the binary-tree, relational, and xmark corpora,
the incremental maintenance path (:func:`repro.mutation.apply
.apply_mutations`) must produce exactly what shredding the edited text
from scratch produces: the same minimized DAG size, byte-equal exact
statistics, and byte-identical query results.  Paths are drawn from the
*current* document state, so scripts compound: each op edits the result
of the previous one.
"""

import xml.etree.ElementTree as ET

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.corpora import binary_tree, relational
from repro.corpora.registry import CORPORA
from repro.mutation.ops import Mutation

from tests.mutation.test_apply import check_against_oracle

CORPUS_XML = {
    "binary-tree": binary_tree.generate_xml(depth=4).xml,
    "relational": relational.generate_xml(6, 3, distinct_texts=True).xml,
    "xmark": CORPORA["xmark"].generate(15, 0).xml,
}

QUERY_POOLS = {
    "binary-tree": ["//a", "//b[a]", "/a/b/a", "//a/following-sibling::b"],
    "relational": ["//row", "//row[col0]/col1", "/table/row/col2",
                   "//col0/following-sibling::col1"],
    "xmark": ["//item", "//item/description", "//regions//item", "//site/regions"],
}

FRAGMENTS = [
    "<extra>inserted text</extra>",
    "<a><b>leaf</b></a>",
    "<row><col0>v0</col0><col1>v1</col1></row>",
    "<item><description>new thing</description></item>",
    "<wrap><a/><a/></wrap>",
]


def element_paths(text, max_paths=400):
    """Every element's tree path in document order (root element = ())."""
    paths = [()]
    stack = [(ET.fromstring(text), ())]
    while stack and len(paths) < max_paths:
        element, path = stack.pop()
        for ordinal, child in enumerate(element):
            child_path = path + (ordinal,)
            paths.append(child_path)
            stack.append((child, child_path))
    return paths


def draw_script(draw, text, size):
    """A valid, compounding edit script over the *evolving* document."""
    script = []
    current = text
    for _ in range(size):
        paths = element_paths(current)
        path = paths[draw(st.integers(min_value=0, max_value=len(paths) - 1))]
        choices = ["append_child", "replace_subtree"]
        if path:  # deleting the root element is refused by design
            choices.append("delete_subtree")
        op = draw(st.sampled_from(choices))
        if op == "delete_subtree":
            mutation = Mutation(op, path)
        else:
            fragment = draw(st.sampled_from(FRAGMENTS))
            mutation = Mutation(op, path, xml=fragment)
        script.append(mutation)
        from repro.mutation.textedit import splice

        current, _, _ = splice(current, mutation)
    return script


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    corpus=st.sampled_from(sorted(CORPUS_XML)),
    size=st.integers(min_value=1, max_value=4),
    data=st.data(),
)
def test_random_edit_scripts_match_fresh_shred(corpus, size, data):
    text = CORPUS_XML[corpus]
    script = draw_script(data.draw, text, size)
    check_against_oracle(text, script, queries=QUERY_POOLS[corpus])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(size=st.integers(min_value=1, max_value=3), data=st.data())
def test_random_edit_scripts_attribute_documents(size, data):
    text = "<r><x k='v'><y/><y n='2'/></x><x k='w'/></r>"
    script = draw_script(data.draw, text, size)
    check_against_oracle(
        text, script, attributes="nodes",
        queries=["//x", "//y", "//@k", "//x/y"],
    )

#!/usr/bin/env python
"""Compare a fresh benchmark JSON against a committed baseline.

The scheduled CI job re-runs every benchmark un-quick and fails the build
when a headline metric regresses more than the tolerance (default 20%)
against the ``BENCH_*.json`` files committed at the repository root::

    python benchmarks/check_regression.py BASELINE.json FRESH.json [--tolerance 0.2]

The headline metric is chosen by the ``benchmark`` field so one checker
serves every report shape:

* ``query_throughput`` — ``geomean_speedup`` (new engine vs seed engine);
* ``batch_workload``   — ``best_speedup`` (batched vs sequential mix);
* ``server``           — ``geomean_speedup`` (served vs one-shot).

Exit codes follow the CLI convention: 0 pass, 1 regression, 2 bad inputs.
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmark name -> headline metric key in its JSON report.
HEADLINE = {
    "query_throughput": "geomean_speedup",
    "batch_workload": "best_speedup",
    "server": "geomean_speedup",
}


def headline_value(report: dict, path: str) -> tuple[str, float]:
    name = report.get("benchmark")
    key = HEADLINE.get(name)
    if key is None:
        raise ValueError(f"{path}: unknown benchmark {name!r} (known: {sorted(HEADLINE)})")
    value = report.get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{path}: missing or non-positive metric {key!r}: {value!r}")
    return key, float(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_*.json")
    parser.add_argument("candidate", help="freshly produced benchmark JSON")
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional regression (0.2 = fail below 80%% of baseline)",
    )
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(args.candidate, "r", encoding="utf-8") as handle:
            candidate = json.load(handle)
        key, base_value = headline_value(baseline, args.baseline)
        candidate_key, new_value = headline_value(candidate, args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if baseline.get("benchmark") != candidate.get("benchmark"):
        print(
            f"error: benchmark mismatch: {baseline.get('benchmark')!r} "
            f"vs {candidate.get('benchmark')!r}",
            file=sys.stderr,
        )
        return 2

    floor = (1.0 - args.tolerance) * base_value
    ratio = new_value / base_value
    verdict = "ok" if new_value >= floor else "REGRESSION"
    print(
        f"{baseline['benchmark']}: {key} baseline {base_value:.3f} -> "
        f"candidate {new_value:.3f} ({100 * ratio:.1f}%, floor {floor:.3f}) {verdict}"
    )
    if new_value < floor:
        print(
            f"FAIL: {key} regressed more than {100 * args.tolerance:.0f}% "
            f"vs {args.baseline}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Unit and property tests for the Aho-Corasick automaton."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ReproError
from repro.strings.aho_corasick import AhoCorasick


class TestBasics:
    def test_single_pattern(self):
        ac = AhoCorasick(["abc"])
        assert ac.contains_mask("xxabcxx") == 1
        assert ac.contains_mask("xxabxcx") == 0

    def test_multiple_patterns_mask(self):
        ac = AhoCorasick(["he", "she", "his", "hers"])
        assert ac.contains_mask("ushers") == 0b1011  # he, she, hers

    def test_overlapping_occurrences(self):
        ac = AhoCorasick(["aa"])
        assert ac.occurrences("aaaa") == [(0, 0), (1, 0), (2, 0)]

    def test_pattern_is_suffix_of_other(self):
        ac = AhoCorasick(["abcd", "cd"])
        assert ac.occurrences("abcd") == [(0, 0), (2, 1)]

    def test_empty_pattern_rejected(self):
        with pytest.raises(ReproError):
            AhoCorasick(["ok", ""])

    def test_no_patterns(self):
        ac = AhoCorasick([])
        assert ac.contains_mask("anything") == 0

    def test_unicode(self):
        ac = AhoCorasick(["Schrödinger"])
        assert ac.contains_mask("Erwin Schrödinger grant") == 1

    def test_resume_across_chunks(self):
        ac = AhoCorasick(["chandra"])
        state, matches = ac.resume(0, "xxchan")
        assert matches == []
        state, matches = ac.resume(state, "draxx")
        assert len(matches) == 1
        offset, mask = matches[0]
        assert mask == 1
        assert offset == 2  # 'a' completing the match is at chunk offset 2

    def test_num_states_bounded_by_total_length(self):
        patterns = ["abc", "abd", "x"]
        ac = AhoCorasick(patterns)
        assert ac.num_states <= sum(len(p) for p in patterns) + 1


@given(
    st.lists(st.text(alphabet="ab", min_size=1, max_size=4), min_size=1, max_size=5),
    st.text(alphabet="ab", max_size=60),
)
def test_matches_naive_search(patterns, haystack):
    """Occurrence sets agree with str.find-based brute force."""
    ac = AhoCorasick(patterns)
    expected = set()
    for index, pattern in enumerate(patterns):
        start = 0
        while True:
            hit = haystack.find(pattern, start)
            if hit < 0:
                break
            expected.add((hit, index))
            start = hit + 1
    assert set(ac.occurrences(haystack)) == expected


@given(
    st.lists(st.text(alphabet="abc", min_size=1, max_size=3), min_size=1, max_size=4),
    st.lists(st.text(alphabet="abc", max_size=10), max_size=6),
)
def test_chunked_equals_whole(patterns, chunks):
    """Feeding chunk-by-chunk finds the same end positions as one pass."""
    ac = AhoCorasick(patterns)
    whole = "".join(chunks)
    _, whole_matches = ac.resume(0, whole)
    whole_ends = {(offset, mask) for offset, mask in whole_matches}

    state = 0
    streamed_ends = set()
    base = 0
    for chunk in chunks:
        state, matches = ac.resume(state, chunk)
        for offset, mask in matches:
            streamed_ends.add((base + offset, mask))
        base += len(chunk)
    assert streamed_ends == whole_ends

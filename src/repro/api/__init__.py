"""``repro.api`` — the stable public surface of the system.

Everything the paper's pipeline can do — one-scan loading, compressed
evaluation, partial decompression, batch sharing, served catalogs — is
reachable through four objects:

* :class:`Database` — one queryable document source (embedded text or
  instance, or a served catalog), with context-manager lifecycle;
* :class:`PreparedQuery` — a query parsed and compiled exactly once,
  runnable against any database;
* :class:`ResultSet` — a lazy streaming cursor over a selection, with
  three materialisation tiers (DAG vertices -> tree paths -> XML
  fragments) and the canonical JSON encoding shared with the wire;
* :class:`Plan` — the structured, JSON-able view of a compiled query.

Quick start::

    import repro

    with repro.open("catalog.xml") as db:
        result = db.execute("//book/author")
        print(result.dag_count(), result.tree_count())
        for fragment in result.fragments(3):
            print(fragment)

The older entry points (``repro.load_instance`` / ``repro.query`` /
``repro.query_batch`` / ``repro.Engine``) remain as thin deprecated shims
over the same machinery.
"""

from repro.api.database import Database, open_database
from repro.api.envelope import (
    DEFAULT_LIMIT,
    ERROR_KINDS,
    MAX_PATHS,
    encode_path,
    encode_result,
    error_envelope,
    error_kind,
    rebuild_error,
)
from repro.api.plan import Plan, PlanNode
from repro.api.prepared import PreparedQuery
from repro.api.results import ResultSet, ResultSetBatch

#: ``repro.open`` — the front door (module-level alias of the builtin-free name).
open = open_database  # noqa: A001 - intentional: repro.api.open mirrors repro.open

__all__ = [
    "DEFAULT_LIMIT",
    "ERROR_KINDS",
    "MAX_PATHS",
    "Database",
    "Plan",
    "PlanNode",
    "PreparedQuery",
    "ResultSet",
    "ResultSetBatch",
    "encode_path",
    "encode_result",
    "error_envelope",
    "error_kind",
    "open",
    "open_database",
    "rebuild_error",
]

"""Property-based tests for the XML substrate and instance persistence."""

from hypothesis import given, strategies as st

from repro.model.serialize import dumps, loads
from repro.model.equivalence import equivalent
from repro.skeleton.loader import load
from repro.skeleton.reassemble import reassemble
from repro.xmlio.dom import Element, parse_document
from repro.xmlio.writer import serialize

from tests.conftest import random_dag_instances

TAGS = st.sampled_from(["a", "b", "c", "d"])
TEXTS = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc")), min_size=1, max_size=12
)
ATTR_NAMES = st.sampled_from(["x", "y", "z"])


@st.composite
def random_elements(draw, max_depth: int = 3) -> Element:
    element = Element(draw(TAGS))
    for name in draw(st.lists(ATTR_NAMES, unique=True, max_size=2)):
        element.attributes[name] = draw(TEXTS)
    for _ in range(draw(st.integers(0, 3))):
        if max_depth > 0 and draw(st.booleans()):
            element.children.append(draw(random_elements(max_depth=max_depth - 1)))
        else:
            element.children.append(draw(TEXTS))
    return element


def dom_equal(a, b) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    return (
        a.tag == b.tag
        and a.attributes == b.attributes
        and len(a.children) == len(b.children)
        and all(dom_equal(x, y) for x, y in zip(a.children, b.children))
    )


def coalesced(element: Element) -> Element:
    """Adjacent text children merged — the parser's canonical form."""
    out = Element(element.tag, dict(element.attributes))
    for child in element.children:
        if isinstance(child, str):
            if out.children and isinstance(out.children[-1], str):
                out.children[-1] += child
            else:
                out.children.append(child)
        else:
            out.children.append(coalesced(child))
    return out


@given(random_elements())
def test_serialize_parse_round_trip(element):
    """DOM -> text -> DOM is the identity up to text coalescing."""
    parsed = parse_document(serialize(element, declaration=False)).root
    assert dom_equal(parsed, coalesced(element))


@given(random_elements())
def test_full_decomposition_round_trip(element):
    """XML -> (skeleton, containers, layout) -> XML preserves the document."""
    original = serialize(element, declaration=False)
    result = load(original, collect_containers=True, attributes="nodes")
    restored = reassemble(result.instance, result.containers, result.layout)
    assert dom_equal(parse_document(restored).root, coalesced(element))


@given(random_dag_instances())
def test_instance_serialization_round_trip(instance):
    restored = loads(dumps(instance))
    restored.validate()
    assert equivalent(restored, instance)

"""repro: Path Queries on Compressed XML (Buneman, Grohe, Koch; VLDB 2003).

A complete reproduction of the paper's system: XML skeletons compressed into
DAGs by subtree sharing (bisimulation) with multiplicity edges, queried
directly with a Core XPath algebra under partial decompression.

Quick start::

    from repro import load_instance, query

    instance = load_instance(xml_text, query_text="//book/author")
    result = query(instance, "//book/author")
    print(result.dag_count(), result.tree_count())

See README.md for the architecture overview and examples/ for runnable
scenarios.
"""

from repro.model import Instance, equivalent, tree_instance
from repro.compress import DagBuilder, common_extension, decompress, instance_stats, minimize

__version__ = "1.0.0"

__all__ = [
    "DagBuilder",
    "Instance",
    "common_extension",
    "decompress",
    "equivalent",
    "instance_stats",
    "minimize",
    "tree_instance",
    "__version__",
]


def __getattr__(name: str):
    # Heavy subsystems (engine, xpath, skeleton) are imported lazily so that
    # `import repro` stays cheap for model-only users.
    if name in {"load_instance", "query", "query_batch", "Engine"}:
        from repro.engine import pipeline

        return getattr(pipeline, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

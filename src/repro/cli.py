"""Command-line interface: generate corpora, compress documents, run queries.

Installed as the ``repro`` console script::

    repro corpora                         # list available corpus generators
    repro gen dblp --scale 500 -o d.xml   # generate synthetic XML
    repro compress d.xml                  # compression statistics
    repro compress d.xml --tags none      # ... structure only (Figure 6 "-")
    repro query d.xml '//article[author["Codd"]]'
    repro query d.xml '//article' '//inproceedings' --workload mix.txt
    repro query d.xml '//article' --explain-json   # structured plan, no eval
    repro explain '//a/b[c or not(following::*)]'
    repro explain --json '//a/b'                   # the same plan as JSON
    repro explain --file d.xml --analyze '//a/b'   # optimized plan, est vs actual
    repro catalog add dblp d.xml          # shred once into the catalog
    repro catalog update dblp --op append_child --path . --fragment new.xml
    repro serve --port 8080               # concurrent query service
    repro serve --workers 4               # ... sharded over 4 worker processes

Multiple XPaths (positional and/or one per line of a ``--workload`` file)
are evaluated as one batch: a single load over the union of the queries'
schemas, one shared working instance, and cross-query reuse of identical
algebra subtrees.

Exit codes are uniform across subcommands: ``0`` success, ``2`` for
anything wrong with the *invocation or its inputs* (missing files,
malformed queries, unknown corpora or catalog documents — argparse uses 2
for usage errors too), ``1`` for runtime failures inside the engine.
Every error goes to stderr as one ``error: ...`` line.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import (
    CatalogError,
    CorpusError,
    MutationError,
    ReproError,
    XPathCompileError,
    XPathSyntaxError,
)

#: Runtime failure inside the engine (evaluation blew a limit, ...).
EXIT_ERROR = 1
#: The invocation or its inputs were invalid (argparse's convention).
EXIT_USAGE = 2


def _cmd_corpora(args: argparse.Namespace) -> int:
    from repro.corpora import CORPORA

    for name, info in CORPORA.items():
        print(f"{name:12s} default scale {info.default_scale:>6}  {info.description}")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.corpora import generate

    corpus = generate(args.corpus, args.scale, args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(corpus.xml)
        print(f"wrote {corpus.megabytes:.2f} MB to {args.output}", file=sys.stderr)
    else:
        sys.stdout.write(corpus.xml)
    return 0


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_tags(spec: str):
    if spec == "all":
        return None
    if spec == "none":
        return ()
    return [tag.strip() for tag in spec.split(",") if tag.strip()]


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.compress.stats import instance_stats
    from repro.model.serialize import save_file
    from repro.skeleton.loader import load

    result = load(
        _read(args.file),
        tags=_parse_tags(args.tags),
        strings=args.string or (),
        attributes="nodes" if args.attributes else "ignore",
    )
    stats = instance_stats(result.instance)
    print(f"parse+compress time : {result.parse_seconds:.3f}s")
    print(f"skeleton nodes |V^T|: {stats.tree_vertices:,}")
    print(f"dag vertices  |V^M| : {stats.vertices:,}")
    print(f"dag edges     |E^M| : {stats.edge_entries:,}")
    print(f"ratio |E^M|/|E^T|   : {100 * stats.edge_ratio:.2f}%")
    if args.save:
        save_file(result.instance, args.save)
        print(f"saved compressed instance to {args.save}", file=sys.stderr)
    if args.dot:
        print(result.instance.to_dot())
    return 0


def _read_workload(path: str) -> list[str]:
    """One XPath per line; blank lines and ``#`` comment lines are skipped."""
    queries = []
    for line in _read(path).splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            queries.append(line)
    return queries


def _print_result(result, paths: int, limit: int) -> None:
    from itertools import islice

    after_v, after_e = result.after
    print(f"query time          : {1000 * result.seconds:.2f}ms")
    print(f"instance            : {result.before[0]:,}v/{result.before[1]:,}e "
          f"-> {after_v:,}v/{after_e:,}e")
    print(f"selected dag nodes  : {result.dag_count():,}")
    print(f"selected tree nodes : {result.tree_count():,}")
    if paths:
        # islice over the lazy cursor: printing the first N matches does
        # bounded work even when the selection unfolds to millions of tree
        # nodes (the full materialise-then-slice of the old code blew up).
        for path in islice(result.iter_paths(limit=limit), paths):
            print("  " + (".".join(map(str, path)) or "(root)"))


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    from repro.api import Database, PreparedQuery

    queries = list(args.xpath)
    if args.workload:
        queries.extend(_read_workload(args.workload))
    if not queries:
        print("error: no queries given (positional XPaths or --workload)", file=sys.stderr)
        return EXIT_USAGE

    # Each text is parsed and compiled exactly once, up front: malformed
    # queries fail before the (possibly huge) document is even read, and
    # the same PreparedQuery objects feed planning and execution.
    prepared = [PreparedQuery.compile(text) for text in queries]

    if args.explain_json:
        # Plans only — no document load, no evaluation (like SQL EXPLAIN).
        plans = [one.plan().to_dict() for one in prepared]
        print(json.dumps(plans[0] if len(plans) == 1 else plans, indent=2))
        return 0

    if args.file.endswith(".dag"):
        # A previously saved compressed instance: skip the XML parse.
        from repro.model.serialize import load_file as load_dag

        database = Database.from_instance(load_dag(args.file), axes=args.axes)
        parse_seconds = 0.0
    else:
        database = Database.from_text(
            _read(args.file), axes=args.axes, reparse_per_query=False
        )
        parse_seconds = None  # known only after the one-scan load runs

    with database as db:
        if len(prepared) == 1:
            result = db.execute(prepared[0])
            if parse_seconds is None:
                parse_seconds = db.last_load.parse_seconds
            print(f"parse+compress time : {parse_seconds:.3f}s")
            _print_result(result, args.paths, args.limit)
            return 0

        # Batch: one scan over the union of all the queries' schemas, one
        # shared working copy, cross-query subexpression reuse.
        batch = db.execute_batch(prepared)
        if parse_seconds is None:
            parse_seconds = db.last_load.parse_seconds
        stats = batch.stats
        print(f"parse+compress time : {parse_seconds:.3f}s")
        print(f"batch               : {len(queries)} queries in "
              f"{1000 * batch.seconds:.2f}ms")
        print(f"shared work         : {stats.nodes_reused:,} of {stats.nodes_total:,} "
              f"algebra nodes reused ({100 * stats.sharing_ratio:.0f}%)")
        for query_text, result in zip(queries, batch):
            print(f"--- {query_text}")
            _print_result(result, args.paths, args.limit)
        return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server.cluster import default_worker_count
    from repro.server.http import serve

    if args.workers is not None:
        workers = args.workers
    else:
        # One worker per CPU — except on a single-core machine, where a
        # 1-worker fleet is the in-process server plus IPC tax (measured
        # ~8%, BENCH_cluster.json): serve in process there instead.
        cores = default_worker_count()
        workers = cores if cores > 1 else 0
    if workers < 0:
        print("error: --workers must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    if args.worker_threads < 1:
        print("error: --worker-threads must be >= 1", file=sys.stderr)
        return EXIT_USAGE
    if args.deadline_ms < 0 or args.max_queue < 0 or args.rate_limit < 0:
        print(
            "error: --deadline-ms, --max-queue and --rate-limit must be >= 0",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.http_threads < 0:
        print("error: --http-threads must be >= 0", file=sys.stderr)
        return EXIT_USAGE
    serve(
        args.catalog,
        host=args.host,
        port=args.port,
        mode=args.mode,
        window=args.window_ms / 1000.0,
        max_batch=args.max_batch,
        pool_capacity=args.pool_size,
        axes=args.axes,
        quiet=not args.verbose,
        workers=workers,
        worker_threads=args.worker_threads,
        stats_interval=args.stats_interval,
        deadline_ms=args.deadline_ms,
        max_queue=args.max_queue,
        rate_limit=args.rate_limit,
        frontend=args.frontend,
        http_threads=args.http_threads,
    )
    return 0


def _cmd_catalog_add(args: argparse.Namespace) -> int:
    from repro.server.catalog import Catalog

    entry = Catalog(args.catalog).add(
        args.name,
        _read(args.file),
        attributes="nodes" if args.attributes else "ignore",
    )
    print(
        f"added {entry.name}: {entry.megabytes:.2f} MB, "
        f"{entry.skeleton_nodes:,} skeleton nodes -> {entry.dag_vertices:,} dag vertices "
        f"in {entry.chunks} chunk(s) ({entry.shred_seconds:.3f}s)"
    )
    return 0


def _cmd_catalog_ls(args: argparse.Namespace) -> int:
    from repro.server.catalog import Catalog

    entries = Catalog(args.catalog).entries()
    if not entries:
        print(f"catalog {args.catalog!r} is empty")
        return 0
    for entry in entries:
        print(
            f"{entry.name:20s} {entry.megabytes:8.2f} MB  "
            f"{entry.dag_vertices:>9,}v/{entry.dag_edge_entries:,}e  "
            f"{entry.chunks:>4} chunk(s)  attributes={entry.attributes}"
        )
    return 0


def _cmd_catalog_evict(args: argparse.Namespace) -> int:
    from repro.server.catalog import Catalog

    Catalog(args.catalog).remove(args.name)
    print(f"evicted {args.name}", file=sys.stderr)
    return 0


def _parse_tree_path(spec: str) -> list[int]:
    """``"0.2.1"`` -> ``[0, 2, 1]``; ``""`` or ``"."`` address the root element."""
    spec = spec.strip()
    if spec in ("", "."):
        return []
    try:
        return [int(step) for step in spec.replace("/", ".").split(".")]
    except ValueError:
        raise MutationError(
            f"bad --path {spec!r}: expected dot-separated element ordinals like 0.2.1"
        ) from None


def _cmd_catalog_update(args: argparse.Namespace) -> int:
    import json

    from repro.server.catalog import Catalog

    if args.patch:
        if args.op or args.path is not None or args.fragment:
            print("error: --patch replaces --op/--path/--fragment", file=sys.stderr)
            return EXIT_USAGE
        try:
            mutations = json.loads(_read(args.patch))
        except json.JSONDecodeError as error:
            print(f"error: --patch {args.patch!r} is not valid JSON: {error}",
                  file=sys.stderr)
            return EXIT_USAGE
    else:
        if not args.op:
            print("error: give --op (with --path/--fragment) or --patch FILE",
                  file=sys.stderr)
            return EXIT_USAGE
        mutation = {"op": args.op, "path": _parse_tree_path(args.path or "")}
        if args.fragment:
            mutation["xml"] = _read(args.fragment)
        mutations = [mutation]
    entry = Catalog(args.catalog).mutate(args.name, mutations)
    print(
        f"updated {entry.name} -> v{entry.doc_version}: "
        f"{entry.skeleton_nodes:,} skeleton nodes -> {entry.dag_vertices:,} dag "
        f"vertices ({entry.shred_seconds:.3f}s incremental maintenance)"
    )
    return 0


def _cmd_catalog_verify(args: argparse.Namespace) -> int:
    from repro.server.catalog import Catalog

    catalog = Catalog(args.catalog)
    report = catalog.verify(repair=args.repair)
    worst = 0
    for name in sorted(report):
        entry = report[name]
        status = entry["status"]
        chunks = entry.get("chunks", "?")
        corrupt = entry.get("corrupt") or []
        line = f"{name:20s} {status:12s} {chunks} chunk(s)"
        if corrupt:
            line += f"  corrupt: {', '.join(map(str, corrupt))}"
        journal = entry.get("journal")
        if isinstance(journal, dict) and (journal.get("records") or journal.get("torn")):
            line += (
                f"  journal: {journal.get('records', 0)} record(s), "
                f"{journal.get('pending', 0)} pending"
            )
            if journal.get("torn"):
                line += ", torn tail"
            if journal.get("repaired") is not None:
                line += f", replayed {journal['repaired']}"
        print(line)
        if status == "corrupt":
            worst = EXIT_ERROR
    if not report:
        print(f"catalog {args.catalog!r} is empty")
    recovery = catalog.last_recovery
    if recovery.get("staging_removed") or recovery.get("manifest_tmp_removed"):
        removed = recovery.get("staging_removed") or []
        print(
            f"startup recovery: removed {len(removed)} orphaned staging dir(s)"
            + (", torn manifest tmp" if recovery.get("manifest_tmp_removed") else ""),
            file=sys.stderr,
        )
    return worst


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.api import Plan

    if args.analyze and not args.file:
        print("error: --analyze needs --file (actuals require a document)", file=sys.stderr)
        return EXIT_USAGE
    if args.file:
        # Plan against a real document: the embedded database collects
        # statistics from the loaded instance, so the printed plan is the
        # optimized one actually evaluated, annotated with per-node
        # cardinality estimates (and, under --analyze, measured actuals).
        from repro.api import Database

        database = Database.from_file(args.file)
        plan = database.explain(args.xpath, analyze=args.analyze)
    else:
        plan = Plan.from_query(args.xpath)
    if args.json:
        print(plan.to_json(indent=2))
        return 0
    print(plan.render())
    if plan.upward_only:
        print("\nupward-only: evaluation never decompresses (Corollary 3.7)")
    if plan.optimizer and plan.optimizer.get("rules_applied"):
        print("\nrewrites: " + ", ".join(plan.optimizer["rules_applied"]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Path queries on compressed XML (Buneman/Grohe/Koch, VLDB 2003)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("corpora", help="list corpus generators").set_defaults(
        func=_cmd_corpora
    )

    gen = commands.add_parser("gen", help="generate a synthetic corpus")
    gen.add_argument("corpus")
    gen.add_argument("--scale", type=int, default=None)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("-o", "--output")
    gen.set_defaults(func=_cmd_gen)

    compress = commands.add_parser("compress", help="compress a document, print stats")
    compress.add_argument("file", help="XML file ('-' for stdin)")
    compress.add_argument(
        "--tags", default="all", help="'all', 'none', or comma-separated tag list"
    )
    compress.add_argument(
        "--string", action="append", help="string-containment set (repeatable)"
    )
    compress.add_argument(
        "--attributes", action="store_true", help="encode attributes as @name nodes"
    )
    compress.add_argument("--save", help="write the instance to a .dag file")
    compress.add_argument("--dot", action="store_true", help="print graphviz dot")
    compress.set_defaults(func=_cmd_compress)

    query = commands.add_parser(
        "query", help="evaluate Core XPath queries (several = one batch)"
    )
    query.add_argument("file", help="XML file ('-' for stdin) or a saved .dag instance")
    query.add_argument("xpath", nargs="*", help="one or more XPath queries")
    query.add_argument(
        "--workload", help="file with one XPath per line ('#' comments allowed)"
    )
    query.add_argument("--paths", type=int, default=0, help="print up to N result paths")
    query.add_argument("--limit", type=int, default=1_000_000)
    query.add_argument(
        "--axes", choices=("functional", "inplace"), default="functional",
        help="axis implementation (inplace = the paper's Figure 4)",
    )
    query.add_argument(
        "--explain-json", action="store_true",
        help="print the structured query plan(s) as JSON and exit without "
        "loading the document or evaluating anything",
    )
    query.set_defaults(func=_cmd_query)

    explain = commands.add_parser("explain", help="print a query's algebra plan")
    explain.add_argument("xpath")
    explain.add_argument(
        "--json", action="store_true",
        help="structured plan JSON (per-node algebra ops + required schema) "
        "instead of the ASCII tree",
    )
    explain.add_argument(
        "--file",
        help="plan against this XML (or .dag) document: shows the optimized "
        "plan with per-node cardinality estimates",
    )
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the plan and annotate every node with its actual "
        "cardinalities (requires --file)",
    )
    explain.set_defaults(func=_cmd_explain)

    def add_catalog_dir(target) -> None:
        target.add_argument(
            "-C",
            "--catalog",
            default="repro-catalog",
            help="catalog directory (default: ./repro-catalog)",
        )

    serve = commands.add_parser(
        "serve", help="run the concurrent query service over a catalog"
    )
    add_catalog_dir(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--mode", choices=("snapshot", "persistent"), default="snapshot",
        help="per-batch copy of the resident master (snapshot) or one "
        "long-lived working instance per pool entry (persistent)",
    )
    serve.add_argument(
        "--window-ms", type=float, default=0.0,
        help="coalescing window in milliseconds (0 = batch whatever queues "
        "up while the previous batch runs)",
    )
    serve.add_argument("--max-batch", type=int, default=64)
    serve.add_argument(
        "--pool-size", type=int, default=8,
        help="max resident (document, schema) instances before LRU eviction",
    )
    serve.add_argument("--axes", choices=("functional", "inplace"), default="functional")
    serve.add_argument(
        "--workers", type=int, default=None,
        help="pre-forked worker processes, requests sharded by "
        "(document, string-schema) rendezvous hash (default: one per CPU, "
        "or in-process on a single-core machine; 0 = always in process)",
    )
    serve.add_argument(
        "--worker-threads", type=int, default=4,
        help="request threads inside each worker (same-shard concurrency "
        "still coalesces into shared batches)",
    )
    serve.add_argument(
        "--stats-interval", type=float, default=0.0, metavar="S",
        help="log a one-line stats summary to stderr every S seconds "
        "(queue depth, shard residency, respawns; 0 = off)",
    )
    serve.add_argument(
        "--deadline-ms", type=float, default=0.0,
        help="default end-to-end deadline for requests that carry none "
        "(expired requests get a structured deadline_exceeded; 0 = unbounded)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=0,
        help="max concurrently admitted requests before shedding with "
        "429 + Retry-After (0 = unbounded)",
    )
    serve.add_argument(
        "--rate-limit", type=float, default=0.0,
        help="per-client requests/second token-bucket limit, keyed by the "
        "X-Repro-Client header or peer address (0 = off)",
    )
    serve.add_argument(
        "--frontend", choices=("async", "threaded"), default="async",
        help="HTTP transport: the asyncio event-loop server (default) or "
        "the thread-per-connection fallback; both serve byte-identical "
        "responses over the same route core",
    )
    serve.add_argument(
        "--http-threads", type=int, default=0,
        help="executor threads bridging the async front-end's event loop "
        "to the service (0 = automatic; ignored with --frontend threaded)",
    )
    serve.add_argument("--verbose", action="store_true", help="log every request")
    serve.set_defaults(func=_cmd_serve)

    catalog = commands.add_parser(
        "catalog", help="manage the persistent document catalog"
    )
    actions = catalog.add_subparsers(dest="action", required=True)

    catalog_add = actions.add_parser(
        "add", help="register a document: shred it into the store once"
    )
    catalog_add.add_argument("name", help="document name (letters, digits, . _ -)")
    catalog_add.add_argument("file", help="XML file ('-' for stdin)")
    catalog_add.add_argument(
        "--attributes", action="store_true", help="encode attributes as @name nodes"
    )
    add_catalog_dir(catalog_add)
    catalog_add.set_defaults(func=_cmd_catalog_add)

    catalog_ls = actions.add_parser("ls", help="list registered documents")
    add_catalog_dir(catalog_ls)
    catalog_ls.set_defaults(func=_cmd_catalog_ls)

    catalog_evict = actions.add_parser(
        "evict", help="remove a document and its shredded chunks"
    )
    catalog_evict.add_argument("name")
    add_catalog_dir(catalog_evict)
    catalog_evict.set_defaults(func=_cmd_catalog_evict)

    catalog_update = actions.add_parser(
        "update", help="apply an incremental mutation to a registered document"
    )
    catalog_update.add_argument("name")
    catalog_update.add_argument(
        "--op", choices=("append_child", "replace_subtree", "delete_subtree"),
        help="the mutation operation (or use --patch for a batch)",
    )
    catalog_update.add_argument(
        "--path", default=None, metavar="ORDINALS",
        help="target element as dot-separated element-child ordinals from the "
        "root ('' or '.' = the root element itself), e.g. 0.2.1",
    )
    catalog_update.add_argument(
        "--fragment", metavar="FILE",
        help="XML fragment file ('-' for stdin) for append_child/replace_subtree",
    )
    catalog_update.add_argument(
        "--patch", metavar="FILE",
        help="JSON file ('-' for stdin) holding a list of "
        '{"op", "path", "xml"?} mutations applied as one atomic batch',
    )
    add_catalog_dir(catalog_update)
    catalog_update.set_defaults(func=_cmd_catalog_update)

    catalog_verify = actions.add_parser(
        "verify", help="check every document's chunk checksums; exit 1 on corruption"
    )
    catalog_verify.add_argument(
        "--repair", action="store_true",
        help="re-shred corrupt documents from their kept source text and "
        "replay/truncate any pending or torn journal records",
    )
    add_catalog_dir(catalog_verify)
    catalog_verify.set_defaults(func=_cmd_catalog_verify)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (XPathSyntaxError, XPathCompileError) as error:
        print(f"error: invalid query: {error}", file=sys.stderr)
        return EXIT_USAGE
    except (CorpusError, CatalogError, MutationError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USAGE
    except FileNotFoundError as error:
        print(f"error: file not found: {error.filename or error}", file=sys.stderr)
        return EXIT_USAGE
    except IsADirectoryError as error:
        print(f"error: expected a file, got a directory: {error.filename}", file=sys.stderr)
        return EXIT_USAGE
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())

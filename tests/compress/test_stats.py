"""Tests for instance statistics (Figure 6 quantities)."""

from repro.compress.minimize import minimize
from repro.compress.stats import instance_stats
from repro.model.instance import tree_instance


class TestInstanceStats:
    def test_tree_stats(self, bib_tree):
        stats = instance_stats(bib_tree)
        assert stats.vertices == 12
        assert stats.tree_vertices == 12
        assert stats.edge_entries == 11
        assert stats.tree_edges == 11
        assert stats.edge_ratio == 1.0

    def test_compressed_stats(self, figure2_compressed):
        stats = instance_stats(figure2_compressed)
        assert stats.vertices == 5
        assert stats.tree_vertices == 12
        assert stats.edge_entries == 6
        # DAG edges with multiplicities: bib->book(1)+paper(2), book->title(1)
        # +author(3), paper->title(1)+author(1) = 9 (tree has 11; sharing
        # keeps the book/paper subtrees single).
        assert stats.edges_expanded == 9
        assert abs(stats.edge_ratio - 6 / 11) < 1e-12

    def test_ratio_improves_with_compression(self, bib_tree):
        before = instance_stats(bib_tree)
        after = instance_stats(minimize(bib_tree))
        assert after.edge_ratio < before.edge_ratio
        assert after.tree_vertices == before.tree_vertices

    def test_row_formatting(self, figure2_compressed):
        row = instance_stats(figure2_compressed).row()
        assert "|V^T|=" in row and "%" in row

    def test_single_vertex_ratio(self):
        stats = instance_stats(tree_instance(("only", [])))
        assert stats.tree_edges == 0
        assert stats.edge_ratio == 1.0


# ----------------------------------------------------------------------
# DocumentStats: the optimizer's statistics catalog
# ----------------------------------------------------------------------

import math

import pytest

from repro.compress.stats import STATS_FORMAT_VERSION, DocumentStats
from repro.model.schema import string_set


class TestDocumentStats:
    def test_counts_from_tree(self, bib_tree):
        stats = DocumentStats.from_instance(bib_tree, complete_tags=True)
        assert stats.tree_nodes == 12
        assert stats.dag_vertices == 12
        assert stats.tree_count("bib") == 1
        assert stats.tree_count("book") == 1
        assert stats.tree_count("paper") == 2
        assert stats.tree_count("title") == 3
        assert stats.tree_count("author") == 5
        assert stats.root_sets == ("bib",)
        assert stats.root_in("bib") is True
        assert stats.root_in("title") is False

    def test_counts_survive_compression(self, bib_tree, figure2_compressed):
        """Tree-node counts are multiplicity-weighted: identical for the
        uncompressed tree and its compressed DAG (the whole point)."""
        flat = DocumentStats.from_instance(bib_tree)
        packed = DocumentStats.from_instance(figure2_compressed)
        for name in ("bib", "book", "paper", "title", "author"):
            assert flat.tree_count(name) == packed.tree_count(name)
        assert flat.tree_nodes == packed.tree_nodes == 12
        assert packed.dag_vertices == 5
        assert math.isclose(flat.avg_depth, packed.avg_depth)
        assert math.isclose(flat.avg_fanout, packed.avg_fanout)
        assert math.isclose(flat.avg_subtree, packed.avg_subtree)

    def test_unknown_tag_semantics(self, bib_tree):
        complete = DocumentStats.from_instance(bib_tree, complete_tags=True)
        partial = DocumentStats.from_instance(bib_tree, complete_tags=False)
        assert complete.tree_count("absent") == 0
        assert complete.is_empty("absent")
        assert partial.tree_count("absent") is None
        assert not partial.is_empty("absent")
        # String sets are never provable from tag completeness alone.
        assert complete.tree_count(string_set("x")) is None
        assert not complete.is_empty(string_set("x"))

    def test_string_selectivity_orders_needles(self, bib_tree):
        stats = DocumentStats.from_instance(
            bib_tree, text="the quick brown fox " * 50, complete_tags=True
        )
        common = stats.string_selectivity("the")
        rare = stats.string_selectivity("zzz")
        assert common is not None and rare is not None
        assert common > rare
        assert rare >= 0.0
        # Without a sketch there is no estimate at all.
        assert DocumentStats.from_instance(bib_tree).string_selectivity("x") is None

    def test_round_trip(self, figure2_compressed):
        stats = DocumentStats.from_instance(
            figure2_compressed, text="abc", complete_tags=True
        )
        rebuilt = DocumentStats.from_dict(stats.to_dict())
        assert rebuilt == stats

    def test_round_trip_through_json(self, bib_tree):
        import json

        stats = DocumentStats.from_instance(bib_tree, text="hello", complete_tags=True)
        rebuilt = DocumentStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert rebuilt == stats

    def test_version_mismatch_raises(self, bib_tree):
        payload = DocumentStats.from_instance(bib_tree).to_dict()
        payload["format_version"] = STATS_FORMAT_VERSION + 1
        with pytest.raises(ValueError):
            DocumentStats.from_dict(payload)
        with pytest.raises(ValueError):
            DocumentStats.from_dict("not a dict")

    def test_malformed_payload_raises(self, bib_tree):
        payload = DocumentStats.from_instance(bib_tree).to_dict()
        del payload["tree_nodes"]
        with pytest.raises(ValueError):
            DocumentStats.from_dict(payload)

    def test_temps_and_results_excluded(self, bib_tree):
        from repro.model.schema import result_set, temp_set

        bib_tree.ensure_set(temp_set(1))
        bib_tree.ensure_set(result_set(1))
        stats = DocumentStats.from_instance(bib_tree)
        assert temp_set(1) not in stats.sets
        assert result_set(1) not in stats.sets

    def test_huge_counts_saturate_floats(self):
        """A Figure-5 style doubling chain: exact big-int tree counts, but
        capped float aggregates (JSON has no Infinity)."""
        from repro.model.instance import Instance

        instance = Instance(["a"])
        vertex = instance.new_vertex(["a"])
        for _ in range(1100):
            vertex = instance.new_vertex(["a"], [(vertex, 2)])
        instance.set_root(vertex)
        stats = DocumentStats.from_instance(instance)
        assert stats.tree_nodes > 2**1000  # exact big int
        assert stats.avg_depth <= 1e300
        assert stats.avg_subtree <= 1e300
        import json

        json.dumps(stats.to_dict())  # serialisable despite the magnitudes

"""XML substrate: tokenizer, SAX-like parser, DOM, writer.

Built from scratch (section 4 of the paper describes the system's own
SAX-like parser as part of the contribution, so no XML library is used).
"""

from repro.xmlio.dom import Document, Element, parse_document
from repro.xmlio.escape import escape_attribute, escape_text, unescape
from repro.xmlio.events import (
    Comment,
    Doctype,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    Text,
)
from repro.xmlio.parser import Handler, parse_events, sax_parse
from repro.xmlio.tokenizer import tokenize
from repro.xmlio.writer import serialize, write_document

__all__ = [
    "Comment",
    "Doctype",
    "Document",
    "Element",
    "EndElement",
    "Event",
    "Handler",
    "ProcessingInstruction",
    "StartElement",
    "Text",
    "escape_attribute",
    "escape_text",
    "parse_document",
    "parse_events",
    "sax_parse",
    "serialize",
    "tokenize",
    "unescape",
    "write_document",
]

"""Unit tests for the cost-based plan optimizer: one class per rule family.

The split-safety contract itself (byte-identical results) is pinned by the
property suite in ``tests/property/test_optimizer_properties.py``; these
tests pin each rewrite's *shape* — what fires, what is guarded, and what
the estimator reports.
"""

import pytest

from repro.compress.stats import DocumentStats
from repro.model.instance import tree_instance
from repro.model.schema import string_set
from repro.xpath.algebra import (
    AllNodes,
    AxisApply,
    Difference,
    EmptySet,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
)
from repro.xpath.optimizer import (
    RULE_FOLD_EMPTY,
    RULE_PROPAGATE_EMPTY,
    RULE_REORDER,
    RULE_ROOT_AXIS,
    optimize,
)

from tests.conftest import BIB_SPEC


@pytest.fixture
def bib_stats() -> DocumentStats:
    """Complete-tag statistics of the Example 1.1 bibliography (12 nodes)."""
    return DocumentStats.from_instance(
        tree_instance(BIB_SPEC), text="Codd relational model", complete_tags=True
    )


@pytest.fixture
def partial_stats() -> DocumentStats:
    """The same document, but with an incomplete tag universe."""
    return DocumentStats.from_instance(tree_instance(BIB_SPEC), complete_tags=False)


class TestNoStatistics:
    def test_none_stats_is_identity(self):
        expr = AxisApply("child", NamedSet("absent"))
        result = optimize(expr, None)
        assert result.expr is expr
        assert result.original is expr
        assert not result.optimized
        assert not result.stats_available
        assert result.rules_applied == ()

    def test_untouched_plan_keeps_object_identity(self, bib_stats):
        expr = Intersect(AxisApply("child", NamedSet("book")), NamedSet("title"))
        result = optimize(expr, bib_stats)
        # 'book' and 'title' both exist; child(book) has no identity; the
        # conjunct order (leaf after join) is already re-examined, so only
        # check the plan evaluates the same conjuncts.
        assert result.stats_available


class TestFoldEmptySet:
    def test_absent_tag_folds_with_complete_tags(self, bib_stats):
        result = optimize(NamedSet("absent"), bib_stats)
        assert isinstance(result.expr, EmptySet)
        assert RULE_FOLD_EMPTY in result.rules_applied

    def test_absent_tag_kept_without_complete_tags(self, partial_stats):
        expr = NamedSet("absent")
        result = optimize(expr, partial_stats)
        assert result.expr is expr
        assert not result.optimized

    def test_unknown_string_set_never_folds(self, bib_stats):
        # The sketch may estimate ~0 but it is never a proof.
        expr = NamedSet(string_set("zzzq"))
        result = optimize(expr, bib_stats)
        assert result.expr is expr

    def test_known_string_set_folds_when_counted_empty(self):
        instance = tree_instance(BIB_SPEC)
        name = string_set("xyz")
        instance.ensure_set(name)  # in the schema, provably empty
        stats = DocumentStats.from_instance(instance)
        result = optimize(NamedSet(name), stats)
        assert isinstance(result.expr, EmptySet)


class TestPropagateEmpty:
    def test_axis_image_of_empty_folds(self, bib_stats):
        expr = AxisApply("child", NamedSet("absent"))
        result = optimize(expr, bib_stats)
        assert isinstance(result.expr, EmptySet)
        assert RULE_PROPAGATE_EMPTY in result.rules_applied

    def test_whole_downward_chain_folds(self, bib_stats):
        # //absent/title: the spine below the fold is split-free after the
        # root-axis identity, so the entire conjunction collapses.
        expr = Intersect(
            AxisApply(
                "child",
                Intersect(
                    AxisApply("descendant", RootSet()), NamedSet("absent")
                ),
            ),
            NamedSet("title"),
        )
        result = optimize(expr, bib_stats)
        assert isinstance(result.expr, EmptySet)

    def test_union_drops_empty_branch(self, bib_stats):
        keep = AxisApply("child", NamedSet("book"))
        result = optimize(Union(NamedSet("absent"), keep), bib_stats)
        assert result.expr == keep
        result = optimize(Union(keep, NamedSet("absent")), bib_stats)
        assert result.expr == keep

    def test_difference_empty_left_guarded_by_split_free(self, bib_stats):
        splitting = AxisApply("child", NamedSet("book"))
        upward = AxisApply("ancestor", NamedSet("book"))
        # ∅ − (split-free) folds away entirely ...
        folded = optimize(Difference(NamedSet("absent"), upward), bib_stats)
        assert isinstance(folded.expr, EmptySet)
        # ... but a splitting right operand must stay in the plan.
        kept = optimize(Difference(NamedSet("absent"), splitting), bib_stats)
        assert isinstance(kept.expr, Difference)
        assert isinstance(kept.expr.left, EmptySet)

    def test_difference_empty_right_drops(self, bib_stats):
        keep = AxisApply("child", NamedSet("book"))
        result = optimize(Difference(keep, NamedSet("absent")), bib_stats)
        assert result.expr == keep

    def test_conjunction_with_empty_keeps_splitting_conjuncts(self, bib_stats):
        splitting = AxisApply("descendant", NamedSet("book"))
        result = optimize(Intersect(splitting, NamedSet("absent")), bib_stats)
        # The splitting subtree must remain, but ∅ is intersected first so
        # the runtime short-circuit gets its chance.
        assert isinstance(result.expr, Intersect)
        assert isinstance(result.expr.left, EmptySet)
        assert result.expr.right == splitting

    def test_root_filter_of_empty_folds(self, bib_stats):
        result = optimize(RootFilter(NamedSet("absent")), bib_stats)
        assert isinstance(result.expr, EmptySet)


class TestRootAxisIdentity:
    @pytest.mark.parametrize(
        "axis",
        [
            "parent",
            "ancestor",
            "following-sibling",
            "preceding-sibling",
            "following",
            "preceding",
        ],
    )
    def test_root_has_no_relatives(self, bib_stats, axis):
        result = optimize(AxisApply(axis, RootSet()), bib_stats)
        assert isinstance(result.expr, EmptySet)
        assert RULE_ROOT_AXIS in result.rules_applied

    def test_descendant_of_root(self, bib_stats):
        result = optimize(AxisApply("descendant", RootSet()), bib_stats)
        assert result.expr == Difference(AllNodes(), RootSet())

    def test_descendant_or_self_of_root(self, bib_stats):
        result = optimize(AxisApply("descendant-or-self", RootSet()), bib_stats)
        assert result.expr == AllNodes()

    @pytest.mark.parametrize("axis", ["self", "ancestor-or-self"])
    def test_root_self_identities(self, bib_stats, axis):
        result = optimize(AxisApply(axis, RootSet()), bib_stats)
        assert result.expr == RootSet()

    def test_child_of_root_is_left_alone(self, bib_stats):
        expr = AxisApply("child", RootSet())
        result = optimize(expr, bib_stats)
        assert result.expr is expr

    @pytest.mark.parametrize("axis", ["child", "descendant"])
    def test_downward_image_of_all_nodes(self, bib_stats, axis):
        result = optimize(AxisApply(axis, AllNodes()), bib_stats)
        assert result.expr == Difference(AllNodes(), RootSet())

    @pytest.mark.parametrize("axis", ["self", "descendant-or-self", "ancestor-or-self"])
    def test_reflexive_image_of_all_nodes(self, bib_stats, axis):
        result = optimize(AxisApply(axis, AllNodes()), bib_stats)
        assert result.expr == AllNodes()

    @pytest.mark.parametrize("axis", ["parent", "ancestor"])
    def test_upward_image_of_all_nodes_left_alone(self, bib_stats, axis):
        # The forward image is the set of non-leaves — no closed form.
        expr = AxisApply(axis, AllNodes())
        result = optimize(expr, bib_stats)
        assert result.expr is expr


class TestReorderConjuncts:
    def test_leaf_moves_ahead_of_structural_join(self, bib_stats):
        join = AxisApply("descendant", NamedSet("book"))
        result = optimize(Intersect(join, NamedSet("title")), bib_stats)
        assert isinstance(result.expr, Intersect)
        assert result.expr.left == NamedSet("title")
        assert result.expr.right == join
        assert RULE_REORDER in result.rules_applied

    def test_selective_leaf_first_within_cost_class(self, bib_stats):
        # 'book' selects 1 tree node, 'author' selects 5: book goes first.
        result = optimize(Intersect(NamedSet("author"), NamedSet("book")), bib_stats)
        assert result.expr == Intersect(NamedSet("book"), NamedSet("author"))

    def test_equal_conjuncts_keep_input_order(self, bib_stats):
        expr = Intersect(NamedSet("paper"), NamedSet("book"))
        # paper (2 nodes) vs book (1 node): book first — deterministic.
        once = optimize(expr, bib_stats).expr
        again = optimize(expr, bib_stats).expr
        assert once == again == Intersect(NamedSet("book"), NamedSet("paper"))

    def test_all_conjuncts_survive_reordering(self, bib_stats):
        from repro.xpath.optimizer import _Optimizer

        parts = [
            AxisApply("descendant", NamedSet("book")),
            NamedSet("title"),
            AxisApply("ancestor", NamedSet("author")),
        ]
        expr = Intersect(Intersect(parts[0], parts[1]), parts[2])
        result = optimize(expr, bib_stats)
        flat = _Optimizer(bib_stats)._conjuncts(result.expr)
        assert sorted(map(repr, flat)) == sorted(map(repr, parts))


class TestAnnotations:
    def test_estimates_cover_every_node(self, bib_stats):
        expr = Intersect(AxisApply("descendant", RootSet()), NamedSet("book"))
        result = optimize(expr, bib_stats)
        stack, seen = [result.expr], 0
        while stack:
            node = stack.pop()
            seen += 1
            assert id(node) in result.estimates
            stack.extend(node.children())
        assert seen >= 3

    def test_estimates_exact_for_tag_leaves(self, bib_stats):
        result = optimize(NamedSet("author"), bib_stats)
        assert result.estimates[id(result.expr)] == 5.0

    def test_estimates_clamped_to_document(self, bib_stats):
        result = optimize(AxisApply("descendant", AllNodes()), bib_stats)
        for value in result.estimates.values():
            assert 0.0 <= value <= float(bib_stats.tree_nodes)

    def test_rule_tags_pruned_to_final_tree_and_deduped(self, bib_stats):
        # //absent/title folds in several steps; all intermediate EmptySet
        # nodes die, and the surviving node carries each tag at most once.
        expr = Intersect(
            AxisApply(
                "child",
                Intersect(AxisApply("descendant", RootSet()), NamedSet("absent")),
            ),
            NamedSet("title"),
        )
        result = optimize(expr, bib_stats)
        live = set()
        stack = [result.expr]
        while stack:
            node = stack.pop()
            live.add(id(node))
            stack.extend(node.children())
        assert set(result.rules) <= live
        for tags in result.rules.values():
            assert len(tags) == len(set(tags))

    def test_original_preserved(self, bib_stats):
        expr = AxisApply("child", NamedSet("absent"))
        result = optimize(expr, bib_stats)
        assert result.original is expr
        assert result.optimized

"""Concurrent query serving over the persistent store (load once, query forever).

The subsystem has four layers, bottom up:

* :mod:`repro.server.catalog` — a directory of documents shredded into the
  chunked store at registration time; warm starts assemble instances from
  chunks instead of re-parsing XML.  The on-disk layout doubles as the
  fleet's replication channel (safe for concurrent reader processes).
* :mod:`repro.server.pool` — a bounded LRU of resident master instances
  keyed by ``(document, schema key)``, with per-entry locks.
* :mod:`repro.server.service` / :mod:`repro.server.routes` /
  :mod:`repro.server.http` / :mod:`repro.server.asyncio_http` — the
  coalescing evaluation front (concurrent requests for one document share
  a single :class:`repro.engine.batch.BatchEvaluator` run), the
  transport-agnostic route core both front-ends share (byte-identical
  responses by construction), and the two stdlib bindings: the threaded
  ``http.server`` one and the asyncio one (``repro serve --frontend``).
* :mod:`repro.server.metrics` — lock-cheap counters/gauges/histograms and
  the Prometheus text exposition served at ``GET /metrics``.
* :mod:`repro.server.cluster` / :mod:`repro.server.worker` — the pre-forked
  worker fleet (``repro serve --workers N``): rendezvous-hashed shard
  affinity, crash detection + respawn, graceful drain; each worker process
  owns its own pool and batch evaluator over the shared catalog.
* :mod:`repro.server.resilience` — the failure-handling primitives shared
  by every layer above: end-to-end :class:`Deadline` budgets, bounded
  admission with load shedding (:class:`AdmissionController`), per-shard
  :class:`CircuitBreaker` route-around, and the :data:`FAULTS` injection
  seam the chaos suite drives.
"""

from repro.server.asyncio_http import AsyncReproHTTPServer
from repro.server.catalog import Catalog, CatalogEntry
from repro.server.cluster import WorkerFleet, default_worker_count
from repro.server.http import ReproHTTPServer, create_server, serve, wait_ready
from repro.server.metrics import (
    MetricsRegistry,
    ServerMetrics,
    parse_prometheus_text,
)
from repro.server.pool import InstancePool, PoolEntry
from repro.server.routes import Request, Response, Router
from repro.server.resilience import (
    FAULTS,
    AdmissionController,
    CircuitBreaker,
    Deadline,
    FaultInjector,
    TokenBucket,
)
from repro.server.service import QueryService, decode_result

__all__ = [
    "AdmissionController",
    "AsyncReproHTTPServer",
    "Catalog",
    "CatalogEntry",
    "CircuitBreaker",
    "Deadline",
    "FAULTS",
    "FaultInjector",
    "InstancePool",
    "MetricsRegistry",
    "PoolEntry",
    "QueryService",
    "ReproHTTPServer",
    "Request",
    "Response",
    "Router",
    "ServerMetrics",
    "TokenBucket",
    "WorkerFleet",
    "create_server",
    "decode_result",
    "default_worker_count",
    "parse_prometheus_text",
    "serve",
    "wait_ready",
]

"""XMILL-style string containers (section 1's skeleton/text separation).

The paper stores character data separately from the skeleton, grouped into
containers, XMILL-style [15]; queries touch the skeleton globally but string
data only locally.  ``ContainerStore`` groups text chunks by the tag of
their parent element (XMILL's default heuristic) while remembering enough
ordering information to reassemble the document losslessly: skeleton +
containers is a faithful decomposition, not just a compressor.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Container:
    """All text chunks that share a container key, in document order."""

    key: str
    chunks: list[str] = field(default_factory=list)

    def append(self, chunk: str) -> int:
        self.chunks.append(chunk)
        return len(self.chunks) - 1

    @property
    def total_characters(self) -> int:
        return sum(len(chunk) for chunk in self.chunks)


class ContainerStore:
    """A set of containers plus the global text-event order.

    ``add(key, chunk)`` returns a ``(key, index)`` reference; the loader
    records these references in document order so the original interleaving
    of text and markup can be replayed.
    """

    def __init__(self) -> None:
        self._containers: dict[str, Container] = {}
        self._order: list[tuple[str, int]] = []

    def add(self, key: str, chunk: str) -> tuple[str, int]:
        container = self._containers.get(key)
        if container is None:
            container = Container(key)
            self._containers[key] = container
        reference = (key, container.append(chunk))
        self._order.append(reference)
        return reference

    def get(self, reference: tuple[str, int]) -> str:
        key, index = reference
        return self._containers[key].chunks[index]

    def container(self, key: str) -> Container | None:
        return self._containers.get(key)

    def keys(self) -> list[str]:
        return sorted(self._containers)

    def in_document_order(self) -> list[str]:
        """All text chunks replayed in original document order."""
        return [self.get(reference) for reference in self._order]

    @property
    def num_containers(self) -> int:
        return len(self._containers)

    @property
    def total_characters(self) -> int:
        return sum(c.total_characters for c in self._containers.values())

    def summary(self) -> str:
        lines = [f"{self.num_containers} containers, {self.total_characters} chars"]
        for key in self.keys():
            container = self._containers[key]
            lines.append(
                f"  {key}: {len(container.chunks)} chunks, "
                f"{container.total_characters} chars"
            )
        return "\n".join(lines)

"""Tests for the benchmark table formatting and harness rows."""

from repro.bench.harness import figure6_row, figure7_row
from repro.bench.queries import QUERIES, QUERY_IDS, queries_for
from repro.bench.tables import fmt_int, fmt_pct, fmt_seconds, format_table
from repro.corpora import generate


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "count"], [["alpha", "1,000"], ["b", "22"]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("name")
        # Numeric column right-aligned.
        assert lines[3].endswith("1,000")
        assert lines[4].endswith("   22")

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_fmt_helpers(self):
        assert fmt_int(1234567) == "1,234,567"
        assert fmt_pct(0.0525) == "5.2%"
        assert fmt_seconds(0.0012) == "1.20ms"
        assert fmt_seconds(1.5) == "1.500s"


class TestHarnessRows:
    def test_figure6_row_fields(self):
        xml = generate("tpcd", 20).xml
        row = figure6_row("tpcd", xml)
        assert row.corpus == "tpcd"
        # document root + table + 20 rows + 20 * 10 column leaves.
        assert row.tree_vertices == 2 + 20 + 20 * 10
        assert 0 < row.ratio_minus <= row.ratio_plus

    def test_figure7_row_fields(self):
        xml = generate("baseball", 6).xml
        row = figure7_row("baseball", xml, "Q2")
        assert row.query == queries_for("baseball")["Q2"]
        assert row.parse_seconds > 0
        assert row.selected_tree >= row.selected_dag >= 1

    def test_queries_table_complete(self):
        for corpus, queries in QUERIES.items():
            assert sorted(queries) == sorted(QUERY_IDS), corpus

"""Tests for the persistent document catalog (load once, query forever)."""

import pytest

from repro.engine.evaluator import evaluate
from repro.errors import CatalogError
from repro.model.equivalence import equivalent
from repro.server.catalog import Catalog
from repro.skeleton.loader import load_instance

from tests.skeleton.test_loader import BIB_XML


@pytest.fixture
def catalog(tmp_path):
    return Catalog(str(tmp_path / "cat"))


class TestRegistry:
    def test_add_and_entry(self, catalog):
        entry = catalog.add("bib", BIB_XML)
        assert entry.name == "bib"
        assert entry.chunks == 2  # book chunk + shared paper chunk
        assert set(entry.tags) >= {"bib", "book", "paper", "title", "author"}
        assert "bib" in catalog
        assert catalog.names() == ["bib"]

    def test_duplicate_rejected(self, catalog):
        catalog.add("bib", BIB_XML)
        with pytest.raises(CatalogError, match="already in the catalog"):
            catalog.add("bib", BIB_XML)

    def test_unknown_document(self, catalog):
        with pytest.raises(CatalogError, match="unknown catalog document 'nope'"):
            catalog.entry("nope")

    @pytest.mark.parametrize("name", ["", "../up", "a/b", "a b", ".hidden"])
    def test_bad_names_rejected(self, catalog, name):
        with pytest.raises(CatalogError, match="invalid document name"):
            catalog.add(name, BIB_XML)

    def test_remove(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        catalog.remove("bib")
        assert "bib" not in catalog
        assert not (tmp_path / "cat" / "bib").exists()
        with pytest.raises(CatalogError):
            catalog.remove("bib")

    def test_reopen_from_disk(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        reopened = Catalog(str(tmp_path / "cat"))
        assert reopened.names() == ["bib"]
        assert reopened.entry("bib").chunks == 2
        assert reopened.xml("bib") == BIB_XML


class TestWarmStart:
    def test_assembled_equivalent_to_direct_load(self, catalog):
        """The warm path (chunks only, no XML parse) rebuilds the instance."""
        catalog.add("bib", BIB_XML)
        warm = catalog.load_instance("bib")
        warm.validate()
        assert equivalent(warm, load_instance(BIB_XML, tags=None))

    def test_warm_instance_answers_queries(self, catalog):
        catalog.add("bib", BIB_XML)
        result = evaluate(catalog.load_instance("bib"), "//book/author")
        assert result.tree_count() == 3

    def test_string_schema_reload(self, catalog):
        """String predicates force one re-scan of the kept document text."""
        catalog.add("bib", BIB_XML)
        instance = catalog.load_instance("bib", ("Codd",))
        assert instance.has_set("#contains:Codd")
        result = evaluate(instance, '//paper[author["Codd"]]')
        assert result.tree_count() == 1

    def test_attributes_mode_preserved(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        xml = '<r><item id="alpha"/><item id="beta"/></r>'
        catalog.add("doc", xml, attributes="nodes")
        assert catalog.entry("doc").attributes == "nodes"
        result = evaluate(catalog.load_instance("doc"), "//item/@id")
        assert result.tree_count() == 2
        # The string reload keeps attribute nodes too.
        with_strings = catalog.load_instance("doc", ("alpha",))
        result = evaluate(with_strings, '//item[@id["alpha"]]')
        assert result.tree_count() == 1


class TestRefresh:
    """Cross-process visibility: refresh() re-reads the shared manifest."""

    def test_picks_up_registration_by_another_handle(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        reader = Catalog(str(tmp_path / "cat"))  # opened before the write below
        catalog.add("tiny", "<r><x/></r>")
        assert "tiny" not in reader
        reader.refresh()
        assert reader.names() == ["bib", "tiny"]
        assert evaluate(reader.load_instance("tiny"), "//x").tree_count() == 1

    def test_picks_up_removal_and_drops_cached_store(self, catalog, tmp_path):
        catalog.add("bib", BIB_XML)
        reader = Catalog(str(tmp_path / "cat"))
        reader.load_instance("bib")  # caches the chunk store
        catalog.remove("bib")
        reader.refresh()
        assert "bib" not in reader
        with pytest.raises(CatalogError, match="unknown catalog document"):
            reader.entry("bib")

    def test_refresh_on_missing_manifest_means_empty(self, tmp_path):
        catalog = Catalog(str(tmp_path / "fresh"))
        catalog.refresh()
        assert len(catalog) == 0

    def test_refresh_keeps_existing_entries(self, catalog):
        catalog.add("bib", BIB_XML)
        catalog.refresh()
        assert catalog.names() == ["bib"]
        assert catalog.entry("bib").chunks == 2

    def test_refresh_invalidates_replaced_entry(self, catalog, tmp_path):
        """remove + re-register under one name must drop the cached store.

        Long-lived readers (fleet workers) may only learn of the swap
        *after* the new registration is already in the manifest; entry
        equality (including the registration stamp) must invalidate the
        cached chunks, or the reader serves the old document forever.
        """
        catalog.add("doc", "<d><x/><x/></d>")
        reader = Catalog(str(tmp_path / "cat"))
        assert evaluate(reader.load_instance("doc"), "//x").tree_count() == 2
        catalog.remove("doc")
        catalog.add("doc", "<d><x/><x/><x/><x/><x/></d>")
        reader.refresh()  # sees only the final state: 'doc' present both times
        assert evaluate(reader.load_instance("doc"), "//x").tree_count() == 5

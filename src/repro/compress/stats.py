"""Size statistics for instances — the quantities reported in Figures 6 and 7.

The paper measures compression as ``|E^{M(T)}| / |E^T|`` where DAG edges are
counted as run-length *entries* (one multiplicity edge counts once) and tree
edges are ``|V^T| - 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.model.instance import Instance
from repro.model.paths import tree_size


@dataclass(frozen=True)
class InstanceStats:
    """Vertex/edge counts of an instance and of its tree version."""

    vertices: int
    edge_entries: int
    edges_expanded: int
    tree_vertices: int

    @property
    def tree_edges(self) -> int:
        return self.tree_vertices - 1

    @property
    def edge_ratio(self) -> float:
        """The paper's compression measure ``|E^M| / |E^T|`` (entries)."""
        return self.edge_entries / self.tree_edges if self.tree_edges else 1.0

    @property
    def vertex_ratio(self) -> float:
        return self.vertices / self.tree_vertices if self.tree_vertices else 1.0

    def row(self) -> str:
        """One formatted line in the style of Figure 6."""
        return (
            f"|V^T|={self.tree_vertices:>12,} |V^M|={self.vertices:>9,} "
            f"|E^M|={self.edge_entries:>10,} ratio={100 * self.edge_ratio:6.2f}%"
        )


def instance_stats(instance: Instance) -> InstanceStats:
    """Compute the Figure 6 quantities for ``instance``."""
    return InstanceStats(
        vertices=len(instance.preorder()),
        edge_entries=instance.num_edge_entries,
        edges_expanded=instance.num_edges_expanded,
        tree_vertices=tree_size(instance),
    )

"""Tests for common extensions (section 2.3, Lemma 2.7)."""

import pytest

from repro.compress.common_extension import common_extension
from repro.compress.minimize import minimize
from repro.errors import IncompatibleInstancesError
from repro.model.equivalence import equivalent
from repro.model.instance import Instance, tree_instance


def labeled_bib(extra_set: str, select_leaves_under: str):
    """The Example 1.1 tree with `extra_set` marking leaves under a tag."""
    from tests.conftest import BIB_SPEC

    tree = tree_instance(BIB_SPEC)
    tree.ensure_set(extra_set)
    for parent in tree.members(select_leaves_under):
        for child, _ in tree.children(parent):
            tree.add_to_set(child, extra_set)
    return tree


class TestCommonExtension:
    def test_merges_disjoint_labelings(self):
        a = minimize(labeled_bib("under_book", "book"))
        b = minimize(labeled_bib("under_paper", "paper"))
        merged = common_extension(a, b)
        merged.validate()
        assert set(merged.schema) == set(a.schema) | set(b.schema)
        assert equivalent(merged.reduct(a.schema), a)
        assert equivalent(merged.reduct(b.schema), b)

    def test_merge_of_identical_instances_is_equivalent(self, figure2_compressed):
        merged = common_extension(figure2_compressed, figure2_compressed)
        assert equivalent(merged, figure2_compressed)

    def test_merge_may_decompress(self):
        # A fully shared instance merged with a labeling that distinguishes
        # the two subtrees must split the shared vertex (the "Vardi paper"
        # situation of Figure 2(b)).
        spec = ("r", [("p", [("x", [])]), ("p", [("x", [])])])
        plain = minimize(tree_instance(spec))
        assert plain.num_vertices == 3

        labeled = tree_instance(spec)
        labeled.ensure_set("special")
        second_p = sorted(labeled.members("p"))[1]
        labeled.add_to_set(second_p, "special")
        labeled_min = minimize(labeled)
        assert labeled_min.num_vertices == 4  # the two p's now differ

        merged = common_extension(plain, labeled_min)
        assert equivalent(merged.reduct(plain.schema), plain)
        assert len(merged.members("special")) == 1
        assert merged.num_vertices == 4

    def test_merge_is_least_upper_bound(self):
        # Merging two partially compressed versions of one tree yields an
        # instance no larger than the tree and at least as large as each.
        spec = ("r", [("a", []), ("a", []), ("a", [])])
        tree = tree_instance(spec)
        left = tree.copy()
        left.ensure_set("first")
        left.add_to_set(sorted(left.members("a"))[0], "first")
        right = tree.copy()
        right.ensure_set("last")
        right.add_to_set(sorted(right.members("a"))[2], "last")
        merged = common_extension(minimize(left), minimize(right))
        # first a, middle a, last a are now all distinguishable.
        assert len(merged.preorder()) == 4

    def test_incompatible_structures_raise(self):
        a = tree_instance(("r", [("x", []), ("x", [])]), schema=["r", "x"])
        b = tree_instance(("r", [("x", [])]), schema=["r", "x"])
        with pytest.raises(IncompatibleInstancesError):
            common_extension(a, b)

    def test_disagreeing_shared_set_raises(self):
        a = tree_instance(("r", [("x", [])]), schema=["r", "x"])
        b = tree_instance(("r", [("x", [])]), schema=["r", "x"])
        b.remove_from_set(next(iter(b.members("x"))), "x")
        with pytest.raises(IncompatibleInstancesError):
            common_extension(a, b)

    def test_multiplicity_runs_aligned(self):
        # One side has (leaf,4); the other splits the run with a label on a
        # prefix; merged must produce aligned runs.
        a = Instance(["l"])
        leaf = a.new_vertex(["l"])
        a.set_root(a.new_vertex(children=[(leaf, 4)]))

        b = Instance(["l", "head"])
        head = b.new_vertex(["l", "head"])
        tail = b.new_vertex(["l"])
        b.set_root(b.new_vertex(children=[(head, 1), (tail, 3)]))

        merged = common_extension(a, b)
        assert len(merged.members("head")) == 1
        assert equivalent(merged.reduct(["l"]), a)

    def test_output_linear_in_tree_at_worst(self):
        # Two orthogonal labelings that shatter all sharing: output size is
        # bounded by the tree size.
        leaves = 16
        spec = ("r", [("x", [])] * leaves)
        tree = tree_instance(spec)
        odd = tree.copy()
        odd.ensure_set("odd")
        even = tree.copy()
        even.ensure_set("even")
        for index, leaf in enumerate(sorted(odd.members("x"))):
            if index % 2:
                odd.add_to_set(leaf, "odd")
        for index, leaf in enumerate(sorted(even.members("x"))):
            if index % 3 == 0:
                even.add_to_set(leaf, "even")
        merged = common_extension(minimize(odd), minimize(even))
        assert len(merged.preorder()) <= tree.num_vertices

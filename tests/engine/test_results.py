"""Tests for query-result decoding (Figure 7 columns 5-8)."""

import pytest

from repro.engine.evaluator import evaluate
from repro.engine.pipeline import query
from repro.errors import DecompressionLimitError

from tests.skeleton.test_loader import BIB_XML


class TestQueryResult:
    def test_counts_consistent(self):
        result = query(BIB_XML, "//author")
        assert result.dag_count() == 1
        assert result.tree_count() == 5
        assert len(result.tree_paths()) == 5

    def test_vertices_accessor(self):
        result = query(BIB_XML, "//paper")
        assert result.vertices() <= set(result.instance.preorder())

    def test_before_after_sizes(self):
        result = query(BIB_XML, "/bib/book/author")
        before_v, before_e = result.before
        after_v, after_e = result.after
        assert after_v >= before_v
        assert after_e >= before_e
        assert result.decompression_ratio() >= 1.0

    def test_iter_tree_matches_pairs_paths_with_vertices(self):
        result = query(BIB_XML, "//title")
        matches = list(result.iter_tree_matches())
        assert len(matches) == 3
        for path, vertex in matches:
            assert result.instance.in_set(vertex, result.set_name)
            assert len(path) == 3  # doc -> bib -> record -> title

    def test_paths_in_document_order(self):
        result = query(BIB_XML, "//author")
        paths = result.tree_paths()
        assert paths == sorted(paths)

    def test_empty_result(self):
        result = query(BIB_XML, "//nonexistent")
        assert result.is_empty()
        assert result.tree_paths() == []
        assert result.tree_count() == 0

    def test_path_limit_enforced(self):
        from repro.corpora.binary_tree import compressed_instance

        result = evaluate(compressed_instance(40), "//a")
        with pytest.raises(DecompressionLimitError):
            result.tree_paths(limit=1000)

    def test_summary_contains_counts(self):
        result = query(BIB_XML, "//author")
        text = result.summary()
        assert "5 tree" in text

    def test_timing_recorded(self):
        result = query(BIB_XML, "//author")
        assert result.seconds > 0

"""The mutation subsystem end-to-end: service, fleet, HTTP, and catalog replay.

The invariant under test everywhere: after a mutation commits, every
serving surface answers queries **byte-identically** to a catalog that
registered the edited text from scratch — and no surface ever serves
the pre-mutation state once the new version is published.
"""

import http.client
import json
import threading

import pytest

from repro.engine.pipeline import Engine
from repro.errors import CatalogError, MutationError
from repro.mutation.ops import Mutation
from repro.mutation.textedit import splice
from repro.server.catalog import Catalog
from repro.server.cluster import WorkerFleet
from repro.server.http import create_server, wait_ready
from repro.server.service import QueryService, decode_result

from tests.skeleton.test_loader import BIB_XML

APPEND_BOOK = {
    "op": "append_child",
    "path": [],
    "xml": "<book><title>New Title</title><author>New Author</author></book>",
}

QUERIES = ["//author", "//book/title", "//paper[author]", "/bib/book"]


def edited(text, mutations):
    """The text a perfect editor would produce (the splice oracle)."""
    for raw in mutations:
        text, _, _ = splice(text, Mutation.from_dict(raw))
    return text


def assert_matches_fresh_shred(service, name, text, queries=QUERIES, paths=10):
    engine = Engine(text)
    for query in queries:
        payload = service.query(name, query, paths=paths)
        oracle = decode_result(engine.query(query), paths=paths)
        assert payload["tree_count"] == oracle["tree_count"], query
        assert payload["paths"] == oracle["paths"], query


@pytest.fixture
def service(tmp_path):
    catalog = Catalog(str(tmp_path / "cat"))
    catalog.add("bib", BIB_XML)
    service = QueryService(catalog)
    try:
        yield service
    finally:
        service.close()


class TestServiceMutate:
    def test_results_match_fresh_shred_after_mutation(self, service):
        assert_matches_fresh_shred(service, "bib", BIB_XML)
        outcome = service.mutate("bib", [APPEND_BOOK])
        assert outcome["applied"] == 1
        assert outcome["doc_version"] == 2
        assert_matches_fresh_shred(service, "bib", edited(BIB_XML, [APPEND_BOOK]))

    def test_mutations_compound(self, service):
        batch = [APPEND_BOOK, {"op": "delete_subtree", "path": [1]}]
        service.mutate("bib", batch)
        assert_matches_fresh_shred(service, "bib", edited(BIB_XML, batch))

    def test_failed_mutation_changes_nothing(self, service):
        before = service.catalog.entry("bib").doc_version
        with pytest.raises(MutationError):
            service.mutate("bib", [{"op": "delete_subtree", "path": [99]}])
        assert service.catalog.entry("bib").doc_version == before
        assert_matches_fresh_shred(service, "bib", BIB_XML)
        stats = service.stats_dict()
        assert stats["service"]["mutations"]["failed"] == 1
        assert stats["service"]["mutations"]["applied"] == 0

    def test_batch_is_atomic(self, service):
        before = service.catalog.entry("bib").doc_version
        with pytest.raises(MutationError):
            service.mutate(
                "bib", [APPEND_BOOK, {"op": "delete_subtree", "path": [99]}]
            )
        # The first op of the failed batch must not have leaked through.
        assert service.catalog.entry("bib").doc_version == before
        assert_matches_fresh_shred(service, "bib", BIB_XML)

    def test_stats_dict_reports_versions_and_ops(self, service):
        service.mutate("bib", [APPEND_BOOK])
        stats = service.stats_dict()
        assert stats["doc_versions"] == {"bib": 2}
        assert stats["service"]["mutations"]["applied"] == 1
        assert stats["service"]["mutations"]["ops"] == {"append_child": 1}

    def test_document_stats_track_the_new_version(self, service):
        before = service.catalog.document_stats("bib")
        service.mutate("bib", [APPEND_BOOK])
        after = service.catalog.document_stats("bib")
        assert after.tree_nodes == before.tree_nodes + 3
        assert after.sets["book"].tree_count == before.sets["book"].tree_count + 1

    def test_plan_cache_not_stale_when_mutation_populates_a_tag(self, service):
        # The classic stale-plan bug: "//dvd" is *provably empty* before
        # the mutation (complete-tag stats let the optimizer fold it), so
        # a plan cached without the doc_version in its key would keep
        # answering 0 forever.
        assert service.query("bib", "//dvd")["tree_count"] == 0
        service.mutate(
            "bib", [{"op": "append_child", "path": [], "xml": "<dvd>x</dvd>"}]
        )
        assert service.query("bib", "//dvd")["tree_count"] == 1

    def test_plan_cache_not_stale_on_republished_name(self, service):
        # Same bug, registration flavor: evict + re-register under the
        # same name with different content must invalidate cached plans
        # and pooled instances.
        assert service.query("bib", "//author")["tree_count"] == 5
        service.catalog.remove("bib")
        service.evict("bib")
        service.catalog.add("bib", "<bib><book><author>only</author></book></bib>")
        assert service.query("bib", "//author")["tree_count"] == 1

    def test_mutate_unknown_document(self, service):
        with pytest.raises(CatalogError):
            service.mutate("nope", [APPEND_BOOK])


class TestCatalogReplayAndVerify:
    def test_verify_reports_journal_state(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        catalog.mutate("bib", [APPEND_BOOK])
        report = catalog.verify()
        journal = report["bib"]["journal"]
        # A committed mutation compacts its record away: nothing pending.
        assert journal["pending"] == 0
        assert not journal["torn"]

    def test_repair_truncates_torn_journal(self, tmp_path):
        root = str(tmp_path / "cat")
        catalog = Catalog(root)
        catalog.add("bib", BIB_XML)
        with open(str(tmp_path / "cat" / "bib" / "journal.wal"), "w") as handle:
            handle.write("garbage that is not a frame\n")
        fresh = Catalog(root, journal_replay=False)
        report = fresh.verify(repair=True)
        journal = report["bib"]["journal"]
        assert journal["torn"]
        assert journal["repaired"]["torn_truncated"] == 1
        assert fresh.verify()["bib"]["journal"]["torn"] is False

    def test_writer_restart_replays_pending_journal(self, tmp_path):
        root = str(tmp_path / "cat")
        catalog = Catalog(root)
        catalog.add("bib", BIB_XML)
        # Simulate a crash after the WAL append but before publish: write
        # the intent record directly, as Catalog.mutate would have.
        catalog._journal("bib").append(
            {"name": "bib", "base_version": 1, "doc_version": 2,
             "mutations": [APPEND_BOOK], "ts": 0.0}
        )
        reopened = Catalog(root)  # the writer replays at startup
        assert reopened.last_replay["bib"]["replayed"] == [2]
        entry = reopened.entry("bib")
        assert entry.doc_version == 2
        assert reopened.xml("bib") == edited(BIB_XML, [APPEND_BOOK])

    def test_reader_does_not_replay(self, tmp_path):
        root = str(tmp_path / "cat")
        catalog = Catalog(root)
        catalog.add("bib", BIB_XML)
        catalog._journal("bib").append(
            {"name": "bib", "base_version": 1, "doc_version": 2,
             "mutations": [APPEND_BOOK], "ts": 0.0}
        )
        reader = Catalog(root, journal_replay=False)
        assert reader.entry("bib").doc_version == 1
        assert reader.xml("bib") == BIB_XML

    def test_stale_base_version_record_is_skipped(self, tmp_path):
        root = str(tmp_path / "cat")
        catalog = Catalog(root)
        catalog.add("bib", BIB_XML)
        catalog.mutate("bib", [APPEND_BOOK])  # publishes v2
        # A leftover intent against the *old* base must not re-apply.
        catalog._journal("bib").append(
            {"name": "bib", "base_version": 1, "doc_version": 2,
             "mutations": [{"op": "delete_subtree", "path": [0]}], "ts": 0.0}
        )
        reopened = Catalog(root)
        assert not reopened.last_replay.get("bib", {}).get("replayed")
        assert reopened.entry("bib").doc_version == 2
        assert reopened.xml("bib") == edited(BIB_XML, [APPEND_BOOK])


class TestFleetMutate:
    def test_fleet_never_serves_the_old_version(self, tmp_path):
        catalog = Catalog(str(tmp_path / "cat"))
        catalog.add("bib", BIB_XML)
        fleet = WorkerFleet(catalog, workers=2, health_interval=0.2)
        try:
            # Warm every worker's resident master on the old version.
            for query in QUERIES:
                fleet.query("bib", query)
            fleet.mutate("bib", [APPEND_BOOK])
            engine = Engine(edited(BIB_XML, [APPEND_BOOK]))
            for query in QUERIES:
                payload = fleet.query("bib", query, paths=10)
                oracle = decode_result(engine.query(query), paths=10)
                assert payload["tree_count"] == oracle["tree_count"], query
                assert payload["paths"] == oracle["paths"], query
            stats = fleet.stats_dict()
            assert stats["doc_versions"] == {"bib": 2}
            assert stats["mutations"]["applied"] == 1
        finally:
            fleet.close()


@pytest.fixture(params=["threaded", "async"])
def server(request, tmp_path):
    Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
    server = create_server(str(tmp_path / "cat"), port=0, frontend=request.param)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def request(server, method, path, body=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload)
        response = connection.getresponse()
        raw = response.read().decode("utf-8")
        return response.status, (json.loads(raw) if raw else None), response
    finally:
        connection.close()


class TestHttpMutate:
    def test_mutate_roundtrip(self, server):
        status, payload, _ = request(
            server, "POST", "/mutate", {"document": "bib", "mutations": [APPEND_BOOK]}
        )
        assert status == 200
        assert payload["doc_version"] == 2
        assert payload["applied"] == 1
        status, payload, _ = request(
            server, "POST", "/query", {"document": "bib", "query": "//author"}
        )
        assert status == 200
        oracle = Engine(edited(BIB_XML, [APPEND_BOOK])).query("//author")
        assert payload["tree_count"] == oracle.tree_count()

    def test_mutate_error_mapping(self, server):
        status, payload, _ = request(
            server, "POST", "/mutate",
            {"document": "bib", "mutations": [{"op": "rename", "path": []}]},
        )
        assert status == 400
        assert payload["error"]["kind"] == "mutation"
        status, payload, _ = request(
            server, "POST", "/mutate",
            {"document": "nope", "mutations": [APPEND_BOOK]},
        )
        assert status == 404
        status, payload, _ = request(
            server, "POST", "/mutate", {"document": "bib"}
        )
        assert status == 400

    def test_metrics_report_mutations(self, server):
        request(server, "POST", "/mutate",
                {"document": "bib", "mutations": [APPEND_BOOK]})
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("GET", "/metrics")
            text = connection.getresponse().read().decode("utf-8")
        finally:
            connection.close()
        assert 'repro_mutations_total{outcome="applied"} 1' in text
        assert 'repro_catalog_doc_version{document="bib"} 2' in text
        assert 'route="/mutate"' in text

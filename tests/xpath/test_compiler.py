"""Tests for compilation to the node-set algebra (Figure 3 semantics)."""

from repro.model.schema import string_set
from repro.xpath.algebra import (
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    axis_applications,
    named_sets,
    uses_only_upward_axes,
)
from repro.xpath.ast import Step
from repro.xpath.compiler import (
    compile_query,
    required_strings,
    required_tags,
    simplify_steps,
)


class TestSimplifySteps:
    def test_fuses_double_slash_child(self):
        steps = (Step("descendant-or-self", "*"), Step("child", "a"))
        assert simplify_steps(steps) == (Step("descendant", "a"),)

    def test_preserves_predicates_of_fused_step(self):
        from repro.xpath.ast import StringExpr

        steps = (
            Step("descendant-or-self", "*"),
            Step("child", "a", (StringExpr("x"),)),
        )
        (fused,) = simplify_steps(steps)
        assert fused.axis == "descendant"
        assert fused.predicates

    def test_does_not_fuse_explicit_axis(self):
        steps = (Step("descendant-or-self", "*"), Step("parent", "a"))
        assert simplify_steps(steps) == steps

    def test_does_not_fuse_when_intermediate_has_predicates(self):
        from repro.xpath.ast import StringExpr

        steps = (
            Step("descendant-or-self", "*", (StringExpr("x"),)),
            Step("child", "a"),
        )
        assert simplify_steps(steps) == steps


class TestMainPath:
    def test_absolute_simple_path(self):
        expr = compile_query("/a/b")
        # child(child({root}) ∩ L_a) ∩ L_b
        assert expr == Intersect(
            AxisApply("child", Intersect(AxisApply("child", RootSet()), NamedSet("a"))),
            NamedSet("b"),
        )

    def test_double_slash_becomes_descendant(self):
        expr = compile_query("//a")
        assert expr == Intersect(AxisApply("descendant", RootSet()), NamedSet("a"))

    def test_relative_path_starts_at_context(self):
        expr = compile_query("a")
        assert expr == Intersect(AxisApply("child", ContextSet()), NamedSet("a"))

    def test_star_step_adds_no_intersection(self):
        expr = compile_query("/*")
        assert expr == AxisApply("child", RootSet())

    def test_example_3_5(self):
        # //a/b from the paper: child(descendant({root}) ∩ L_a) ∩ L_b.
        expr = compile_query("//a/b")
        assert expr == Intersect(
            AxisApply(
                "child", Intersect(AxisApply("descendant", RootSet()), NamedSet("a"))
            ),
            NamedSet("b"),
        )


class TestPredicateReversal:
    def test_child_condition_reverses_to_parent(self):
        expr = compile_query("a[b]")
        condition = expr.right
        assert condition == AxisApply("parent", NamedSet("b"))

    def test_two_step_condition(self):
        expr = compile_query("a[c/d]")
        condition = expr.right
        assert condition == AxisApply(
            "parent", Intersect(NamedSet("c"), AxisApply("parent", NamedSet("d")))
        )

    def test_descendant_condition_reverses_to_ancestor(self):
        expr = compile_query("a[descendant::x]")
        assert expr.right == AxisApply("ancestor", NamedSet("x"))

    def test_following_sibling_reverses_to_preceding_sibling(self):
        expr = compile_query("a[following-sibling::x]")
        assert expr.right == AxisApply("preceding-sibling", NamedSet("x"))

    def test_string_condition(self):
        expr = compile_query('a["Codd"]')
        assert expr.right == NamedSet(string_set("Codd"))

    def test_not_condition(self):
        expr = compile_query("a[not(following::*)]")
        assert expr.right == Difference(
            AllNodes(), AxisApply("preceding", AllNodes())
        )

    def test_or_condition(self):
        expr = compile_query("a[b or c]")
        assert expr.right == Union(
            AxisApply("parent", NamedSet("b")), AxisApply("parent", NamedSet("c"))
        )

    def test_and_condition(self):
        expr = compile_query("a[b and c]")
        assert expr.right == Intersect(
            AxisApply("parent", NamedSet("b")), AxisApply("parent", NamedSet("c"))
        )

    def test_absolute_condition_uses_root_filter(self):
        expr = compile_query("a[/descendant::b]")
        assert expr.right == RootFilter(AxisApply("ancestor", NamedSet("b")))

    def test_figure3_query_shape(self):
        expr = compile_query(
            "/descendant::a/child::b[child::c/child::d or not(following::*)]"
        )
        condition = expr.right
        assert isinstance(condition, Union)
        left, right = condition.left, condition.right
        assert left == AxisApply(
            "parent", Intersect(NamedSet("c"), AxisApply("parent", NamedSet("d")))
        )
        assert right == Difference(AllNodes(), AxisApply("preceding", AllNodes()))

    def test_double_slash_inside_condition(self):
        expr = compile_query("a[x//y]")
        condition = expr.right
        assert condition == AxisApply(
            "parent", Intersect(NamedSet("x"), AxisApply("ancestor", NamedSet("y")))
        )


class TestAnalysis:
    def test_required_tags(self):
        tags = required_tags('//Record[Text["x"]]/Title["y"]')
        assert tags == {"Record", "Text", "Title"}

    def test_required_strings(self):
        strings = required_strings('//Record[Text["consanguineous parents"]]/Title["LETHAL"]')
        assert strings == {"consanguineous parents", "LETHAL"}

    def test_star_contributes_no_tag(self):
        assert required_tags("/self::*[a]") == {"a"}

    def test_named_sets_of_compiled_query(self):
        expr = compile_query('//a[b and "s"]')
        assert named_sets(expr) == {"a", "b", string_set("s")}

    def test_upward_only_detection(self):
        # Q1-style tree pattern queries use only parent after reversal.
        q1 = compile_query("/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]")
        assert uses_only_upward_axes(q1)
        q2 = compile_query("/SEASON/LEAGUE")
        assert not uses_only_upward_axes(q2)

    def test_axis_application_order_is_bottom_up(self):
        expr = compile_query("/a/b")
        assert axis_applications(expr) == ["child", "child"]


class TestRender:
    def test_render_shows_tree(self):
        text = compile_query("//a/b").render()
        assert "∩" in text
        assert "descendant" in text
        assert "L[a]" in text
        assert "{root}" in text

    def test_size_counts_nodes(self):
        assert compile_query("/a").size() == 4  # ∩(child({root}), L[a])

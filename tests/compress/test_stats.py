"""Tests for instance statistics (Figure 6 quantities)."""

from repro.compress.minimize import minimize
from repro.compress.stats import instance_stats
from repro.model.instance import tree_instance


class TestInstanceStats:
    def test_tree_stats(self, bib_tree):
        stats = instance_stats(bib_tree)
        assert stats.vertices == 12
        assert stats.tree_vertices == 12
        assert stats.edge_entries == 11
        assert stats.tree_edges == 11
        assert stats.edge_ratio == 1.0

    def test_compressed_stats(self, figure2_compressed):
        stats = instance_stats(figure2_compressed)
        assert stats.vertices == 5
        assert stats.tree_vertices == 12
        assert stats.edge_entries == 6
        # DAG edges with multiplicities: bib->book(1)+paper(2), book->title(1)
        # +author(3), paper->title(1)+author(1) = 9 (tree has 11; sharing
        # keeps the book/paper subtrees single).
        assert stats.edges_expanded == 9
        assert abs(stats.edge_ratio - 6 / 11) < 1e-12

    def test_ratio_improves_with_compression(self, bib_tree):
        before = instance_stats(bib_tree)
        after = instance_stats(minimize(bib_tree))
        assert after.edge_ratio < before.edge_ratio
        assert after.tree_vertices == before.tree_vertices

    def test_row_formatting(self, figure2_compressed):
        row = instance_stats(figure2_compressed).row()
        assert "|V^T|=" in row and "%" in row

    def test_single_vertex_ratio(self):
        stats = instance_stats(tree_instance(("only", [])))
        assert stats.tree_edges == 0
        assert stats.edge_ratio == 1.0

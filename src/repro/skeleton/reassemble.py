"""Lossless document reassembly: skeleton + containers + layout -> XML.

This completes the XMILL-style decomposition (section 1): a document loaded
with ``collect_containers=True`` can be reconstructed exactly — structure
from the compressed skeleton, character data from the containers, and the
interleaving of the two from the :class:`repro.skeleton.layout.TextLayout`.
Reassembly is *canonical*: comments, processing instructions, the DOCTYPE
and insignificant whitespace outside the root are not part of the skeleton
model and are not restored.

Attribute handling mirrors the loader: documents loaded with
``attributes="nodes"`` have their ``@name`` child vertices folded back into
real attributes, so the round trip is lossless in that mode too; with the
default ``attributes="ignore"`` the reassembled document simply lacks them.
"""

from __future__ import annotations

from repro.compress.decompress import decompress
from repro.errors import ReproError
from repro.model.instance import Instance
from repro.model.schema import DOC_SET
from repro.skeleton.layout import TextLayout
from repro.strings.containers import ContainerStore
from repro.xmlio.dom import Element
from repro.xmlio.writer import serialize


def element_tag(instance: Instance, vertex: int) -> str:
    """The tag of a skeleton vertex: its unique non-special set name."""
    tags = [name for name in instance.sets_at(vertex) if not name.startswith("#")]
    if len(tags) != 1:
        raise ReproError(
            "reassembly needs an instance loaded with tags=None (all tags); "
            f"vertex {vertex} carries tag sets {tags!r}"
        )
    return tags[0]


def reassemble_element(
    instance: Instance, containers: ContainerStore, layout: TextLayout
) -> Element:
    """Rebuild the root element as a DOM tree (see module doc for caveats)."""
    decompression = decompress(instance)
    tree = decompression.tree
    order = tree.preorder()
    if not instance.has_set(DOC_SET) or not instance.in_set(instance.root, DOC_SET):
        raise ReproError("reassembly expects a loader-produced instance (document root)")

    # Document order (preorder) matches the loader's element ordinals; the
    # first vertex is the virtual document root (ordinal -1).
    ordinal_of = {vertex: index - 1 for index, vertex in enumerate(order)}
    chunks = containers.in_document_order()
    per_element = layout.by_element()

    elements: dict[int, Element] = {}
    for vertex in order[1:]:
        elements[vertex] = Element(element_tag(tree, vertex))

    # Children before parents so each parent assembles finished children.
    for vertex in reversed(order):
        if vertex == tree.root:
            continue
        element = elements[vertex]
        kids = [elements[child] for child, _ in tree.children(vertex)]
        texts = sorted(per_element.get(ordinal_of[vertex], []))
        sequence: list[Element | str] = []
        text_cursor = 0
        for slot in range(len(kids) + 1):
            while text_cursor < len(texts) and texts[text_cursor][0] == slot:
                sequence.append(chunks[texts[text_cursor][1]])
                text_cursor += 1
            if slot < len(kids):
                kid = kids[slot]
                if kid.tag.startswith("@"):
                    # Fold an attribute node back into a real attribute.
                    element.attributes[kid.tag[1:]] = "".join(
                        part for part in kid.children if isinstance(part, str)
                    )
                else:
                    sequence.append(kid)
        # Any text recorded past the last slot (possible only if the loader
        # and layout disagree) would be silently lost; check instead.
        if text_cursor != len(texts):
            raise ReproError(f"layout/slot mismatch at element ordinal {ordinal_of[vertex]}")
        element.children = sequence

    root_children = tree.children(tree.root)
    if len(root_children) != 1:
        raise ReproError("document root must have exactly one element child")
    return elements[root_children[0][0]]


def reassemble(
    instance: Instance,
    containers: ContainerStore,
    layout: TextLayout,
    declaration: bool = True,
) -> str:
    """Rebuild the full document text."""
    element = reassemble_element(instance, containers, layout)
    return serialize(element, declaration=declaration)

"""End-to-end evaluator tests: queries over loaded documents (section 3.3/4)."""

import pytest

from repro.engine.evaluator import CompressedEvaluator, evaluate
from repro.engine.pipeline import Engine, load_for_query, query
from repro.errors import EvaluationError
from repro.model.schema import is_temp
from repro.skeleton.loader import load_instance

from tests.engine.util import assert_engines_agree
from tests.skeleton.test_loader import BIB_XML


class TestQueriesOnBib:
    def test_simple_path(self):
        result = query(BIB_XML, "/bib/book/author")
        assert result.tree_count() == 3
        assert result.dag_count() == 1  # the three authors share one vertex

    def test_double_slash(self):
        result = query(BIB_XML, "//author")
        assert result.tree_count() == 5

    def test_string_condition(self):
        result = query(BIB_XML, '//paper[author["Codd"]]')
        assert result.tree_count() == 1

    def test_string_condition_selects_nothing_when_absent(self):
        result = query(BIB_XML, '//paper[author["Turing"]]')
        assert result.is_empty()

    def test_tree_pattern_query_selects_root(self):
        result = query(BIB_XML, "/self::*[bib/book/author]")
        assert result.tree_count() == 1
        assert result.vertices() == {result.instance.root}

    def test_tree_pattern_query_no_match(self):
        result = query(BIB_XML, "/self::*[bib/journal]")
        assert result.is_empty()

    def test_and_condition(self):
        result = query(BIB_XML, '//book[author["Hull"] and author["Vianu"]]/title')
        assert result.tree_count() == 1

    def test_or_condition(self):
        result = query(BIB_XML, '//paper[author["Codd"] or author["Vardi"]]')
        assert result.tree_count() == 2

    def test_not_condition(self):
        # Papers without Codd: exactly the Vardi paper.
        result = query(BIB_XML, '//paper[not(author["Codd"])]')
        assert result.tree_count() == 1

    def test_following_sibling(self):
        result = query(BIB_XML, "//title/following-sibling::author")
        assert result.tree_count() == 5

    def test_preceding_sibling(self):
        result = query(BIB_XML, "//author/preceding-sibling::title")
        assert result.tree_count() == 3

    def test_parent_axis(self):
        result = query(BIB_XML, '//author["Vardi"]/parent::paper')
        assert result.tree_count() == 1

    def test_ancestor_axis(self):
        result = query(BIB_XML, '//author["Codd"]/ancestor::bib')
        assert result.tree_count() == 1

    def test_absolute_condition(self):
        everything = query(BIB_XML, "//paper[/descendant::book]")
        assert everything.tree_count() == 2  # document has a book: all papers
        nothing = query(BIB_XML, "//paper[/descendant::journal]")
        assert nothing.is_empty()

    def test_following_axis(self):
        result = query(BIB_XML, "//book/following::author")
        assert result.tree_count() == 2  # the two paper authors

    def test_not_following_selects_last(self):
        result = query(BIB_XML, "//paper[not(following::*)]")
        # Only the last paper's subtree has no following node... the last
        # *paper* is the one with no following element: the Vardi paper has
        # following nodes (its own children do not count as following).
        assert result.tree_count() == 1


class TestEvaluatorMechanics:
    def test_temporaries_dropped(self):
        instance = load_instance(BIB_XML, tags=["book", "author"])
        result = evaluate(instance, "//book/author")
        temps = [name for name in result.instance.schema if is_temp(name)]
        assert temps == [result.set_name]

    def test_keep_temps(self):
        instance = load_instance(BIB_XML, tags=["book", "author"])
        evaluator = CompressedEvaluator(instance)
        result = evaluator.evaluate("//book/author", keep_temps=True)
        temps = [name for name in result.instance.schema if is_temp(name)]
        assert len(temps) > 1

    def test_input_instance_untouched_by_default(self):
        instance = load_instance(BIB_XML, tags=["book", "author"])
        schema_before = instance.schema
        vertices_before = instance.num_vertices
        evaluate(instance, "//book/author")
        assert instance.schema == schema_before
        assert instance.num_vertices == vertices_before

    def test_copy_false_mutates(self):
        instance = load_instance(BIB_XML, tags=["book", "author"])
        evaluate(instance, "//book/author", copy=False)
        assert any(is_temp(name) for name in instance.schema)

    def test_missing_set_reports_helpfully(self):
        instance = load_instance(BIB_XML, tags=["book"])
        with pytest.raises(EvaluationError, match="load the document"):
            evaluate(instance, "//journal")

    def test_custom_context(self):
        instance = load_instance(BIB_XML, tags=["book", "paper", "author"])
        instance.ensure_set("ctx")
        for vertex in instance.members("book"):
            instance.add_to_set(vertex, "ctx")
        result = CompressedEvaluator(instance, context="ctx").evaluate("author")
        assert result.tree_count() == 3  # only book authors

    def test_missing_context_raises(self):
        instance = load_instance(BIB_XML, tags=["author"])
        with pytest.raises(EvaluationError, match="context"):
            CompressedEvaluator(instance, context="nope").evaluate("author")

    def test_unknown_axes_impl_rejected(self):
        instance = load_instance(BIB_XML, tags=["author"])
        with pytest.raises(EvaluationError, match="axes"):
            CompressedEvaluator(instance, axes="magic")

    def test_result_summary_format(self):
        result = query(BIB_XML, "//author")
        text = result.summary()
        assert "dag" in text and "tree" in text


class TestPipeline:
    def test_load_for_query_schema(self):
        result = load_for_query(BIB_XML, '//paper[author["Codd"]]')
        from repro.model.schema import DOC_SET, string_set

        assert set(result.instance.schema) == {
            DOC_SET,
            "paper",
            "author",
            string_set("Codd"),
        }

    def test_engine_reparse_and_cache_agree(self):
        fresh = Engine(BIB_XML, reparse_per_query=True)
        cached = Engine(BIB_XML, reparse_per_query=False)
        for q in ("//author", "//author", '//paper[author["Codd"]]'):
            assert fresh.query(q).tree_count() == cached.query(q).tree_count()

    def test_engine_cache_reuses_instance(self):
        engine = Engine(BIB_XML, reparse_per_query=False)
        engine.query("//author")
        first = engine.last_load
        engine.query("//author")
        assert engine.last_load is first  # no second parse

    def test_explain_renders_plan(self):
        engine = Engine(BIB_XML)
        plan = engine.explain("//book/author")
        assert "descendant" in plan and "L[book]" in plan

    def test_query_accepts_preloaded_instance(self):
        instance = load_for_query(BIB_XML, "//author").instance
        result = query(instance, "//author")
        assert result.tree_count() == 5


class TestBothEnginesOnQueries:
    @pytest.mark.parametrize(
        "q",
        [
            "/bib/book/author",
            "//author",
            '//paper[author["Codd"]]',
            "//title/following-sibling::author",
            "//book/following::author",
            "//paper[not(following::*)]",
            "/self::*[bib/book]",
            '//book[author["Hull"] and author["Vianu"]]/title',
        ],
    )
    def test_functional_inplace_and_oracle_agree(self, q):
        instance = load_for_query(BIB_XML, q).instance
        assert_engines_agree(instance, q)

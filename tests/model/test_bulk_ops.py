"""Bulk mask-plane operations must be observably identical to per-vertex loops.

The evaluator used to implement set operations, ``V``, and temp cleanup as
per-vertex ``mask()``/``set_mask()`` loops; the bulk operations replace them
with single passes over the mask plane.  These tests pin the equivalence:
for every operation, the bulk version and a reference per-vertex loop (the
seed implementation, reconstructed here through the public API) must leave
the instance in the same observable state — same schema, same members for
every set.
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchemaError
from repro.model.instance import Instance, tree_instance

from tests.conftest import LABELS, random_dag_instances


def snapshot(instance: Instance) -> dict[str, set[int]]:
    """Observable set state: members of every schema set."""
    return {name: instance.members(name) for name in instance.schema}


def reference_combine(instance: Instance, op: str, left: str, right: str, target: str) -> str:
    """The seed evaluator's per-vertex combine loop, via the public API."""
    instance.ensure_set(target)
    for vertex in instance.preorder():
        a = instance.in_set(vertex, left)
        b = instance.in_set(vertex, right)
        if op == "union":
            value = a or b
        elif op == "intersect":
            value = a and b
        else:
            value = a and not b
        if value:
            instance.add_to_set(vertex, target)
    return target


def reference_fill(instance: Instance, name: str) -> str:
    """The seed evaluator's AllNodes loop, via the public API."""
    instance.ensure_set(name)
    for vertex in instance.preorder():
        instance.add_to_set(vertex, name)
    return name


OPS = ("union", "intersect", "difference")


@given(random_dag_instances(), st.sampled_from(OPS), st.sampled_from(LABELS), st.sampled_from(LABELS))
def test_combine_sets_matches_per_vertex_loop(instance, op, left, right):
    bulk = instance.copy()
    reference = instance.copy()
    bulk.combine_sets(op, left, right, "result")
    reference_combine(reference, op, left, right, "result")
    assert bulk.schema == reference.schema
    assert snapshot(bulk) == snapshot(reference)


@given(random_dag_instances())
def test_fill_set_matches_per_vertex_loop(instance):
    bulk = instance.copy()
    reference = instance.copy()
    bulk.fill_set("all")
    reference_fill(reference, "all")
    assert snapshot(bulk) == snapshot(reference)
    assert bulk.members("all") == set(bulk.preorder())


@given(random_dag_instances(), st.lists(st.sampled_from(LABELS), max_size=3))
def test_drop_sets_matches_repeated_drop_set(instance, names):
    bulk = instance.copy()
    expected_schema = [n for n in instance.schema if n not in set(names)]
    expected = {n: instance.members(n) for n in expected_schema}
    bulk.drop_sets(names)
    assert list(bulk.schema) == expected_schema
    assert snapshot(bulk) == expected


@given(random_dag_instances(), st.lists(st.sampled_from(LABELS), max_size=3))
def test_clear_sets_empties_only_the_named_sets(instance, names):
    bulk = instance.copy()
    cleared = set(names)
    expected = {
        name: (set() if name in cleared else instance.members(name))
        for name in instance.schema
    }
    bulk.clear_sets(names)
    assert bulk.schema == instance.schema
    assert snapshot(bulk) == expected


class TestBulkOpEdgeCases:
    def build(self) -> Instance:
        instance = tree_instance(
            ("a", [("b", []), ("c", [("a", []), ("b", [])]), ("a", [])]),
            schema=LABELS,
        )
        instance.ensure_set("empty")
        instance.fill_set("full")
        return instance

    def test_combine_with_empty_and_full_sets(self):
        instance = self.build()
        everything = set(instance.preorder())
        assert instance.members(instance.combine_sets("union", "a", "empty", "u")) == instance.members("a")
        assert instance.members(instance.combine_sets("intersect", "a", "full", "i")) == instance.members("a")
        assert instance.members(instance.combine_sets("difference", "full", "empty", "d")) == everything
        assert instance.members(instance.combine_sets("difference", "empty", "full", "d2")) == set()

    def test_combine_rejects_unknown_operation(self):
        instance = self.build()
        with pytest.raises(ValueError):
            instance.combine_sets("xor", "a", "b", "t")

    def test_combine_rejects_unknown_operand(self):
        instance = self.build()
        with pytest.raises(SchemaError):
            instance.combine_sets("union", "a", "nope", "t")

    def test_drop_sets_middle_of_schema(self):
        # Dropping non-suffix bits exercises the multi-segment recompose.
        instance = self.build()
        members_c = instance.members("c")
        members_full = instance.members("full")
        instance.drop_sets(["a", "empty"])
        assert list(instance.schema) == ["b", "c", "full"]
        assert instance.members("c") == members_c
        assert instance.members("full") == members_full

    def test_drop_sets_everything(self):
        instance = self.build()
        instance.drop_sets(list(instance.schema))
        assert instance.schema == ()
        assert all(instance.mask(v) == 0 for v in range(instance.num_vertices))

    def test_drop_sets_deduplicates_names(self):
        instance = self.build()
        instance.drop_sets(["a", "a", "a"])
        assert "a" not in instance.schema

    def test_drop_sets_empty_is_noop(self):
        instance = self.build()
        before = snapshot(instance)
        instance.drop_sets([])
        assert snapshot(instance) == before

    def test_fill_set_only_touches_reachable_vertices(self):
        instance = self.build()
        orphan = instance.new_vertex(["b"])  # unreachable
        instance.fill_set("all")
        assert orphan not in instance.members("all")
        assert instance.members("all") == set(instance.preorder())

    def test_combine_only_touches_reachable_vertices(self):
        instance = self.build()
        orphan = instance.new_vertex(["a"])  # unreachable but in 'a'
        instance.combine_sets("union", "a", "b", "u")
        assert orphan not in instance.members("u")

    def test_drop_sets_adjacent_names_compact_into_one_segment(self):
        # "b" and "c" occupy consecutive bit positions: the historical
        # segment-based compaction produced a zero-width segment between
        # them; the plane representation must shift "full" down by two.
        instance = self.build()
        members_a = instance.members("a")
        members_full = instance.members("full")
        instance.drop_sets(["b", "c"])
        assert list(instance.schema) == ["a", "empty", "full"]
        assert instance.members("a") == members_a
        assert instance.members("full") == members_full

    def test_drop_sets_duplicates_of_adjacent_names(self):
        # Duplicates of *adjacent* names in one call: the exact input shape
        # that corrupted the old order-sensitive segment walk.
        instance = self.build()
        expected = {"a": instance.members("a"), "full": instance.members("full")}
        instance.drop_sets(["b", "c", "b", "empty", "c", "b"])
        assert list(instance.schema) == ["a", "full"]
        assert {n: instance.members(n) for n in instance.schema} == expected

    def test_drop_sets_order_insensitive(self):
        instance = self.build()
        forward = instance.copy()
        backward = instance.copy()
        forward.drop_sets(["a", "c", "full"])
        backward.drop_sets(["full", "c", "a"])
        assert forward.schema == backward.schema
        assert snapshot(forward) == snapshot(backward)

    def test_drop_sets_unknown_name_raises_before_mutating(self):
        instance = self.build()
        before = snapshot(instance)
        with pytest.raises(SchemaError):
            instance.drop_sets(["a", "nope"])
        assert snapshot(instance) == before

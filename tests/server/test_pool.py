"""Tests for the LRU instance pool and its concurrency guarantees."""

import threading

import pytest

from repro.errors import DeadlineExceededError
from repro.model.instance import tree_instance
from repro.server.pool import InstancePool


def make_instance():
    return tree_instance(("r", [("a", []), ("b", [])]))


class TestLRU:
    def test_loads_once_then_hits(self):
        pool = InstancePool(capacity=4)
        loads = []

        def loader():
            loads.append(1)
            return make_instance()

        first = pool.get_or_load("k", loader)
        second = pool.get_or_load("k", loader)
        assert first is second
        assert len(loads) == 1
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1

    def test_capacity_evicts_least_recently_used(self):
        pool = InstancePool(capacity=2)
        for key in ("a", "b", "c"):
            pool.get_or_load(key, make_instance)
        assert pool.keys() == ["b", "c"]
        assert pool.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self):
        pool = InstancePool(capacity=2)
        pool.get_or_load("a", make_instance)
        pool.get_or_load("b", make_instance)
        pool.get_or_load("a", make_instance)  # refresh: b is now the oldest
        pool.get_or_load("c", make_instance)
        assert pool.keys() == ["a", "c"]

    def test_capacity_one_never_evicts_requested_key(self):
        pool = InstancePool(capacity=1)
        entry = pool.get_or_load("only", make_instance)
        assert entry.instance is not None
        assert pool.keys() == ["only"]

    def test_evict_predicate(self):
        pool = InstancePool(capacity=8)
        pool.get_or_load(("doc1", ()), make_instance)
        pool.get_or_load(("doc1", ("x",)), make_instance)
        pool.get_or_load(("doc2", ()), make_instance)
        assert pool.evict(lambda key: key[0] == "doc1") == 2
        assert pool.keys() == [("doc2", ())]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            InstancePool(capacity=0)


class TestConcurrency:
    def test_concurrent_requesters_load_once(self):
        pool = InstancePool(capacity=4)
        started = threading.Barrier(8)
        loads = []
        load_gate = threading.Event()

        def loader():
            loads.append(threading.get_ident())
            load_gate.wait(timeout=5)  # keep the load slow: real contention
            return make_instance()

        entries = []

        def worker():
            started.wait(timeout=5)
            entries.append(pool.get_or_load("hot", loader))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every worker reach the pool, then release the single load.
        load_gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(loads) == 1
        assert len({id(entry) for entry in entries}) == 1
        assert all(entry.instance is not None for entry in entries)

    def test_independent_keys_do_not_serialise(self):
        """A slow load of one key must not block another key's load."""
        pool = InstancePool(capacity=4)
        slow_started = threading.Event()
        slow_gate = threading.Event()
        order = []

        def slow_loader():
            slow_started.set()
            slow_gate.wait(timeout=5)
            order.append("slow")
            return make_instance()

        def fast_loader():
            order.append("fast")
            return make_instance()

        slow_thread = threading.Thread(
            target=lambda: pool.get_or_load("slow", slow_loader)
        )
        slow_thread.start()
        assert slow_started.wait(timeout=5)
        pool.get_or_load("fast", fast_loader)  # completes while slow is stuck
        slow_gate.set()
        slow_thread.join(timeout=10)
        assert order == ["fast", "slow"]


class TestEvictionRaces:
    """Eviction racing in-flight cold loads — including deadline-cancelled
    loads (the loader raising ``DeadlineExceededError`` mid-flight)."""

    def test_failed_load_leaves_no_poisoned_placeholder(self):
        pool = InstancePool(capacity=4)

        def doomed_loader():
            raise DeadlineExceededError("cold load cancelled by deadline")

        with pytest.raises(DeadlineExceededError):
            pool.get_or_load("k", doomed_loader)
        assert pool.keys() == []  # the placeholder did not squat in the LRU
        entry = pool.get_or_load("k", make_instance)  # clean retry
        assert entry.instance is not None
        assert pool.stats()["misses"] == 2

    def test_evict_during_inflight_cold_load_is_safe(self):
        pool = InstancePool(capacity=4)
        load_started = threading.Event()
        load_gate = threading.Event()
        loaded = []

        def slow_loader():
            load_started.set()
            load_gate.wait(timeout=10)
            return make_instance()

        thread = threading.Thread(
            target=lambda: loaded.append(pool.get_or_load("k", slow_loader))
        )
        thread.start()
        assert load_started.wait(timeout=5)
        # The placeholder is visible to eviction mid-load; dropping it must
        # not break the in-flight loader — its caller keeps the entry alive.
        assert pool.evict(lambda key: True) == 1
        assert pool.keys() == []
        load_gate.set()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert loaded and loaded[0].instance is not None
        # The pool's next requester cold-loads a fresh master independently.
        fresh = pool.get_or_load("k", make_instance)
        assert fresh is not loaded[0]
        assert fresh.instance is not None

    def test_cancelled_load_does_not_delete_a_successors_fresh_entry(self):
        """Deadline-cancels an in-flight load *after* eviction already let a
        successor re-load the key: the canceller's cleanup must only remove
        its own placeholder, never the successor's live entry."""
        pool = InstancePool(capacity=4)
        load_started = threading.Event()
        load_gate = threading.Event()
        outcome = []

        def cancelled_loader():
            load_started.set()
            load_gate.wait(timeout=10)
            raise DeadlineExceededError("deadline expired during the cold load")

        def victim():
            try:
                pool.get_or_load("k", cancelled_loader)
            except DeadlineExceededError:
                outcome.append("cancelled")

        thread = threading.Thread(target=victim)
        thread.start()
        assert load_started.wait(timeout=5)
        assert pool.evict(lambda key: True) == 1  # old placeholder gone
        successor = pool.get_or_load("k", make_instance)  # fresh entry, loaded
        assert successor.instance is not None
        load_gate.set()  # now the first load fails with its deadline
        thread.join(timeout=10)
        assert outcome == ["cancelled"]
        # Identity check in the failure path: the successor entry survives.
        assert pool.keys() == ["k"]
        assert pool.get_or_load("k", make_instance) is successor

"""Contiguous bit-plane kernels: the word-level tier under the instance model.

The vertex-set representation of :class:`repro.model.instance.Instance` is
*transposed*: instead of one Python int bitmask per vertex, each schema set
owns a fixed-width contiguous **plane** — an ``array('Q')`` holding one bit
per vertex, 64 vertices per machine word.  Set algebra then runs word-at-a-
time instead of vertex-at-a-time, and a plane's bytes are exactly what the
succinct on-disk skeleton format (:mod:`repro.skeleton.layout`) stores and
``mmap``\\ s back.

Two kernel tiers implement every operation:

* the **numpy tier** views a plane's buffer zero-copy
  (``np.frombuffer``) and runs the word ops / bit unpacking in C;
* the **stdlib tier** uses Python big-int arithmetic over ``tobytes()``
  snapshots — still C-speed word operations, no third-party dependency.

Both tiers are property-tested byte-identical
(``tests/property/test_plane_kernels.py``); :func:`set_numpy` lets the tests
(and the ``REPRO_NO_NUMPY=1`` CI leg) force the stdlib tier at runtime.

NumPy views are created inside a kernel call and dropped before it returns:
``array`` objects refuse to grow while a buffer export is live, and plane
arrays grow whenever the instance gains vertices.  Never cache a view.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable

try:  # pragma: no cover - exercised by the no-numpy CI leg
    import numpy as _numpy
except ImportError:  # pragma: no cover
    _numpy = None

if os.environ.get("REPRO_NO_NUMPY"):
    _numpy = None

#: Module switch consulted by every kernel; flipped by :func:`set_numpy`.
_active = _numpy is not None

#: Planes narrower than this many words run on the stdlib tier even when
#: numpy is active: below a few hundred vertices, big-int arithmetic on the
#: whole plane is cheaper than the fixed cost of creating numpy buffer
#: views.  Both tiers are byte-identical, so the cutover is unobservable.
SMALL_PLANE_WORDS = 4

WORD_BITS = 64
FULL_WORD = (1 << 64) - 1

#: The plane-format version reported in plans and ``/stats`` and written in
#: the succinct skeleton header.
PLANE_FORMAT_VERSION = 1


def numpy_available() -> bool:
    """True when numpy is importable (regardless of the runtime switch)."""
    return _numpy is not None


def numpy_active() -> bool:
    """True when kernels currently dispatch to the numpy tier."""
    return _active


def kernel_tier() -> str:
    """``"numpy"`` or ``"stdlib"`` — which tier serves word kernels now."""
    return "numpy" if _active else "stdlib"


def set_numpy(flag: bool) -> bool:
    """Force the kernel tier (test seam); returns the previous setting.

    Enabling requires numpy to actually be importable.
    """
    global _active
    previous = _active
    _active = bool(flag) and _numpy is not None
    return previous


# ----------------------------------------------------------------------
# Plane construction and bit access
# ----------------------------------------------------------------------


def words_for(nbits: int) -> int:
    """Words needed to hold ``nbits`` vertex bits."""
    return (nbits + WORD_BITS - 1) >> 6


def new_plane(nwords: int) -> array:
    """An all-zero plane of ``nwords`` words."""
    return array("Q", bytes(8 * nwords))


def copy_plane(plane: array) -> array:
    """An independent copy (one C memcpy)."""
    return array("Q", plane)


def get_bit(plane: array, vertex: int) -> int:
    return plane[vertex >> 6] >> (vertex & 63) & 1


def set_bit(plane: array, vertex: int) -> None:
    plane[vertex >> 6] |= 1 << (vertex & 63)


def clear_bit(plane: array, vertex: int) -> None:
    plane[vertex >> 6] &= FULL_WORD ^ (1 << (vertex & 63))


def grow_plane(plane: array, nwords: int) -> None:
    """Extend ``plane`` with zero words up to ``nwords`` (in place)."""
    missing = nwords - len(plane)
    if missing > 0:
        plane.frombytes(bytes(8 * missing))


# ----------------------------------------------------------------------
# Whole-plane conversions
# ----------------------------------------------------------------------


def to_int(plane: array) -> int:
    """The plane as one big little-endian integer (bit v = vertex v)."""
    return int.from_bytes(plane.tobytes(), "little")


def write_int(plane: array, value: int) -> None:
    """Overwrite ``plane`` from a big integer (must fit its width)."""
    raw = value.to_bytes(8 * len(plane), "little")
    plane[:] = array("Q", raw)


def plane_from_int(value: int, nwords: int) -> array:
    out = array("Q", value.to_bytes(8 * nwords, "little"))
    return out


def plane_from_bits(bits: Iterable[int], nwords: int) -> array:
    """A plane with exactly the given vertex bits set."""
    words = [0] * nwords
    for vertex in bits:
        words[vertex >> 6] |= 1 << (vertex & 63)
    return array("Q", words)


# ----------------------------------------------------------------------
# Word-level kernels (numpy tier + stdlib big-int tier)
# ----------------------------------------------------------------------


def _view(plane: array):
    return _numpy.frombuffer(plane, dtype=_numpy.uint64)


def _np_worthwhile(plane: array) -> bool:
    return _active and len(plane) >= SMALL_PLANE_WORDS


def combine(op: str, left: array, right: array, out: array) -> None:
    """``out = left <op> right`` word-at-a-time; ``out`` may alias an input.

    ``op`` is ``"union"``, ``"intersect"`` or ``"difference"``.
    """
    if _np_worthwhile(out):
        lv, rv, ov = _view(left), _view(right), _view(out)
        if op == "union":
            _numpy.bitwise_or(lv, rv, out=ov)
        elif op == "intersect":
            _numpy.bitwise_and(lv, rv, out=ov)
        elif op == "difference":
            # l & ~r == l ^ (l & r): avoids materialising ~r.
            _numpy.bitwise_xor(lv, lv & rv, out=ov)
        else:
            raise ValueError(f"unknown set operation {op!r}")
        del lv, rv, ov
        return
    l, r = to_int(left), to_int(right)
    if op == "union":
        value = l | r
    elif op == "intersect":
        value = l & r
    elif op == "difference":
        value = l ^ (l & r)
    else:
        raise ValueError(f"unknown set operation {op!r}")
    write_int(out, value)


def intersect_into(out: array, keep: array) -> None:
    """``out &= keep`` (restrict a result to e.g. the reachable plane)."""
    if _np_worthwhile(out):
        ov, kv = _view(out), _view(keep)
        _numpy.bitwise_and(ov, kv, out=ov)
        del ov, kv
        return
    write_int(out, to_int(out) & to_int(keep))


def or_into(out: array, other: array) -> None:
    """``out |= other``."""
    if _np_worthwhile(out):
        ov, sv = _view(out), _view(other)
        _numpy.bitwise_or(ov, sv, out=ov)
        del ov, sv
        return
    write_int(out, to_int(out) | to_int(other))


def copy_into(out: array, src: array) -> None:
    out[:] = src


def zero(plane: array) -> None:
    plane[:] = array("Q", bytes(8 * len(plane)))


def any_bit(plane: array) -> bool:
    if _np_worthwhile(plane):
        view = _view(plane)
        result = bool(view.any())
        del view
        return result
    return any(plane)


def count_bits(plane: array) -> int:
    """Population count of the whole plane."""
    if _np_worthwhile(plane) and hasattr(_numpy, "bitwise_count"):
        view = _view(plane)
        result = int(_numpy.bitwise_count(view).sum())
        del view
        return result
    return to_int(plane).bit_count()


def iter_bits(plane: array):
    """Yield set vertex ids in increasing order (popcount-bounded work)."""
    value = to_int(plane)
    while value:
        low = value & -value
        yield low.bit_length() - 1
        value ^= low


def bits_list(plane: array, nbits: int) -> list[int]:
    """Set vertex ids below ``nbits``, ascending."""
    if _np_worthwhile(plane):
        bools = unpack_bool(plane, nbits)
        result = _numpy.flatnonzero(bools).tolist()
        del bools
        return result
    return [v for v in iter_bits(plane) if v < nbits]


# ----------------------------------------------------------------------
# Bool-array helpers (numpy tier only; kernels guard on numpy_active())
# ----------------------------------------------------------------------


def unpack_bool(plane: array, nbits: int):
    """One uint8 0/1 per vertex (numpy tier only)."""
    raw = _numpy.frombuffer(plane, dtype=_numpy.uint8)
    return _numpy.unpackbits(raw, count=nbits, bitorder="little")


def pack_bool(bools, nwords: int) -> array:
    """Pack a 0/1 array back into a fresh plane (numpy tier only)."""
    packed = _numpy.packbits(bools, bitorder="little")
    out = bytearray(8 * nwords)
    out[: len(packed)] = packed.tobytes()
    return array("Q", bytes(out))


def gather(plane: array, origin: list[int], nwords_out: int) -> array:
    """A new plane where bit ``i`` = ``plane[origin[i]]`` (renumber/gather).

    Used by the rebuild paths (product construction, compaction, chunk
    assembly) to carry every schema set through a vertex renumbering in one
    vectorised pass per plane instead of one gather per vertex.
    """
    if _active and (len(plane) >= SMALL_PLANE_WORDS or nwords_out >= SMALL_PLANE_WORDS):
        bools = unpack_bool(plane, len(plane) * WORD_BITS)
        taken = bools[origin] if not isinstance(origin, list) else bools[_numpy.asarray(origin, dtype=_numpy.intp)]
        out = pack_bool(taken, nwords_out)
        del bools, taken
        return out
    words = [0] * nwords_out
    value = to_int(plane)
    if value:
        for new_id, old_id in enumerate(origin):
            if value >> old_id & 1:
                words[new_id >> 6] |= 1 << (new_id & 63)
    return array("Q", words)


def gather_many(plane_list, origin: list[int], nwords_out: int) -> list[array]:
    """:func:`gather` over several same-width planes through one origin map.

    Converting the origin map (numpy tier) happens once instead of once per
    plane, and all-zero planes short-circuit to a fresh zero plane — both
    matter on the product-rebuild path, which re-gathers every schema set of
    the instance after each split.
    """
    out = []
    np_origin = None
    reverse: dict[int, list[int]] | None = None
    for plane in plane_list:
        if not any(plane):
            out.append(new_plane(nwords_out))
            continue
        if _active and (len(plane) >= SMALL_PLANE_WORDS or nwords_out >= SMALL_PLANE_WORDS):
            if np_origin is None:
                np_origin = _numpy.asarray(origin, dtype=_numpy.intp)
            bools = unpack_bool(plane, len(plane) * WORD_BITS)
            out.append(pack_bool(bools[np_origin], nwords_out))
            del bools
        else:
            # Stdlib tier: walk the set bits through an old-id -> new-ids
            # reverse map (built once) instead of testing every origin entry
            # against every plane.
            if reverse is None:
                reverse = {}
                for new_id, old_id in enumerate(origin):
                    slot = reverse.get(old_id)
                    if slot is None:
                        reverse[old_id] = [new_id]
                    else:
                        slot.append(new_id)
            words = [0] * nwords_out
            value = to_int(plane)
            while value:
                low = value & -value
                targets = reverse.get(low.bit_length() - 1)
                if targets is not None:
                    for new_id in targets:
                        words[new_id >> 6] |= 1 << (new_id & 63)
                value ^= low
            out.append(array("Q", words))
    return out

"""Complete binary trees — Figure 5's worked example.

Figure 5 shows the optimally compressed complete binary tree of depth 5
(labels ``a`` and ``b``) and how eight XPath queries partially decompress
it.  We use the labeling that yields the figure's DAG: every left child is
an ``a``, every right child a ``b`` (the root is an ``a``).  All subtrees of
equal depth with equal root label coincide, so the minimal instance has
exactly two vertices per level (one per label; the root level has one) —
``2d + 1`` vertices standing for ``2^(d+1) - 1`` tree nodes.
"""

from __future__ import annotations

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale
from repro.model.instance import Instance


def compressed_instance(depth: int) -> Instance:
    """The minimal instance of the depth-``depth`` complete binary tree.

    Two vertices per level below the root (an ``a`` and a ``b`` variant),
    each with one edge to the next level's ``a`` and one to its ``b``.
    """
    if depth < 0:
        raise ValueError("depth must be non-negative")
    instance = Instance(["a", "b"])
    if depth == 0:
        instance.set_root(instance.new_vertex(["a"]))
        return instance
    a_below = instance.new_vertex(["a"])
    b_below = instance.new_vertex(["b"])
    for _ in range(depth - 1):
        children = [(a_below, 1), (b_below, 1)]
        a_below = instance.new_vertex(["a"], children)
        b_below = instance.new_vertex(["b"], children)
    root = instance.new_vertex(["a"], [(a_below, 1), (b_below, 1)])
    instance.set_root(root)
    return instance


def generate_xml(depth: int = 5, seed: int = 0) -> GeneratedCorpus:
    """The same tree as XML text (2^(depth+1)-1 elements; keep depth small)."""
    check_scale(depth + 1)
    builder = XMLBuilder()

    def emit(label: str, level: int) -> None:
        builder.open(label)
        if level < depth:
            emit("a", level + 1)
            emit("b", level + 1)
        builder.close()

    emit("a", 0)
    return GeneratedCorpus(
        name="binary_tree", xml=builder.result(), scale=depth, seed=seed
    )


#: The eight queries of Figure 5 (b)-(i), in figure order.  Relative queries
#: use the root as context (the figure's caption: "with the root node being
#: selected as context").
FIGURE5_QUERIES = (
    ("b", "//a"),
    ("c", "//a/b"),
    ("d", "a"),
    ("e", "a/a"),
    ("f", "a/a/b"),
    ("g", "*"),
    ("h", "*/a"),
    ("i", "*/a/following::*"),
)

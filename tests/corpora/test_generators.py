"""Tests for the synthetic corpus generators."""

import pytest

from repro.corpora import CORPORA, QUERY_CORPORA, generate
from repro.corpora.binary_tree import compressed_instance, generate_xml
from repro.corpora.relational import direct_instance, generate_xml as relational_xml
from repro.errors import CorpusError
from repro.model.paths import tree_size
from repro.skeleton.loader import load_instance
from repro.xmlio.dom import parse_document

#: Small scales for fast tests; queries must still select >= 1 node.
TEST_SCALES = {
    "swissprot": 60,
    "dblp": 120,
    "treebank": 60,
    "omim": 60,
    "xmark": 60,
    "shakespeare": 12,
    "baseball": 6,
    "tpcd": 40,
}


@pytest.fixture(scope="module")
def generated():
    return {name: generate(name, TEST_SCALES[name], seed=1) for name in CORPORA}


class TestAllCorpora:
    @pytest.mark.parametrize("name", sorted(CORPORA))
    def test_well_formed(self, generated, name):
        document = parse_document(generated[name].xml)
        assert document.root.skeleton_size() > 50

    @pytest.mark.parametrize("name", sorted(CORPORA))
    def test_deterministic(self, name):
        first = generate(name, TEST_SCALES[name], seed=7)
        second = generate(name, TEST_SCALES[name], seed=7)
        assert first.xml == second.xml

    @pytest.mark.parametrize("name", sorted(CORPORA))
    def test_seeds_differ(self, name):
        first = generate(name, TEST_SCALES[name], seed=1)
        second = generate(name, TEST_SCALES[name], seed=2)
        if name in ("tpcd",):
            return  # text-only differences are fine but tags are fixed
        assert first.xml != second.xml

    @pytest.mark.parametrize("name", sorted(CORPORA))
    def test_scales_monotone(self, name):
        small = generate(name, TEST_SCALES[name], seed=0)
        large = generate(name, TEST_SCALES[name] * 2, seed=0)
        assert len(large.xml) > len(small.xml)

    def test_unknown_corpus_rejected(self):
        with pytest.raises(CorpusError, match="unknown corpus"):
            generate("enron")


class TestCompressionCharacter:
    """The corpora must reproduce Figure 6's *ordering* of compressibility."""

    def ratio(self, generated, name, with_tags):
        xml = generated[name].xml
        instance = load_instance(xml, tags=None if with_tags else ())
        edges = instance.num_edge_entries
        tree_edges = tree_size(instance) - 1
        return edges / tree_edges

    def test_treebank_is_the_outlier(self, generated):
        treebank = self.ratio(generated, "treebank", True)
        for other in ("dblp", "baseball", "tpcd", "omim", "swissprot"):
            assert treebank > 2 * self.ratio(generated, other, True)

    def test_relational_corpora_compress_best(self, generated):
        for name in ("baseball", "tpcd"):
            assert self.ratio(generated, name, True) < 0.06

    def test_dblp_vertex_count_stays_small(self, generated):
        instance = load_instance(generated["dblp"].xml)
        assert instance.num_vertices < 400

    def test_tags_never_improve_compression(self, generated):
        for name in CORPORA:
            bare = self.ratio(generated, name, False)
            tagged = self.ratio(generated, name, True)
            assert bare <= tagged + 1e-9


class TestQueryMatches:
    @pytest.mark.parametrize("name", QUERY_CORPORA)
    def test_every_benchmark_query_selects_something(self, generated, name):
        from repro.bench.queries import QUERY_IDS, queries_for
        from repro.engine.pipeline import query

        for query_id in QUERY_IDS:
            text = queries_for(name)[query_id]
            result = query(generated[name].xml, text)
            assert result.tree_count() >= 1, f"{name} {query_id} selected nothing"


class TestBinaryTree:
    def test_compressed_instance_shape(self):
        instance = compressed_instance(5)
        instance.validate()
        assert instance.num_vertices == 11  # 2*5 + 1
        assert tree_size(instance) == 2**6 - 1

    def test_depth_zero(self):
        instance = compressed_instance(0)
        assert instance.num_vertices == 1

    def test_xml_matches_instance(self):
        xml = generate_xml(4).xml
        loaded = load_instance(xml)
        # Strip the virtual document root for comparison.
        direct = compressed_instance(4)
        root_child = loaded.children(loaded.root)[0][0]
        assert tree_size(loaded) - 1 == tree_size(direct)
        assert loaded.num_vertices == direct.num_vertices + 1

    def test_labels_left_a_right_b(self):
        doc = parse_document(generate_xml(2).xml)
        assert doc.root.tag == "a"
        children = list(doc.root.elements())
        assert [c.tag for c in children] == ["a", "b"]


class TestRelational:
    def test_direct_instance_is_constant_in_rows(self):
        # O(C) vertices regardless of R: C column leaves + row + table.
        small = direct_instance(10, 4)
        large = direct_instance(10_000, 4)
        assert small.num_vertices == large.num_vertices == 6
        assert small.num_edge_entries == large.num_edge_entries == 5
        assert tree_size(large) == 1 + 10_000 + 40_000

    def test_xml_round_trip(self):
        from repro.compress.minimize import is_compressed

        instance = load_instance(relational_xml(20, 3).xml)
        assert is_compressed(instance)
        # document root, table, row, col leaf (3 distinct col tags).
        assert instance.num_vertices <= 7

    def test_distinct_texts_flag(self):
        xml = relational_xml(3, 2, distinct_texts=True).xml
        assert "r2c1" in xml

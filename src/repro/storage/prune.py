"""Conservative chunk-pruning analysis for shredded instances.

Section 6: "we want to be able to apply some shredding and cache chunks of
compressed instances in secondary storage ... Of course these chunks should
be as large as they can be to fit into main memory."

A store shredded at the top level (one chunk per distinct subtree under the
root element) can answer a query from a *subset* of chunks only when the
query provably cannot observe the pruned ones.  The analysis here is
deliberately conservative — it prunes only when all of the following hold:

* the query is an absolute path whose first two steps are plain ``child``
  steps with concrete tags (``/bib/article/...``); the first step carries
  no predicates (a predicate on the root element could inspect siblings in
  other chunks);
* no sibling-family axis (following/preceding/following-sibling/
  preceding-sibling) occurs anywhere — pruned top-level elements are
  siblings of loaded ones;
* no absolute path occurs inside a predicate — ``V|root`` conditions
  quantify over the whole document.

Everything else answers ``None`` ("load all chunks"), which is always
correct.  Top-level path unions prune to the union of their branches.
"""

from __future__ import annotations

from repro.xpath.ast import LocationPath, PathUnion, walk
from repro.xpath.parser import parse_query

_SIBLING_FAMILY = {
    "following",
    "preceding",
    "following-sibling",
    "preceding-sibling",
}


def prunable_top_tags(query: str | LocationPath | PathUnion) -> set[str] | None:
    """Top-level child tags sufficient to answer ``query``, or ``None`` for all."""
    ast = parse_query(query) if isinstance(query, str) else query
    if isinstance(ast, PathUnion):
        tags: set[str] = set()
        for path in ast.paths:
            branch = prunable_top_tags(path)
            if branch is None:
                return None
            tags |= branch
        return tags
    return _analyse_path(ast)


def _analyse_path(path: LocationPath) -> set[str] | None:
    if not path.absolute or len(path.steps) < 2:
        return None
    first, second = path.steps[0], path.steps[1]
    if first.axis != "child" or first.test == "*" or first.predicates:
        return None
    if second.axis != "child" or second.test == "*":
        return None
    for node in walk(path):
        if isinstance(node, LocationPath):
            if node.absolute and node is not path:
                return None  # absolute condition: whole-document semantics
            for step in node.steps:
                if step.axis in _SIBLING_FAMILY:
                    return None
    return {second.test}

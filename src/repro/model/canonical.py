"""Canonical forms of instances via bottom-up hash-consing.

Two vertices of (possibly different) instances get the same *canonical id*
exactly when the sub-DAGs hanging off them unfold to the same labeled ordered
tree.  This is the OBDD-reduction idea of section 2.2 transferred to ordered
unranked trees with multiplicity edges: a vertex's identity is determined by
its set-membership mask and its run-length-normalized sequence of
(canonical) children.

The canonicaliser is the common core of

* the compressor ``M(I)`` (``repro.compress.minimize``),
* instance equivalence (``repro.model.equivalence``), and
* the coarsest bisimilarity relation (``repro.model.bisimulation``).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SchemaError
from repro.model.instance import Instance, normalize_edges


class ConsTable:
    """Interns ``(mask, children)`` keys to dense canonical ids.

    A single table can be shared between several instances so that their
    canonical ids are directly comparable.
    """

    __slots__ = ("_ids",)

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}

    def intern(self, key: tuple) -> int:
        ids = self._ids
        canonical = ids.get(key)
        if canonical is None:
            canonical = len(ids)
            ids[key] = canonical
        return canonical

    def __len__(self) -> int:
        return len(self._ids)

    def keys(self) -> Iterable[tuple]:
        return self._ids.keys()


def remap_mask(instance: Instance, vertex: int, name_order: list[str]) -> int:
    """Rewrite a vertex mask so bit ``i`` means membership in ``name_order[i]``."""
    mask = instance.mask(vertex)
    out = 0
    for i, name in enumerate(name_order):
        if mask >> instance.bit_of(name) & 1:
            out |= 1 << i
    return out


def canonical_ids(
    instance: Instance,
    table: ConsTable | None = None,
    name_order: list[str] | None = None,
) -> dict[int, int]:
    """Assign each reachable vertex its canonical id.

    ``name_order`` fixes the bit interpretation of masks; it defaults to the
    instance's own schema order.  Pass the same ``table`` and ``name_order``
    for two instances to make their ids comparable (their schemas must then
    contain all names in ``name_order``).

    Runs in linear time in the size of the instance (amortised, via hashing),
    matching Proposition 2.6.
    """
    if table is None:
        table = ConsTable()
    if name_order is None:
        name_order = list(instance.schema)
    identity_order = name_order == list(instance.schema)
    row_masks = instance.row_masks()
    if not identity_order:
        bits = [instance.bit_of(name) for name in name_order]

    ids: dict[int, int] = {}
    for vertex in instance.postorder():
        edges = normalize_edges(
            (ids[child], count) for child, count in instance.children(vertex)
        )
        mask = row_masks[vertex]
        if not identity_order:
            mask = sum(1 << i for i, bit in enumerate(bits) if mask >> bit & 1)
        ids[vertex] = table.intern((mask, edges))
    return ids


def shared_name_order(a: Instance, b: Instance) -> list[str]:
    """A deterministic common name order for two instances with equal schema sets."""
    names_a, names_b = set(a.schema), set(b.schema)
    if names_a != names_b:
        raise SchemaError(
            "instances are over different schemas: "
            f"{sorted(names_a ^ names_b)!r} not shared"
        )
    return sorted(names_a)

"""Prometheus-style metrics for the serving tier (stdlib only).

Three layers, smallest first:

* **Instruments** — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
  hold labeled time series behind one short-lived lock per family.  The
  hot path (``inc``/``observe``) is a dict lookup plus an add under that
  lock; no string formatting happens until scrape time.
* **Registry** — :class:`MetricsRegistry` names the families, renders
  the text exposition format (``# HELP``/``# TYPE`` + samples, version
  0.0.4), and accepts *collector* callbacks that contribute families
  computed at scrape time (how ``/stats`` counters become metrics
  without double bookkeeping — the numbers reconcile by construction
  because they are read from the same source).
* **Facade** — :class:`ServerMetrics` owns the instruments the HTTP
  front-ends update per request (request counts and latency histograms
  by route/status, open connections) and the collector that maps
  ``service.stats_dict()`` — admission outcomes, coalescer batch sizes,
  pool hit/miss, worker queue depths, shard residency, breaker and
  deadline events — into ``repro_*`` families.

Naming scheme: every family is prefixed ``repro_``; counters end in
``_total``; histograms follow the Prometheus convention of cumulative
``_bucket{le="..."}`` series plus ``_sum`` and ``_count``; gauges are
bare.  :func:`parse_prometheus_text` is the strict parser used by the
overload benchmark and the tests to prove the exposition is valid and
the numbers reconcile with ``/stats``.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left

#: Content type of the text exposition format served at ``GET /metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Request latency bucket upper bounds (seconds).  Fixed at import time:
#: scrapes from restarts stay comparable, and the histogram hot path is a
#: ``bisect`` into a tuple.
LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def format_value(value: float) -> str:
    """A sample value in exposition form (integers without the ``.0``)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def format_labels(labels: dict[str, str]) -> str:
    """``{k="v",...}`` (or the empty string) with label values escaped."""
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label(str(value))}"' for name, value in labels.items())
    return "{" + inner + "}"


class _Family:
    """Shared labeled-series storage: one lock, one dict keyed by label values."""

    kind = "untyped"

    def __init__(self, name: str, help: str, labelnames: tuple[str, ...] = ()):
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], float] = {}

    def _key(self, labels: dict[str, str]) -> tuple[str, ...]:
        if tuple(labels) != self.labelnames:
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {tuple(labels)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        """``(sample_name, labels, value)`` rows for the renderer."""
        with self._lock:
            items = sorted(self._series.items())
        return [
            (self.name, dict(zip(self.labelnames, key)), value)
            for key, value in items
        ]


class Counter(_Family):
    """A monotonically increasing labeled counter."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up (got {amount})")
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class Gauge(_Family):
    """A labeled gauge: set to the current level, or inc/dec around a region."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._series.get(key, 0.0)


class _HistogramSeries:
    __slots__ = ("counts", "total", "sum")

    def __init__(self, n_buckets: int):
        self.counts = [0] * n_buckets  # per-bucket (non-cumulative) counts
        self.total = 0
        self.sum = 0.0


class Histogram(_Family):
    """A fixed-bucket latency histogram (cumulative ``le`` series at render)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ):
        super().__init__(name, help, labelnames)
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ValueError(f"{name}: bucket bounds must be strictly increasing")
        self.buckets = tuple(float(bound) for bound in buckets)
        self._series: dict[tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        index = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
            series.counts[index] += 1
            series.total += 1
            series.sum += value

    def snapshot(self, **labels: str) -> dict:
        """Cumulative bucket counts + sum/count for one label combination."""
        key = self._key(labels)
        with self._lock:
            series = self._series.get(key)
            counts = list(series.counts) if series else [0] * (len(self.buckets) + 1)
            total = series.total if series else 0
            total_sum = series.sum if series else 0.0
        cumulative, running = [], 0
        for count in counts:
            running += count
            cumulative.append(running)
        return {"le": list(self.buckets), "cumulative": cumulative,
                "sum": total_sum, "count": total}

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        with self._lock:
            items = sorted(
                (key, list(series.counts), series.total, series.sum)
                for key, series in self._series.items()
            )
        rows: list[tuple[str, dict[str, str], float]] = []
        for key, counts, total, total_sum in items:
            labels = dict(zip(self.labelnames, key))
            running = 0
            for bound, count in zip(self.buckets, counts):
                running += count
                rows.append(
                    (f"{self.name}_bucket", {**labels, "le": format_value(bound)}, running)
                )
            rows.append((f"{self.name}_bucket", {**labels, "le": "+Inf"}, total))
            rows.append((f"{self.name}_sum", labels, total_sum))
            rows.append((f"{self.name}_count", labels, total))
        return rows


class RawFamily:
    """A scrape-time family contributed by a collector (already-final samples).

    ``samples`` rows are ``(sample_name, labels, value)``; histogram
    collectors emit their own ``_bucket``/``_sum``/``_count`` rows.
    """

    def __init__(self, name: str, kind: str, help: str,
                 samples: list[tuple[str, dict[str, str], float]]):
        self.name = name
        self.kind = kind
        self.help = help
        self._samples = samples

    def samples(self) -> list[tuple[str, dict[str, str], float]]:
        return self._samples


class MetricsRegistry:
    """Named instrument families plus scrape-time collectors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list = []

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            existing = self._families.get(family.name)
            if existing is not None:
                if type(existing) is not type(family):
                    raise ValueError(f"{family.name}: already registered as {existing.kind}")
                return existing
            self._families[family.name] = family
        return family

    def counter(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Counter:
        return self._register(Counter(name, help, labelnames))

    def gauge(self, name: str, help: str, labelnames: tuple[str, ...] = ()) -> Gauge:
        return self._register(Gauge(name, help, labelnames))

    def histogram(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help, labelnames, buckets))

    def add_collector(self, collector) -> None:
        """``collector()`` returns an iterable of :class:`RawFamily` at scrape."""
        with self._lock:
            self._collectors.append(collector)

    def render(self) -> str:
        """The full text exposition (``# HELP``/``# TYPE`` + samples)."""
        with self._lock:
            families = list(self._families.values())
            collectors = list(self._collectors)
        for collector in collectors:
            families.extend(collector())
        lines: list[str] = []
        seen: set[str] = set()
        for family in families:
            if family.name in seen:  # collectors must not shadow instruments
                continue
            seen.add(family.name)
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for sample_name, labels, value in family.samples():
                lines.append(f"{sample_name}{format_labels(labels)} {format_value(value)}")
        return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Strict exposition parser (benchmarks + tests validate scrapes with this).
# ---------------------------------------------------------------------------


def _parse_labels(text: str) -> dict[str, str]:
    labels: dict[str, str] = {}
    index = 0
    while index < len(text):
        equals = text.index("=", index)
        name = text[index:equals].strip()
        if not name.replace("_", "a").isalnum():
            raise ValueError(f"bad label name {name!r}")
        if text[equals + 1] != '"':
            raise ValueError(f"label value for {name!r} is not quoted")
        value_chars: list[str] = []
        cursor = equals + 2
        while True:
            char = text[cursor]
            if char == "\\":
                escape = text[cursor + 1]
                value_chars.append({"n": "\n", "\\": "\\", '"': '"'}[escape])
                cursor += 2
            elif char == '"':
                cursor += 1
                break
            else:
                value_chars.append(char)
                cursor += 1
        labels[name] = "".join(value_chars)
        if cursor < len(text):
            if text[cursor] != ",":
                raise ValueError(f"expected ',' between labels at {text[cursor:]!r}")
            cursor += 1
        index = cursor
    return labels


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse (strictly) a text exposition into per-family structures.

    Returns ``{family_name: {"type": kind, "help": str, "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Raises ``ValueError``
    on anything malformed: unknown sample prefixes, samples before their
    ``# TYPE``, bad label syntax, non-numeric values — the overload bench
    uses this as the "parses as valid Prometheus text format" gate.
    """
    families: dict[str, dict] = {}

    def owner(sample_name: str) -> str:
        if sample_name in families:
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[: -len(suffix)] if sample_name.endswith(suffix) else None
            if base and base in families and families[base]["type"] == "histogram":
                return base
        raise ValueError(f"sample {sample_name!r} has no preceding # TYPE family")

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            families[name]["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")
            families.setdefault(name, {"type": None, "help": None, "samples": []})
            if families[name]["type"] is not None:
                raise ValueError(f"duplicate # TYPE for {name!r}")
            families[name]["type"] = kind
        elif line.startswith("#"):
            continue  # comment
        else:
            brace = line.find("{")
            if brace >= 0:
                close = line.rindex("}")
                sample_name = line[:brace]
                labels = _parse_labels(line[brace + 1 : close])
                value_text = line[close + 1 :].strip()
            else:
                sample_name, _, value_text = line.partition(" ")
                labels = {}
                value_text = value_text.strip()
            cleaned = sample_name.replace("_", "a").replace(":", "a")
            if not sample_name or not cleaned.isalnum():
                raise ValueError(f"bad sample name in line {raw_line!r}")
            value_text = value_text.split()[0]  # tolerate a trailing timestamp
            if value_text == "+Inf":
                value = math.inf
            elif value_text == "-Inf":
                value = -math.inf
            else:
                value = float(value_text)  # raises ValueError when malformed
            families[owner(sample_name)]["samples"].append((sample_name, labels, value))

    for name, family in families.items():
        if family["type"] is None:
            raise ValueError(f"family {name!r} has samples but no # TYPE line")
        if family["type"] == "histogram":
            check_histogram_invariants(name, family["samples"])
    return families


def histogram_series(
    samples: list[tuple[str, dict[str, str], float]], base: str, **match: str
) -> tuple[list[tuple[float, float]], float, float]:
    """``(sorted (le, cumulative) rows, sum, count)`` for one label subset."""
    buckets: list[tuple[float, float]] = []
    total_sum = total_count = 0.0
    for sample_name, labels, value in samples:
        if any(labels.get(key) != str(expected) for key, expected in match.items()):
            continue
        if sample_name == f"{base}_bucket":
            le = labels["le"]
            bound = math.inf if le == "+Inf" else float(le)
            buckets.append((bound, value))
        elif sample_name == f"{base}_sum":
            total_sum += value
        elif sample_name == f"{base}_count":
            total_count += value
    buckets.sort(key=lambda pair: pair[0])
    return buckets, total_sum, total_count


def check_histogram_invariants(
    name: str, samples: list[tuple[str, dict[str, str], float]]
) -> None:
    """Raise ``ValueError`` unless each label set's buckets are cumulative
    monotone, end in ``+Inf``, and the ``+Inf`` bucket equals ``_count``."""
    by_key: dict[tuple, dict] = {}
    for sample_name, labels, value in samples:
        key_labels = {k: v for k, v in labels.items() if k != "le"}
        key = tuple(sorted(key_labels.items()))
        entry = by_key.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if sample_name == f"{name}_bucket":
            le = labels.get("le")
            if le is None:
                raise ValueError(f"{name}: _bucket sample without le label")
            bound = math.inf if le == "+Inf" else float(le)
            entry["buckets"].append((bound, value))
        elif sample_name == f"{name}_sum":
            entry["sum"] = value
        elif sample_name == f"{name}_count":
            entry["count"] = value
        else:
            raise ValueError(f"{name}: unexpected histogram sample {sample_name!r}")
    for key, entry in by_key.items():
        buckets = sorted(entry["buckets"], key=lambda pair: pair[0])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"{name}{dict(key)}: histogram is missing the +Inf bucket")
        previous = 0.0
        for bound, value in buckets:
            if value < previous:
                raise ValueError(
                    f"{name}{dict(key)}: bucket le={bound} count {value} "
                    f"below previous cumulative {previous}"
                )
            previous = value
        if entry["count"] is None or entry["sum"] is None:
            raise ValueError(f"{name}{dict(key)}: histogram is missing _sum or _count")
        if buckets[-1][1] != entry["count"]:
            raise ValueError(
                f"{name}{dict(key)}: +Inf bucket {buckets[-1][1]} != _count {entry['count']}"
            )


def quantile_bounds(
    buckets: list[tuple[float, float]], quantile: float
) -> tuple[float, float]:
    """``(lower, upper)`` bucket edges containing the requested quantile.

    The true quantile of the observed distribution lies inside the bucket
    whose cumulative count first reaches ``ceil(q * count)``; the bench
    uses the bounds to cross-check server-side latency against its own
    client-side measurement.
    """
    if not buckets:
        return (0.0, math.inf)
    total = buckets[-1][1]
    if total <= 0:
        return (0.0, math.inf)
    rank = math.ceil(quantile * total)
    lower = 0.0
    for bound, cumulative in buckets:
        if cumulative >= rank:
            return (lower, bound)
        lower = bound
    return (lower, math.inf)


# ---------------------------------------------------------------------------
# The server facade: direct instruments + the /stats collector.
# ---------------------------------------------------------------------------

#: Bounded route label space — raw paths would make label cardinality
#: unbounded (every document name a new series).
_KNOWN_ROUTES = ("/query", "/explain", "/mutate", "/stats", "/healthz", "/catalog", "/metrics")


def route_label(path: str) -> str:
    base = path.split("?", 1)[0]
    if base in _KNOWN_ROUTES:
        return base
    if base.startswith("/catalog/"):
        return "/catalog/{name}"
    return "other"


def _counter_samples(name, stats, *keys, labels=None):
    value = stats
    for key in keys:
        if not isinstance(value, dict) or key not in value:
            return []
        value = value[key]
    if not isinstance(value, (int, float)):
        return []
    return [(name, labels or {}, float(value))]


class ServerMetrics:
    """Instruments + collectors for one server (either front-end).

    ``service_provider`` is a zero-arg callable returning the live
    service (QueryService or WorkerFleet) — deferred because the HTTP
    server object is constructed before its service is attached.
    """

    def __init__(self, service_provider, frontend: str = "threaded"):
        self.registry = MetricsRegistry()
        self._service_provider = service_provider
        self.frontend = frontend
        registry = self.registry
        self.http_requests = registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route, method and status code.",
            ("route", "method", "status"),
        )
        self.http_latency = registry.histogram(
            "repro_http_request_seconds",
            "Wall-clock request latency from parse to response write, by route and status.",
            ("route", "status"),
        )
        self.connections = registry.gauge(
            "repro_http_connections_open",
            "Open client connections (async front-end; the threaded front-end "
            "reports handler threads only implicitly).",
        )
        self.info = registry.gauge(
            "repro_server_info",
            "Constant 1; the labels carry the front-end flavor.",
            ("frontend",),
        )
        self.info.set(1, frontend=frontend)
        registry.add_collector(self._collect_service)

    # -- hot path ---------------------------------------------------------

    def observe_request(self, route: str, method: str, status: int, seconds: float) -> None:
        status_text = str(status)
        self.http_requests.inc(route=route, method=method, status=status_text)
        self.http_latency.observe(seconds, route=route, status=status_text)

    # -- scrape path ------------------------------------------------------

    def render(self) -> str:
        return self.registry.render()

    def _collect_service(self):
        try:
            service = self._service_provider()
            stats = service.stats_dict() if service is not None else None
        except Exception:  # noqa: BLE001 - scrapes must not take the server down
            stats = None
        if not isinstance(stats, dict):
            return []
        families = []
        families.extend(_admission_families(stats.get("admission")))
        if "cluster" in stats:
            families.extend(_cluster_families(stats))
        else:
            families.extend(_inprocess_families(stats))
        return families


def _admission_families(admission) -> list[RawFamily]:
    if not isinstance(admission, dict):
        return []
    shed_queue = float(admission.get("shed_queue_full", 0))
    shed_rate_limited = float(admission.get("shed_rate_limited", 0))
    return [
        RawFamily(
            "repro_admission_admitted_total", "counter",
            "Requests admitted past the admission controller.",
            _counter_samples("repro_admission_admitted_total", admission, "admitted"),
        ),
        RawFamily(
            "repro_admission_shed_total", "counter",
            "Requests shed with 429, by reason.",
            [
                ("repro_admission_shed_total", {"reason": "queue_full"}, shed_queue),
                ("repro_admission_shed_total", {"reason": "rate_limited"}, shed_rate_limited),
            ],
        ),
        RawFamily(
            "repro_admission_inflight", "gauge",
            "Requests currently admitted and executing.",
            _counter_samples("repro_admission_inflight", admission, "inflight"),
        ),
        RawFamily(
            "repro_admission_shed_rate", "gauge",
            "Sliding-window fraction of recent requests shed (0..1).",
            _counter_samples("repro_admission_shed_rate", admission, "shed_rate"),
        ),
    ]


def _service_counter_families(service_stats: dict, pool_stats) -> list[RawFamily]:
    families = [
        RawFamily(
            "repro_requests_total", "counter",
            "Queries accepted by the service (reconciles with /stats requests).",
            _counter_samples("repro_requests_total", service_stats, "requests"),
        ),
        RawFamily(
            "repro_batches_total", "counter",
            "Coalesced batches executed.",
            _counter_samples("repro_batches_total", service_stats, "batches"),
        ),
        RawFamily(
            "repro_coalesced_requests_total", "counter",
            "Requests that shared a batch with at least one other request.",
            _counter_samples(
                "repro_coalesced_requests_total", service_stats, "coalesced_requests"
            ),
        ),
        RawFamily(
            "repro_errors_total", "counter",
            "Queries that raised instead of returning a result.",
            _counter_samples("repro_errors_total", service_stats, "errors"),
        ),
        RawFamily(
            "repro_deadline_expired_total", "counter",
            "Queries that crossed their end-to-end deadline.",
            _counter_samples(
                "repro_deadline_expired_total", service_stats, "deadline_expired"
            ),
        ),
    ]
    batch_sizes = service_stats.get("batch_sizes")
    if isinstance(batch_sizes, dict):
        samples, running = [], 0.0
        bounds = batch_sizes.get("le", [])
        counts = batch_sizes.get("counts", [])
        for bound, count in zip(bounds, counts):
            running += count
            samples.append(
                ("repro_batch_size_bucket", {"le": format_value(float(bound))}, running)
            )
        total = float(batch_sizes.get("count", 0))
        samples.append(("repro_batch_size_bucket", {"le": "+Inf"}, total))
        samples.append(("repro_batch_size_sum", {}, float(batch_sizes.get("sum", 0))))
        samples.append(("repro_batch_size_count", {}, total))
        families.append(
            RawFamily(
                "repro_batch_size", "histogram",
                "Coalesced batch sizes (queries per executed batch).", samples,
            )
        )
    if isinstance(pool_stats, dict):
        for key, kind, help_text in (
            ("hits", "counter", "Instance-pool hits."),
            ("misses", "counter", "Instance-pool misses (cold loads)."),
            ("evictions", "counter", "Instance-pool LRU evictions."),
            ("resident", "gauge", "Documents currently resident in the pool."),
            ("capacity", "gauge", "Instance-pool capacity."),
        ):
            name = f"repro_pool_{key}" + ("_total" if kind == "counter" else "")
            families.append(
                RawFamily(name, kind, help_text, _counter_samples(name, pool_stats, key))
            )
    return families


def _mutation_families(mutations, doc_versions) -> list[RawFamily]:
    """Write-path families shared by both front-ends.

    ``mutations`` is the ``{"applied", "failed", "ops"}`` dict either
    service exposes; ``doc_versions`` maps document name to the
    monotone version stamped at its last publish, so dashboards can
    watch the fleet converge after a mutation.
    """
    families: list[RawFamily] = []
    if isinstance(mutations, dict):
        families.append(
            RawFamily(
                "repro_mutations_total", "counter",
                "Mutation batches, by outcome (applied committed and published; "
                "failed rejected or rolled back).",
                [
                    ("repro_mutations_total", {"outcome": "applied"},
                     float(mutations.get("applied", 0))),
                    ("repro_mutations_total", {"outcome": "failed"},
                     float(mutations.get("failed", 0))),
                ],
            )
        )
        ops = mutations.get("ops")
        if isinstance(ops, dict) and ops:
            families.append(
                RawFamily(
                    "repro_mutation_ops_total", "counter",
                    "Individual mutation operations applied, by op.",
                    [
                        ("repro_mutation_ops_total", {"op": str(op)}, float(count))
                        for op, count in sorted(ops.items())
                    ],
                )
            )
    if isinstance(doc_versions, dict) and doc_versions:
        families.append(
            RawFamily(
                "repro_catalog_doc_version", "gauge",
                "Monotone version of each registered document's published state.",
                [
                    ("repro_catalog_doc_version", {"document": str(name)}, float(version))
                    for name, version in sorted(doc_versions.items())
                ],
            )
        )
    return families


def _inprocess_families(stats: dict) -> list[RawFamily]:
    service_stats = stats.get("service", {})
    families = _service_counter_families(service_stats, stats.get("pool"))
    if isinstance(service_stats, dict):
        families.extend(
            _mutation_families(service_stats.get("mutations"), stats.get("doc_versions"))
        )
    quarantined = stats.get("quarantined")
    if isinstance(quarantined, list):
        families.append(
            RawFamily(
                "repro_quarantined_documents", "gauge",
                "Documents quarantined by integrity checks.",
                [("repro_quarantined_documents", {}, float(len(quarantined)))],
            )
        )
    return families


def _cluster_families(stats: dict) -> list[RawFamily]:
    cluster = stats.get("cluster", {})
    families = [
        RawFamily(
            "repro_requests_total", "counter",
            "Queries dispatched by the fleet (reconciles with /stats dispatched).",
            _counter_samples("repro_requests_total", cluster, "dispatched"),
        ),
        RawFamily(
            "repro_cluster_completed_total", "counter",
            "Dispatches that returned a response.",
            _counter_samples("repro_cluster_completed_total", cluster, "completed"),
        ),
        RawFamily(
            "repro_cluster_failed_total", "counter",
            "Dispatches that failed (worker crash or error reply).",
            _counter_samples("repro_cluster_failed_total", cluster, "failed"),
        ),
        RawFamily(
            "repro_cluster_respawns_total", "counter",
            "Worker respawns after crashes.",
            _counter_samples("repro_cluster_respawns_total", cluster, "respawns"),
        ),
        RawFamily(
            "repro_cluster_workers", "gauge",
            "Configured fleet size.",
            _counter_samples("repro_cluster_workers", cluster, "workers"),
        ),
        RawFamily(
            "repro_cluster_alive", "gauge",
            "Workers currently alive.",
            _counter_samples("repro_cluster_alive", cluster, "alive"),
        ),
    ]
    families.extend(
        _mutation_families(stats.get("mutations"), stats.get("doc_versions"))
    )
    worker_rows = stats.get("workers")
    if isinstance(worker_rows, list):
        depth, dispatched, completed, failed, alive, shards, breaker_open = (
            [], [], [], [], [], [], []
        )
        requests = []
        for row in worker_rows:
            worker = {"worker": str(row.get("worker", "?"))}
            depth.append(
                ("repro_worker_queue_depth", worker, float(row.get("queue_depth", 0)))
            )
            dispatched.append(
                ("repro_worker_dispatched_total", worker, float(row.get("dispatched", 0)))
            )
            completed.append(
                ("repro_worker_completed_total", worker, float(row.get("completed", 0)))
            )
            failed.append(("repro_worker_failed_total", worker, float(row.get("failed", 0))))
            alive.append(("repro_worker_alive", worker, 1.0 if row.get("alive") else 0.0))
            if isinstance(row.get("shards"), list):
                shards.append(
                    ("repro_worker_shards_resident", worker, float(len(row["shards"])))
                )
            breaker = row.get("breaker")
            if isinstance(breaker, dict):
                breaker_open.append(
                    ("repro_worker_breaker_open", worker,
                     0.0 if breaker.get("state") == "closed" else 1.0)
                )
            inner = row.get("service")
            if isinstance(inner, dict) and isinstance(inner.get("requests"), (int, float)):
                requests.append(
                    ("repro_worker_requests_total", worker, float(inner["requests"]))
                )
        families.extend([
            RawFamily("repro_worker_queue_depth", "gauge",
                      "Requests enqueued to each worker.", depth),
            RawFamily("repro_worker_dispatched_total", "counter",
                      "Requests dispatched to each worker (monotone across respawns).",
                      dispatched),
            RawFamily("repro_worker_completed_total", "counter",
                      "Requests completed by each worker (monotone across respawns).",
                      completed),
            RawFamily("repro_worker_failed_total", "counter",
                      "Requests failed per worker (monotone across respawns).", failed),
            RawFamily("repro_worker_alive", "gauge", "1 when the worker is alive.", alive),
        ])
        if shards:
            families.append(
                RawFamily("repro_worker_shards_resident", "gauge",
                          "Documents resident in each worker's pool.", shards)
            )
        if breaker_open:
            families.append(
                RawFamily("repro_worker_breaker_open", "gauge",
                          "1 when the worker's circuit breaker is open or half-open.",
                          breaker_open)
            )
        if requests:
            families.append(
                RawFamily("repro_worker_requests_total", "counter",
                          "Queries served per worker (carried across respawns).", requests)
            )
    return families

"""Tests for instance equivalence (Definition 2.1, Propositions 2.2-2.5)."""

import pytest

from repro.errors import SchemaError
from repro.model.equivalence import compatible, equivalent, equivalent_by_paths
from repro.model.instance import Instance, tree_instance


class TestEquivalent:
    def test_tree_equivalent_to_compressed(self, bib_tree, figure2_compressed):
        assert equivalent(bib_tree, figure2_compressed)
        assert equivalent_by_paths(bib_tree, figure2_compressed)

    def test_reflexive(self, figure2_compressed):
        assert equivalent(figure2_compressed, figure2_compressed)

    def test_schema_order_is_irrelevant(self):
        a = tree_instance(("x", [("y", [])]), schema=["x", "y"])
        b = tree_instance(("x", [("y", [])]), schema=["y", "x"])
        assert equivalent(a, b)

    def test_different_structure_not_equivalent(self):
        a = tree_instance(("x", [("y", []), ("y", [])]))
        b = tree_instance(("x", [("y", [])]))
        b.ensure_set("x")  # align schemas
        a.ensure_set("x")
        assert not equivalent(a, b)
        assert not equivalent_by_paths(a, b)

    def test_different_labeling_not_equivalent(self):
        a = tree_instance(("x", [("y", [])]), schema=["x", "y"])
        b = tree_instance(("y", [("x", [])]), schema=["x", "y"])
        assert not equivalent(a, b)

    def test_order_matters(self):
        a = tree_instance(("r", [("x", []), ("y", [])]), schema=["r", "x", "y"])
        b = tree_instance(("r", [("y", []), ("x", [])]), schema=["r", "x", "y"])
        assert not equivalent(a, b)
        assert not equivalent_by_paths(a, b)

    def test_multiplicity_representation_is_irrelevant(self):
        # (leaf,3) versus (leaf,1),(leaf,2) on separate vertices.
        a = Instance(["l"])
        leaf_a = a.new_vertex(["l"])
        a.set_root(a.new_vertex(children=[(leaf_a, 3)]))

        b = Instance(["l"])
        leaf_b1 = b.new_vertex(["l"])
        leaf_b2 = b.new_vertex(["l"])
        b.set_root(b.new_vertex(children=[(leaf_b1, 1), (leaf_b2, 2)]))
        assert equivalent(a, b)

    def test_disjoint_schemas_raise(self):
        a = tree_instance(("x", []))
        b = tree_instance(("y", []))
        with pytest.raises(SchemaError):
            equivalent(a, b)


class TestCompatible:
    def test_same_dag_different_labelings_are_compatible(self, bib_tree):
        a = bib_tree.copy()
        a.ensure_set("extra_a")
        a.add_to_set(a.root, "extra_a")
        b = bib_tree.copy()
        b.ensure_set("extra_b")
        assert compatible(a, b)

    def test_incompatible_on_shared_set(self, bib_tree):
        a = bib_tree.copy()
        b = bib_tree.copy()
        b.remove_from_set(next(iter(b.members("author"))), "author")
        assert not compatible(a, b)

    def test_compressed_and_tree_compatible(self, bib_tree, figure2_compressed):
        assert compatible(bib_tree, figure2_compressed)

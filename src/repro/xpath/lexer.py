"""Tokenizer for the Core XPath fragment."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import XPathSyntaxError

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<DSLASH>//)
  | (?P<SLASH>/)
  | (?P<AXISSEP>::)
  | (?P<LBRACKET>\[)
  | (?P<RBRACKET>\])
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<PIPE>\|)
  | (?P<STAR>\*)
  | (?P<STRING>"[^"]*"|'[^']*')
  | (?P<NAME>@?[A-Za-z_][A-Za-z0-9_.\-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}@{self.position})"


def lex(query: str) -> list[Token]:
    """Tokenize ``query``; raises :class:`XPathSyntaxError` on stray characters."""
    tokens: list[Token] = []
    position = 0
    length = len(query)
    while position < length:
        match = _TOKEN_RE.match(query, position)
        if not match:
            raise XPathSyntaxError(
                f"unexpected character {query[position]!r}", position=position
            )
        kind = match.lastgroup
        value = match.group()
        if kind != "WS":
            if kind == "STRING":
                value = value[1:-1]
            tokens.append(Token(kind, value, position))
        position = match.end()
    tokens.append(Token("EOF", "", length))
    return tokens

"""Localized DAG maintenance: apply mutations without a full re-shred.

A mutation touches one subtree, but the document lives as a *shared* DAG —
editing a vertex in place would edit every tree occurrence of it.  The fix
is the classic copy-on-write spine: walk the tree path from the root to the
mutation point, privatizing each vertex on the way (a private copy replaces
exactly the addressed occurrence in its parent's edge list, leaving all
other occurrences on the shared original).  The edit then lands on private
vertices only.  Fragments are shredded by the same loader that registered
the document — only the fragment text is parsed, not the document — and
grafted by remapping their set bits into the host schema.  One final
:func:`repro.compress.minimize.minimize` re-establishes minimality, folding
the privatized spine back into shared vertices wherever bisimilarity
reappears.  Total cost is O(|DAG| + |fragment|), independent of the
document's text size — that is the whole ≥5x headline.

Statistics are patched, not recollected from text: the exact per-set tree
and DAG counts come from one topological pass over the (small) mutated DAG,
and the character sketch is adjusted by the spliced-out/in substrings.
The sketch patch is exact whenever the document has at most
``_SKETCH_CHARS`` distinct characters (the sketch is then complete);
beyond that it degrades gracefully — it is a selectivity estimate, never a
correctness input.
"""

from __future__ import annotations

import dataclasses
import time
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.compress.minimize import minimize
from repro.compress.stats import _SKETCH_CHARS, DocumentStats
from repro.errors import MutationError, XMLSyntaxError
from repro.model.instance import Instance, normalize_edges
from repro.mutation.ops import Mutation, as_mutations
from repro.mutation.textedit import splice
from repro.skeleton.loader import load


@dataclass(frozen=True)
class MutationOutcome:
    """Everything a mutation batch produced, ready to publish."""

    #: The minimized post-mutation instance (a fresh object; inputs untouched).
    instance: Instance
    #: The post-mutation document text (splice of the input text).
    text: str
    #: Patched statistics catalog (exact counts, adjusted char sketch).
    stats: DocumentStats
    #: Wall-clock seconds spent on maintenance (splice + graft + minimize).
    seconds: float
    #: Number of mutations applied.
    applied: int
    #: Per-op application counts, e.g. ``{"append_child": 2}``.
    ops: dict[str, int]


def _is_attribute_node(instance: Instance, vertex: int, cache: dict[int, bool]) -> bool:
    """True for the synthetic ``@name`` children of ``attributes="nodes"`` mode."""
    known = cache.get(vertex)
    if known is None:
        known = any(name.startswith("@") for name in instance.sets_at(vertex))
        cache[vertex] = known
    return known


def _locate_child(
    instance: Instance,
    parent: int,
    ordinal: int,
    attr_cache: dict[int, bool],
    path_so_far: Sequence[int],
) -> tuple[int, int, int]:
    """Find element child ``ordinal`` of ``parent`` in its run-length edges.

    Returns ``(entry_index, occurrence_within_entry, child_vertex)``.
    Attribute nodes do not consume ordinals, matching the text-side count.
    """
    remaining = ordinal
    for index, (child, count) in enumerate(instance.children(parent)):
        if _is_attribute_node(instance, child, attr_cache):
            continue
        if remaining < count:
            return index, remaining, child
        remaining -= count
    raise MutationError(
        f"path {list(path_so_far)} addresses no element in the document "
        f"(ordinal {ordinal} is past the last element child)"
    )


def _replace_occurrence(
    instance: Instance, parent: int, index: int, occurrence: int, replacement: int
) -> None:
    """Swap one tree occurrence inside run-length entry ``index`` of ``parent``.

    The run ``(c, n)`` splits into ``(c, occurrence), (replacement, 1),
    (c, n - occurrence - 1)``; ``set_children`` normalizes away the empty
    halves and re-merges adjacent equal runs.
    """
    edges = instance.children(parent)
    child, count = edges[index]
    patched = (
        edges[:index]
        + ((child, occurrence), (replacement, 1), (child, count - occurrence - 1))
        + edges[index + 1 :]
    )
    instance.set_children(parent, patched)


def _remove_occurrence(instance: Instance, parent: int, index: int, occurrence: int) -> None:
    """Delete one tree occurrence inside run-length entry ``index`` of ``parent``."""
    edges = instance.children(parent)
    child, count = edges[index]
    patched = (
        edges[:index]
        + ((child, occurrence), (child, count - occurrence - 1))
        + edges[index + 1 :]
    )
    instance.set_children(parent, patched)


def _privatize(instance: Instance, parent: int, index: int, occurrence: int) -> int:
    """Give the addressed occurrence its own copy of the child vertex."""
    child = instance.children(parent)[index][0]
    private = instance.new_vertex_masked(instance.mask(child), instance.children(child))
    _replace_occurrence(instance, parent, index, occurrence, private)
    return private


def _graft(host: Instance, xml: str, attributes: str) -> int:
    """Shred ``xml`` and copy it into ``host``; returns its root-element vertex.

    Only the fragment is parsed.  Its set bits are remapped into the host
    schema (new tags get fresh sets — they simply read as empty for older
    stats snapshots), its vertices are appended postorder so children exist
    before parents, and the fragment's virtual document root is dropped.
    """
    try:
        fragment = load(xml, tags=None, attributes=attributes).instance
    except XMLSyntaxError as error:
        raise MutationError(f"mutation fragment is not well-formed XML: {error}") from None
    bit_map = [host.ensure_set(name) for name in fragment.schema]
    rows = fragment.row_masks()
    mapping: dict[int, int] = {}
    for vertex in fragment.postorder():
        if vertex == fragment.root:
            continue
        mask = rows[vertex]
        remapped = 0
        bit = 0
        while mask:
            if mask & 1:
                remapped |= 1 << bit_map[bit]
            mask >>= 1
            bit += 1
        mapping[vertex] = host.new_vertex_masked(
            remapped,
            normalize_edges(
                (mapping[child], count) for child, count in fragment.children(vertex)
            ),
        )
    (element, _count), = fragment.children(fragment.root)
    return mapping[element]


def _apply_one(
    instance: Instance, mutation: Mutation, attributes: str, attr_cache: dict[int, bool]
) -> None:
    """Apply one mutation to the (scratch) instance via spine privatization."""
    steps = (0,) + mutation.path  # first step: document root -> root element
    if mutation.op == "append_child":
        spine_steps, final = steps, None
    else:
        spine_steps, final = steps[:-1], steps[-1]
    parent = instance.root
    for depth, ordinal in enumerate(spine_steps):
        index, occurrence, _child = _locate_child(
            instance, parent, ordinal, attr_cache, steps[1 : depth + 1]
        )
        parent = _privatize(instance, parent, index, occurrence)
    if mutation.op == "append_child":
        grafted = _graft(instance, mutation.xml or "", attributes)
        instance.set_children(parent, instance.children(parent) + ((grafted, 1),))
        return
    index, occurrence, _child = _locate_child(
        instance, parent, final, attr_cache, mutation.path
    )
    if mutation.op == "delete_subtree":
        _remove_occurrence(instance, parent, index, occurrence)
        return
    grafted = _graft(instance, mutation.xml or "", attributes)
    _replace_occurrence(instance, parent, index, occurrence, grafted)


def _patched_chars(
    old_stats: DocumentStats | None,
    new_text: str,
    removed: Counter,
    inserted: Counter,
) -> dict[str, int]:
    """Adjust the character sketch by the spliced substrings.

    Falls back to a full scan when there is no prior sketch to patch (the
    sketch is then exact regardless of the document's alphabet size).
    """
    if old_stats is None or not old_stats.total_chars:
        return dict(Counter(new_text).most_common(_SKETCH_CHARS))
    counts = Counter(old_stats.chars)
    counts.update(inserted)
    counts.subtract(removed)
    return dict(
        Counter({char: n for char, n in counts.items() if n > 0}).most_common(
            _SKETCH_CHARS
        )
    )


def apply_mutations(
    instance: Instance,
    text: str,
    mutations: Iterable,
    attributes: str = "ignore",
    old_stats: DocumentStats | None = None,
) -> MutationOutcome:
    """Apply a validated mutation batch to a document's instance and text.

    ``instance`` must be the document's master skeleton (shredded over every
    tag, no string or temp sets — exactly what the catalog stores); it is
    not modified — the work happens on a scratch copy and the returned
    instance is the re-minimized result.  ``attributes`` must match the
    mode the document was registered with, so fragment shredding and path
    addressing agree with the original load.  Each mutation's path is
    interpreted against the *current* state, i.e. after the preceding
    mutations in the batch.

    Raises :class:`MutationError` (nothing useful was produced — callers
    publish nothing) on invalid specs, unreachable paths, or malformed
    fragments.
    """
    batch = as_mutations(mutations if not isinstance(mutations, Mutation) else [mutations])
    started = time.perf_counter()
    scratch = instance.copy()
    attr_cache: dict[int, bool] = {}
    removed_chars: Counter = Counter()
    inserted_chars: Counter = Counter()
    ops: dict[str, int] = {}
    for mutation in batch:
        # Text first: locate() validates the path against the authoritative
        # text before the DAG is touched, keeping both sides in lockstep.
        text, removed, inserted = splice(text, mutation)
        removed_chars.update(removed)
        inserted_chars.update(inserted)
        _apply_one(scratch, mutation, attributes, attr_cache)
        ops[mutation.op] = ops.get(mutation.op, 0) + 1
    minimized = minimize(scratch)
    stats = dataclasses.replace(
        DocumentStats.from_instance(minimized, text=None, complete_tags=True),
        chars=_patched_chars(old_stats, text, removed_chars, inserted_chars),
        total_chars=len(text),
    )
    return MutationOutcome(
        instance=minimized,
        text=text,
        stats=stats,
        seconds=time.perf_counter() - started,
        applied=len(batch),
        ops=ops,
    )

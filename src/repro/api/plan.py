"""Structured query plans: the JSON-able view of a compiled algebra tree.

``Engine.explain`` renders the Figure 3 algebra tree as ASCII; every other
surface (the CLI's ``explain --json``, ``repro query --explain-json``, the
HTTP ``/explain`` route) needs the *same* tree as data.  A :class:`Plan`
wraps one compiled query: the per-node operator tree, the schema the query
requires (tags and string-containment needles — exactly what the one-scan
loader extracts), the upward-only flag of Corollary 3.7, and — when a
:class:`repro.api.Database` or a query service produced the plan — where
the instance answering it would come from (engine schema cache, pool
residency, worker shard).

The ASCII rendering of :meth:`Plan.render` is byte-identical to
``AlgebraExpr.render`` for unannotated plans, so the human-facing
``repro explain`` output did not change when it moved onto this structure;
annotated nodes append a bracketed suffix per node.

**The explain output contract** (``Plan.to_dict()`` — stable JSON shape,
documented in README "Explain output contract"):

.. code-block:: text

    {
      "query":        str | null,
      "nodes":        int,                     # operator count |Q|
      "upward_only":  bool,                    # Corollary 3.7
      "required":     {"tags": [str], "strings": [str]},
      "algebra":      <node>,                  # the plan evaluation runs
      "instance":     {...}?,                  # provenance (surface-specific)
      "optimizer": {                           # present iff an optimizer ran
        "optimized":        bool,              # did any rewrite fire
        "stats_available":  bool,              # statistics catalog found
        "rules_applied":    [str],             # distinct rule tags, fire order
        "unoptimized":      <node>?            # original tree, iff optimized
      }?
    }

    <node> = {
      "op":             "axis" | "named-set" | "union" | "intersect" |
                        "difference" | "root-filter" | "root-set" |
                        "all-nodes" | "context" | "empty-set",
      "axis":           str?,                  # op == "axis" only
      "set":            str?,                  # op == "named-set" only
      "est_cardinality": number?,              # estimated result tree nodes
      "rules":          [str]?,                # rewrite rules that made it
      "actual":         {"dag_count": int, "tree_count": int}?,  # analyze
      "children":       [<node>]?
    }

``est_cardinality`` is present on every node when a statistics catalog was
available (estimates are in tree-node units, the model documented in
docs/optimizer.md); ``actual`` is present only for ``explain`` in analyze
mode, where the plan was executed and per-node selection cardinalities
measured — estimated vs. actual on the same node is the estimation-error
view.  Nodes skipped by runtime short-circuiting carry no ``actual``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    EmptySet,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    uses_only_upward_axes,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xpath.optimizer import OptimizationResult

#: Operator names used in plan JSON, keyed by algebra node class.
_OPS = {
    RootSet: "root-set",
    AllNodes: "all-nodes",
    ContextSet: "context",
    EmptySet: "empty-set",
    NamedSet: "named-set",
    AxisApply: "axis",
    Union: "union",
    Intersect: "intersect",
    Difference: "difference",
    RootFilter: "root-filter",
}


@dataclass(frozen=True)
class PlanNode:
    """One operator of the plan tree (a mirror of one algebra node)."""

    #: Operator name: ``axis``, ``named-set``, ``union``, ... (see ``_OPS``).
    op: str
    #: ASCII label, identical to ``AlgebraExpr.label()`` (drives rendering).
    label: str
    #: The axis applied (``op == "axis"`` only).
    axis: str | None = None
    #: The schema set read (``op == "named-set"`` only).
    set_name: str | None = None
    children: tuple["PlanNode", ...] = ()
    #: Estimated result cardinality in tree nodes (statistics available).
    est_cardinality: float | None = None
    #: Optimizer rules that produced this node (empty for compiler output).
    rules: tuple[str, ...] = ()
    #: Measured ``{"dag_count", "tree_count"}`` (explain analyze mode only).
    actual: dict | None = None

    def to_dict(self) -> dict:
        node: dict = {"op": self.op}
        if self.axis is not None:
            node["axis"] = self.axis
        if self.set_name is not None:
            node["set"] = self.set_name
        if self.est_cardinality is not None:
            node["est_cardinality"] = self.est_cardinality
        if self.rules:
            node["rules"] = list(self.rules)
        if self.actual is not None:
            node["actual"] = self.actual
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def render(self, indent: str = "") -> str:
        suffix = self._annotation_suffix()
        lines = [indent + self.label + suffix]
        for child in self.children:
            lines.append(child.render(indent + "    "))
        return "\n".join(lines)

    def _annotation_suffix(self) -> str:
        """``  [est=…, actual=…, rules=…]`` — empty for unannotated nodes,
        keeping unoptimized renderings byte-identical to the algebra's."""
        parts = []
        if self.est_cardinality is not None:
            parts.append(f"est={self.est_cardinality:g}")
        if self.actual is not None:
            parts.append(f"actual={self.actual.get('tree_count')}")
        if self.rules:
            parts.append("rules=" + "+".join(self.rules))
        return f"  [{', '.join(parts)}]" if parts else ""

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def _node_from_expr(
    expr: AlgebraExpr,
    estimates: dict[int, float] | None = None,
    rules: dict[int, tuple[str, ...]] | None = None,
    actuals: dict[int, dict] | None = None,
) -> PlanNode:
    op = _OPS.get(type(expr))
    if op is None:  # pragma: no cover - future algebra nodes
        op = type(expr).__name__.lower()
    return PlanNode(
        op=op,
        label=expr.label(),
        axis=expr.axis if isinstance(expr, AxisApply) else None,
        set_name=expr.name if isinstance(expr, NamedSet) else None,
        children=tuple(
            _node_from_expr(child, estimates, rules, actuals)
            for child in expr.children()
        ),
        est_cardinality=estimates.get(id(expr)) if estimates else None,
        rules=rules.get(id(expr), ()) if rules else (),
        actual=actuals.get(id(expr)) if actuals else None,
    )


@dataclass
class Plan:
    """A compiled query as structured data (one per :class:`PreparedQuery`).

    ``instance`` is optional provenance describing where the answering
    instance would come from; it is attached by whichever surface produced
    the plan (embedded engine cache state, pool residency for a served
    document, shard id under a worker fleet) and is ``None`` for a plan of
    a bare query text.

    ``optimizer`` is present when a cost-based optimization pass ran (see
    the module doc for its shape); ``root`` is then the tree evaluation
    actually runs — the *optimized* one — with per-node
    ``est_cardinality`` / ``rules`` annotations, and the unrewritten tree
    is kept under ``optimizer["unoptimized"]`` when any rule fired.
    """

    query: str | None
    root: PlanNode
    required_tags: tuple[str, ...]
    required_strings: tuple[str, ...]
    upward_only: bool
    #: Where the instance answering this plan would come from (see class doc).
    instance: dict | None = field(default=None)
    #: Optimizer metadata (see the module-doc contract); ``None`` = no pass.
    optimizer: dict | None = field(default=None)

    @classmethod
    def from_compiled(
        cls,
        query_text: str | None,
        expr: AlgebraExpr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
        optimization: "OptimizationResult | None" = None,
        actuals: dict[int, dict] | None = None,
    ) -> "Plan":
        """Build a plan from an already-compiled query (no re-parse).

        With ``optimization`` the plan describes the *optimized* tree and
        carries the optimizer block; ``actuals`` (``id(node) -> counts``
        measured after execution) fills each node's ``actual`` field.
        """
        if optimization is None:
            return cls(
                query=query_text,
                root=_node_from_expr(expr, actuals=actuals),
                required_tags=tuple(tags),
                required_strings=tuple(strings),
                upward_only=uses_only_upward_axes(expr),
            )
        optimizer: dict = {
            "optimized": optimization.optimized,
            "stats_available": optimization.stats_available,
            "rules_applied": list(optimization.rules_applied),
        }
        if optimization.optimized:
            optimizer["unoptimized"] = _node_from_expr(optimization.original).to_dict()
        return cls(
            query=query_text,
            root=_node_from_expr(
                optimization.expr,
                estimates=optimization.estimates or None,
                rules=optimization.rules or None,
                actuals=actuals,
            ),
            required_tags=tuple(tags),
            required_strings=tuple(strings),
            upward_only=uses_only_upward_axes(optimization.expr),
            optimizer=optimizer,
        )

    @classmethod
    def from_query(cls, query_text: str) -> "Plan":
        """Parse + compile ``query_text`` and build its plan."""
        from repro.xpath.compiler import compile_query, required_strings, required_tags
        from repro.xpath.parser import parse_query

        ast = parse_query(query_text)
        return cls.from_compiled(
            query_text,
            compile_query(ast),
            tuple(sorted(required_tags(ast))),
            tuple(sorted(required_strings(ast))),
        )

    def size(self) -> int:
        """Number of operator nodes — the |Q| of Theorem 3.6."""
        return self.root.size()

    def render(self) -> str:
        """The ASCII tree (byte-identical to ``AlgebraExpr.render`` when
        unannotated; annotated nodes gain a bracketed suffix)."""
        return self.root.render()

    def to_dict(self) -> dict:
        plan: dict = {
            "query": self.query,
            "nodes": self.size(),
            "upward_only": self.upward_only,
            "required": {
                "tags": list(self.required_tags),
                "strings": list(self.required_strings),
            },
            "algebra": self.root.to_dict(),
        }
        if self.instance is not None:
            plan["instance"] = self.instance
        if self.optimizer is not None:
            plan["optimizer"] = self.optimizer
        return plan

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, ensure_ascii=False)

    def __str__(self) -> str:
        return self.render()

"""Lemma 2.7: common extensions cost time linear in their output.

The product construction merges two compatible instances (e.g. the result
of a structural subquery and a fresh string-constraint labeling).  We
measure (a) merge time against output size across a sweep of labelings that
shatter progressively more sharing, and (b) the paper's remark that the
output is at worst the uncompressed tree.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import fmt_int, format_table
from repro.compress.common_extension import common_extension
from repro.compress.minimize import minimize
from repro.corpora.relational import generate_xml
from repro.model.instance import tree_instance
from repro.model.paths import tree_size
from repro.skeleton.loader import load_instance

from conftest import register_report

_ROWS = []


def labeled_variant(xml: str, marks: int):
    """The same document with ``marks`` random rows' first columns marked.

    Random (rather than periodic) marking breaks the table's multiplicity
    run into ~2*marks segments, so the labeled instance — and therefore the
    merge output — grows with ``marks``.
    """
    import random

    instance = load_instance(xml, tags=None)
    from repro.compress.decompress import decompress

    tree = decompress(instance).tree
    tree.ensure_set("marked")
    rows = sorted(tree.members("row"))
    rng = random.Random(42)
    for row in rng.sample(rows, marks):
        first_col = tree.children(row)[0][0]
        tree.add_to_set(first_col, "marked")
    return minimize(tree)


@pytest.mark.parametrize("marks", [1, 16, 128])
def test_merge_time_tracks_output_size(benchmark, marks):
    xml = generate_xml(512, 6).xml
    base = load_instance(xml, tags=None)
    variant = labeled_variant(xml, marks)

    merged = benchmark(lambda: common_extension(base, variant))
    _ROWS.append(
        [
            marks,
            fmt_int(base.num_edge_entries),
            fmt_int(variant.num_edge_entries),
            fmt_int(merged.num_edge_entries),
        ]
    )
    # Output bounded by the uncompressed tree.
    assert len(merged.preorder()) <= tree_size(base)
    # The merged instance carries both labelings.
    assert merged.has_set("marked")
    assert merged.has_set("row")


def test_merge_of_identical_is_identity_sized(benchmark):
    xml = generate_xml(256, 6).xml
    instance = load_instance(xml, tags=None)
    merged = benchmark(lambda: common_extension(instance, instance))
    assert len(merged.preorder()) == len(instance.preorder())


def test_worst_case_is_tree_sized():
    """Orthogonal labelings force the output towards the tree (quadratic in
    the compressed inputs, linear in the output — the Lemma's fine print)."""
    leaves = 256
    spec = ("r", [("x", [])] * leaves)
    odd = tree_instance(spec)
    odd.ensure_set("odd")
    for index, leaf in enumerate(sorted(odd.members("x"))):
        if index % 2:
            odd.add_to_set(leaf, "odd")
    third = tree_instance(spec)
    third.ensure_set("third")
    for index, leaf in enumerate(sorted(third.members("x"))):
        if index % 3 == 0:
            third.add_to_set(leaf, "third")
    merged = common_extension(minimize(odd), minimize(third))
    assert len(merged.preorder()) <= leaves + 1


def _report():
    if not _ROWS:
        return None
    return format_table(
        ["random marks", "|E| base", "|E| labeled", "|E| merged"],
        _ROWS,
        title="Lemma 2.7 — common extension size as labelings shatter sharing",
    )


register_report(_report)

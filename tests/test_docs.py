"""Docs lint: the README's claims about other files must stay true.

CI runs this as its own step (separate from the code lint) so a doc
drifting out of sync fails with a readable assertion instead of a 404
for the next reader:

* every ``DESIGN.md section N`` reference in README resolves against an
  actual ``## N.`` header in DESIGN.md;
* every path in the README's "Architecture at a glance" table exists on
  disk, and its section column names a real DESIGN.md section;
* the documents the README links by name (DESIGN.md, ROADMAP.md,
  docs/optimizer.md) exist, and docs/optimizer.md's own module
  references point at real files.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
README = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
DESIGN = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")

DESIGN_SECTIONS = {
    int(number) for number in re.findall(r"^## (\d+)\.", DESIGN, flags=re.MULTILINE)
}


def test_design_has_contiguous_sections():
    assert DESIGN_SECTIONS == set(range(1, max(DESIGN_SECTIONS) + 1))


def test_readme_design_section_references_resolve():
    references = re.findall(r"DESIGN\.md section (\d+)", README)
    assert references, "README should anchor into DESIGN.md by section"
    for number in references:
        assert int(number) in DESIGN_SECTIONS, (
            f"README references DESIGN.md section {number}, "
            f"but DESIGN.md only has {sorted(DESIGN_SECTIONS)}"
        )


def _architecture_rows() -> list[tuple[str, str]]:
    """(path, sections-cell) pairs from the architecture-at-a-glance table."""
    rows = re.findall(r"^\| `([^`]+)` \| [^|]+ \| ([^|]+) \|$", README, flags=re.MULTILINE)
    return [(path, cell.strip()) for path, cell in rows if cell.strip() != "DESIGN.md"]


def test_architecture_map_paths_exist():
    rows = _architecture_rows()
    assert len(rows) >= 10, "architecture map table went missing or changed shape"
    for path, _ in rows:
        assert (REPO_ROOT / path).exists(), f"architecture map names missing path {path}"


def test_architecture_map_sections_resolve():
    for path, cell in _architecture_rows():
        numbers = re.findall(r"section (\d+)", cell)
        assert numbers, f"row for {path} has no DESIGN.md section"
        for number in numbers:
            assert int(number) in DESIGN_SECTIONS, (
                f"row for {path} cites DESIGN.md section {number}, which does not exist"
            )


def test_cross_cutting_paragraph_covers_remaining_sections():
    # Every DESIGN.md section should be reachable from the README map
    # (table rows plus the cross-cutting paragraph beneath it).
    cited = {int(number) for number in re.findall(r"section (\d+)", README)}
    missing = DESIGN_SECTIONS - cited
    assert not missing, f"DESIGN.md sections unreachable from README: {sorted(missing)}"


def test_linked_documents_exist():
    for relative in ("DESIGN.md", "ROADMAP.md", "docs/optimizer.md", "CHANGES.md"):
        assert (REPO_ROOT / relative).exists(), f"{relative} referenced but missing"


def test_optimizer_doc_module_references_exist():
    text = (REPO_ROOT / "docs" / "optimizer.md").read_text(encoding="utf-8")
    paths = re.findall(r"`((?:src|tests|benchmarks)/[\w/]+\.py)`", text)
    assert paths, "docs/optimizer.md should cite its implementing modules"
    for path in paths:
        assert (REPO_ROOT / path).exists(), f"docs/optimizer.md cites missing {path}"


def test_optimizer_doc_dotted_modules_import_paths_exist():
    text = (REPO_ROOT / "docs" / "optimizer.md").read_text(encoding="utf-8")
    for dotted in re.findall(r"`(repro\.[\w.]+)\.[A-Z]\w*`", text) + re.findall(
        r":mod:`(repro\.[\w.]+)`", text
    ):
        module_path = REPO_ROOT / "src" / Path(*dotted.split("."))
        assert module_path.with_suffix(".py").exists() or module_path.is_dir(), (
            f"docs/optimizer.md cites module {dotted}, which does not exist under src/"
        )


def test_readme_mentions_frontend_flag():
    assert "--frontend {async,threaded}" in README
    assert "--frontend async" in README

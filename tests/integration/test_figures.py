"""Integration tests: the figure harness end-to-end at tiny scale.

These run the exact code paths the benchmarks use — corpus generation,
Figure 6 and Figure 7 rows, Figure 5 queries — and assert the paper's
structural claims, so the reproduction's shape is enforced by ``pytest
tests/`` alone (benchmarks add timing on top).
"""

import pytest

from repro.bench.harness import figure6_row, figure7_row
from repro.bench.queries import QUERY_IDS
from repro.corpora import generate
from repro.corpora.binary_tree import FIGURE5_QUERIES, compressed_instance
from repro.corpora.registry import QUERY_CORPORA
from repro.engine.evaluator import CompressedEvaluator

SCALES = {
    "swissprot": 40,
    "dblp": 80,
    "treebank": 40,
    "omim": 40,
    "xmark": 48,
    "shakespeare": 12,
    "baseball": 6,
    "tpcd": 30,
}


@pytest.fixture(scope="module")
def xml_cache():
    cache = {}

    def get(name):
        if name not in cache:
            cache[name] = generate(name, SCALES[name], seed=3).xml
        return cache[name]

    return get


class TestFigure6Rows:
    @pytest.mark.parametrize("corpus", sorted(SCALES))
    def test_row_is_sane(self, xml_cache, corpus):
        row = figure6_row(corpus, xml_cache(corpus))
        assert row.tree_vertices > 100
        assert 0 < row.ratio_minus <= row.ratio_plus <= 1.0
        assert row.vertices_minus <= row.vertices_plus
        # The "+" instance always carries at least the document-root set.
        assert row.edges_plus >= row.edges_minus


class TestFigure7Rows:
    @pytest.mark.parametrize("corpus", QUERY_CORPORA)
    def test_all_queries_run(self, xml_cache, corpus):
        for query_id in QUERY_IDS:
            row = figure7_row(corpus, xml_cache(corpus), query_id)
            assert row.selected_tree >= 1
            assert row.selected_dag <= row.selected_tree
            assert row.vertices_after >= row.vertices_before or query_id == "Q1"

    @pytest.mark.parametrize("corpus", QUERY_CORPORA)
    def test_q1_never_decompresses(self, xml_cache, corpus):
        row = figure7_row(corpus, xml_cache(corpus), "Q1")
        assert (row.vertices_before, row.edges_before) == (
            row.vertices_after,
            row.edges_after,
        )
        assert row.selected_dag == row.selected_tree == 1

    def test_inplace_axes_give_same_counts(self, xml_cache):
        for corpus in ("dblp", "baseball"):
            for query_id in QUERY_IDS:
                functional = figure7_row(corpus, xml_cache(corpus), query_id)
                inplace = figure7_row(corpus, xml_cache(corpus), query_id, axes="inplace")
                assert functional.selected_tree == inplace.selected_tree
                assert functional.selected_dag == inplace.selected_dag


class TestFigure5:
    def test_all_queries_select(self):
        instance = compressed_instance(5)
        for figure_id, query in FIGURE5_QUERIES:
            result = CompressedEvaluator(instance).evaluate(query)
            assert result.tree_count() >= 1, f"figure 5 ({figure_id})"

    def test_depth5_sizes_match_experiments_md(self):
        # The EXPERIMENTS.md Figure 5 table, pinned.
        expected = {
            "//a": (11, 5, 31),
            "//a/b": (19, 4, 15),
            "a": (11, 1, 1),
            "a/a": (13, 1, 1),
            "a/a/b": (15, 1, 1),
            "*": (11, 2, 2),
            "*/a": (11, 1, 2),
            "*/a/following::*": (19, 10, 46),
        }
        for _, query in FIGURE5_QUERIES:
            result = CompressedEvaluator(compressed_instance(5)).evaluate(query)
            after_v, _ = result.after
            assert (
                after_v,
                result.dag_count(),
                result.tree_count(),
            ) == expected[query], query

    def test_astronomical_tree(self):
        instance = compressed_instance(80)
        result = CompressedEvaluator(instance).evaluate("//a/b")
        # b nodes with an 'a' parent, exactly counted on a 2^81-1 node tree.
        assert result.tree_count() > 2**78

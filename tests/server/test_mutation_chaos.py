"""Chaos scenarios for the mutation write path.

The durability contract under attack: a crash **anywhere** between the
journal append and the manifest publish leaves the catalog either fully
at the old version or — after the writer's startup replay — fully at
the new one.  Never a torn middle state, never a half-visible document.
"""

import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.errors import IntegrityError
from repro.mutation.textedit import splice
from repro.mutation.ops import Mutation
from repro.server.catalog import Catalog
from repro.server.resilience import FAULTS
from repro.server.service import QueryService

from tests.skeleton.test_loader import BIB_XML

pytestmark = pytest.mark.chaos

APPEND_BOOK = {
    "op": "append_child",
    "path": [],
    "xml": "<book><title>New</title><author>Crash</author></book>",
}

EDITED_XML = splice(BIB_XML, Mutation.from_dict(APPEND_BOOK))[0]


@pytest.fixture(autouse=True)
def disarmed_faults():
    FAULTS.disarm()
    yield
    FAULTS.disarm()


def test_crash_between_append_and_publish_recovers_on_replay(tmp_path):
    """SIGKILL at the commit point: the journaled intent replays to v2."""
    root = str(tmp_path / "cat")
    Catalog(root).add("bib", BIB_XML)
    script = textwrap.dedent(
        """
        import json, os, signal, sys
        from repro.server.catalog import Catalog
        from repro.server.resilience import FAULTS

        def die(**context):
            if context.get("op") == "commit":
                os.kill(os.getpid(), signal.SIGKILL)

        FAULTS.arm("catalog.journal", callback=die)
        catalog = Catalog(sys.argv[1], journal_replay=False)
        catalog.mutate("bib", json.loads(sys.argv[2]))
        raise SystemExit("mutate survived a SIGKILL at the commit point")
        """
    )
    process = subprocess.run(
        [sys.executable, "-c", script, root, f"[{__import__('json').dumps(APPEND_BOOK)}]"],
        env={**os.environ, "PYTHONPATH": "src"},
        capture_output=True,
        timeout=120,
    )
    assert process.returncode == -signal.SIGKILL, process.stderr.decode()

    # The manifest still names v1; the intent is journaled, not published.
    reader = Catalog(root, journal_replay=False)
    assert reader.entry("bib").doc_version == 1
    assert reader.xml("bib") == BIB_XML

    # The next writer replays the journal and finishes the publish.
    writer = Catalog(root)
    assert writer.last_replay["bib"]["replayed"] == [2]
    assert writer.entry("bib").doc_version == 2
    assert writer.xml("bib") == EDITED_XML
    service = QueryService(writer)
    try:
        assert service.query("bib", "//author")["tree_count"] == 6
    finally:
        service.close()


def test_crash_during_journal_append_changes_nothing(tmp_path):
    """A torn WAL frame (crash mid-append) is truncated; v1 stands."""
    root = str(tmp_path / "cat")
    catalog = Catalog(root)
    catalog.add("bib", BIB_XML)
    journal_path = os.path.join(root, "bib", "journal.wal")
    with open(journal_path, "w", encoding="utf-8") as handle:
        frame_start = "00" * 16 + ' {"name": "bib", "base_version": 1'
        handle.write(frame_start)  # no newline: the crash point

    writer = Catalog(root)
    assert writer.last_replay["bib"]["torn_truncated"]
    assert not writer.last_replay["bib"]["replayed"]
    assert writer.entry("bib").doc_version == 1
    assert writer.xml("bib") == BIB_XML
    assert not os.path.exists(journal_path)  # truncated-to-empty is removed


def test_injected_error_at_commit_is_atomic_and_replayable(tmp_path):
    """An in-process failure at the commit point rolls back, then replays."""
    root = str(tmp_path / "cat")
    catalog = Catalog(root)
    catalog.add("bib", BIB_XML)

    def boom(**context):
        if context.get("op") == "commit":
            raise IntegrityError("injected: disk died at the commit point")

    FAULTS.arm("catalog.journal", callback=boom)
    with pytest.raises(IntegrityError):
        catalog.mutate("bib", [APPEND_BOOK])
    FAULTS.disarm()

    # This writer's in-memory view still serves v1 consistently.
    assert catalog.entry("bib").doc_version == 1
    assert catalog.xml("bib") == BIB_XML

    # A restarted writer replays the journaled intent to completion.
    writer = Catalog(root)
    assert writer.last_replay["bib"]["replayed"] == [2]
    assert writer.xml("bib") == EDITED_XML


def test_stray_version_directory_is_swept(tmp_path):
    """A crashed publish's half-renamed v<N> dir is garbage-collected."""
    root = str(tmp_path / "cat")
    catalog = Catalog(root)
    catalog.add("bib", BIB_XML)
    stray = os.path.join(root, "bib", "v7")
    os.makedirs(stray)
    with open(os.path.join(stray, "document.xml"), "w") as handle:
        handle.write("<half/>")

    writer = Catalog(root)
    assert writer.last_replay["bib"]["stray_versions_swept"] == ["v7"]
    assert not os.path.exists(stray)
    assert writer.xml("bib") == BIB_XML

"""Common extensions of compatible instances (section 2.3, Lemma 2.7).

Two instances over schemas sigma and tau that agree on their shared reduct
can be merged into one instance over sigma union tau carrying both labelings.
The construction is the product construction for finite automata, built
lazily over the *reachable* pairs only, so it runs in time linear in the size
of its output (which is at worst the size of the uncompressed tree, and in
the pathological case quadratic in the inputs).

The result is the least upper bound of the two inputs in the bisimilarity
lattice of their common tree version.
"""

from __future__ import annotations

from repro.errors import IncompatibleInstancesError
from repro.model.instance import Edge, Instance


def _merged_runs(a: tuple[Edge, ...], b: tuple[Edge, ...], where: str):
    """Zip two run-length child sequences position-wise into pair runs.

    Yields ``(child_a, child_b, count)``.  Raises if the expanded lengths
    differ — that means the instances are not compatible.
    """
    ia = ib = 0
    remaining_a = remaining_b = 0
    child_a = child_b = -1
    while True:
        if remaining_a == 0:
            if ia < len(a):
                child_a, remaining_a = a[ia]
                ia += 1
        if remaining_b == 0:
            if ib < len(b):
                child_b, remaining_b = b[ib]
                ib += 1
        if remaining_a == 0 and remaining_b == 0:
            return
        if remaining_a == 0 or remaining_b == 0:
            raise IncompatibleInstancesError(
                f"child sequences of different lengths at {where}"
            )
        step = min(remaining_a, remaining_b)
        yield child_a, child_b, step
        remaining_a -= step
        remaining_b -= step


def common_extension(a: Instance, b: Instance) -> Instance:
    """Merge two compatible instances into one over the union schema.

    Shared sets are verified to agree on every aligned vertex pair; a
    disagreement raises :class:`IncompatibleInstancesError` (this makes the
    compatibility requirement of section 2.3 self-checking rather than a
    silent precondition).
    """
    shared = sorted(set(a.schema) & set(b.schema))
    only_b = [name for name in b.schema if name not in set(a.schema)]
    # Result schema = a's schema followed by b's extras, so a-masks carry
    # over unchanged and only b's extra bits need remapping.
    result = Instance(tuple(a.schema) + tuple(only_b))
    bits_b_extra = [(result.bit_of(name), b.bit_of(name)) for name in only_b]
    bits_shared = [(a.bit_of(name), b.bit_of(name), name) for name in shared]
    rows_a = a.row_masks()
    rows_b = b.row_masks()

    built: dict[tuple[int, int], int] = {}
    # Iterative postorder over pairs: build children before parents.
    stack: list[tuple[int, int, bool]] = [(a.root, b.root, False)]
    while stack:
        va, vb, expanded = stack.pop()
        pair = (va, vb)
        if pair in built:
            continue
        if not expanded:
            stack.append((va, vb, True))
            for ca, cb, _ in _merged_runs(a.children(va), b.children(vb), f"pair {pair}"):
                if (ca, cb) not in built:
                    stack.append((ca, cb, False))
            continue
        mask = rows_a[va]
        mask_b = rows_b[vb]
        for bit_a, bit_b, name in bits_shared:
            if (mask >> bit_a & 1) != (mask_b >> bit_b & 1):
                raise IncompatibleInstancesError(
                    f"instances disagree on shared set {name!r} at pair {pair}"
                )
        for result_bit, bit in bits_b_extra:
            if mask_b >> bit & 1:
                mask |= 1 << result_bit
        edges = [
            (built[(ca, cb)], count)
            for ca, cb, count in _merged_runs(a.children(va), b.children(vb), f"pair {pair}")
        ]
        built[pair] = result.new_vertex_masked(mask, _normalize(edges))
    result.set_root(built[(a.root, b.root)])
    return result


def _normalize(edges: list[Edge]) -> tuple[Edge, ...]:
    out: list[Edge] = []
    for child, count in edges:
        if out and out[-1][0] == child:
            out[-1] = (child, out[-1][1] + count)
        else:
            out.append((child, count))
    return tuple(out)

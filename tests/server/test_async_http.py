"""Async front-end specifics: framing, keep-alive, drain, byte-identity.

The shared route core is exercised on both transports by
``test_http.py``'s parametrized fixture; this module covers what only
the asyncio transport owns — HTTP/1.1 framing edge cases the stdlib
handler used to absorb, graceful drain under load, and the differential
check that both front-ends emit byte-identical bodies for the same
requests (the CI smoke's oracle, in miniature).
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.server.asyncio_http import AsyncReproHTTPServer
from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready

from tests.skeleton.test_loader import BIB_XML


@pytest.fixture
def server(tmp_path):
    Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
    server = create_server(str(tmp_path / "cat"), port=0, frontend="async")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def raw_exchange(server, payload: bytes, timeout: float = 30.0) -> bytes:
    """Write raw bytes to the listening socket; read until the peer closes."""
    host, port = server.server_address[:2]
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)


class TestFraming:
    def test_malformed_request_line_gets_envelope_and_close(self, server):
        response = raw_exchange(server, b"NONSENSE\r\n\r\n")
        head, _, body = response.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 400 ")
        assert b"Connection: close" in head
        envelope = json.loads(body)
        assert envelope["error"]["kind"] == "bad-request"
        assert "malformed request line" in envelope["error"]["message"]

    def test_non_integer_content_length_is_400(self, server):
        response = raw_exchange(
            server,
            b"POST /query HTTP/1.1\r\nContent-Length: lots\r\n\r\n",
        )
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"Content-Length must be an integer" in response

    def test_oversized_content_length_is_413_without_reading(self, server):
        from repro.server.routes import MAX_BODY

        # Announce a body far over the cap but send none of it: the
        # refusal must come from the header alone.
        response = raw_exchange(
            server,
            f"POST /query HTTP/1.1\r\nContent-Length: {MAX_BODY + 1}\r\n\r\n".encode(),
        )
        assert response.startswith(b"HTTP/1.1 413 ")
        envelope = json.loads(response.partition(b"\r\n\r\n")[2])
        assert envelope["error"]["kind"] == "payload-too-large"

    def test_header_without_colon_is_400(self, server):
        response = raw_exchange(
            server, b"GET /healthz HTTP/1.1\r\nBadHeader\r\n\r\n"
        )
        assert response.startswith(b"HTTP/1.1 400 ")

    def test_too_many_headers_is_400(self, server):
        headers = "".join(f"X-H{i}: {i}\r\n" for i in range(200))
        response = raw_exchange(
            server, f"GET /healthz HTTP/1.1\r\n{headers}\r\n".encode()
        )
        assert response.startswith(b"HTTP/1.1 400 ")
        assert b"too many header lines" in response

    def test_http10_connection_closes_after_response(self, server):
        response = raw_exchange(server, b"GET /healthz HTTP/1.0\r\n\r\n")
        head = response.partition(b"\r\n\r\n")[0]
        assert head.startswith(b"HTTP/1.1 200 ")
        assert b"Connection: close" in head

    def test_refusals_still_carry_a_trace_header(self, server):
        response = raw_exchange(server, b"NONSENSE\r\n\r\n")
        assert b"X-Repro-Trace: " in response.partition(b"\r\n\r\n")[0]


class TestKeepAlive:
    def test_many_requests_share_one_connection(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            for index in range(5):
                connection.request(
                    "POST", "/query",
                    json.dumps({"document": "bib", "query": "//author"}),
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                assert response.status == 200, payload
                assert payload["tree_count"] > 0
            # One connection served all five requests (keep-alive held).
            assert server.metrics.connections.value() == 1
        finally:
            connection.close()

    def test_connection_close_header_is_honored(self, server):
        response = raw_exchange(
            server, b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        assert b"Connection: close" in response.partition(b"\r\n\r\n")[0]

    def test_connection_gauge_returns_to_zero(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        connection.request("GET", "/healthz")
        connection.getresponse().read()
        connection.close()
        deadline = time.monotonic() + 10
        while server.metrics.connections.value() > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        assert server.metrics.connections.value() == 0


class TestConcurrency:
    def test_parallel_clients_are_all_served(self, server):
        failures = []

        def client(index):
            try:
                host, port = server.server_address[:2]
                connection = http.client.HTTPConnection(host, port, timeout=60)
                try:
                    connection.request(
                        "POST", "/query",
                        json.dumps({"document": "bib", "query": "//author", "paths": 5}),
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read())
                    assert response.status == 200, payload
                finally:
                    connection.close()
            except Exception as error:  # noqa: BLE001 - collected for the assert
                failures.append((index, error))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(24)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures


class TestGracefulDrain:
    def test_inflight_request_completes_through_shutdown(self, tmp_path):
        """shutdown() must let an admitted request write its response."""
        release = threading.Event()
        started = threading.Event()

        class SlowService:
            mode = "snapshot"
            catalog = ()

            def health_dict(self):
                return {"status": "ok"}

            def query(self, document, query_text, **kwargs):
                started.set()
                release.wait(timeout=30)
                return {"tree_count": 1, "document": document}

            def stats_dict(self):
                return {}

            def close(self):
                pass

        server = AsyncReproHTTPServer(("127.0.0.1", 0), SlowService(), drain_timeout=10.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address
        assert wait_ready(host, port, timeout=30)
        result = {}

        def client():
            connection = http.client.HTTPConnection(host, port, timeout=60)
            try:
                connection.request(
                    "POST", "/query", json.dumps({"document": "d", "query": "//a"})
                )
                response = connection.getresponse()
                result["status"] = response.status
                result["payload"] = json.loads(response.read())
            finally:
                connection.close()

        client_thread = threading.Thread(target=client)
        client_thread.start()
        assert started.wait(timeout=30), "request never reached the service"
        shutdown_thread = threading.Thread(target=server.shutdown)
        shutdown_thread.start()
        time.sleep(0.1)  # drain begins with the request still executing
        release.set()
        client_thread.join(timeout=60)
        shutdown_thread.join(timeout=60)
        server.server_close()
        thread.join(timeout=10)
        assert result.get("status") == 200
        assert result["payload"]["tree_count"] == 1

    def test_idle_keepalive_connection_is_cancelled_on_drain(self, tmp_path):
        Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
        server = create_server(
            str(tmp_path / "cat"), port=0, frontend="async"
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        assert wait_ready(host, port, timeout=30)
        # Park an idle keep-alive connection, then shut down: drain must
        # not wait drain_timeout for it.
        idler = http.client.HTTPConnection(host, port, timeout=30)
        idler.request("GET", "/healthz")
        idler.getresponse().read()
        begun = time.monotonic()
        server.shutdown()
        assert time.monotonic() - begun < server.drain_timeout
        idler.close()
        server.server_close()
        server.service.close()
        thread.join(timeout=10)


class TestByteIdentity:
    """Both front-ends share one route core; prove the bodies match."""

    ROUTES = [
        ("GET", "/healthz", None),
        ("GET", "/catalog", None),
        ("POST", "/query", {"document": "bib", "query": "//book/author", "paths": 10}),
        ("POST", "/query", {"document": "ghost", "query": "//a"}),
        ("POST", "/query", {"document": "bib", "query": "//a[["}),
        ("POST", "/explain", {"document": "bib", "query": "//book/author"}),
        ("GET", "/nope", None),
    ]

    #: Keys that legitimately vary run to run (wall-clock measurements and
    #: per-catalog registration stamps — each server owns its own catalog).
    VOLATILE = {"seconds", "shred_seconds", "registered_at"}

    def _scrub(self, payload):
        if isinstance(payload, dict):
            return {
                key: self._scrub(value)
                for key, value in payload.items()
                if key not in self.VOLATILE
            }
        if isinstance(payload, list):
            return [self._scrub(item) for item in payload]
        return payload

    def test_both_frontends_return_identical_bodies(self, tmp_path):
        servers, threads = {}, {}
        for frontend in ("threaded", "async"):
            catalog_dir = str(tmp_path / f"cat-{frontend}")
            Catalog(catalog_dir).add("bib", BIB_XML)
            server = create_server(catalog_dir, port=0, frontend=frontend)
            thread = threading.Thread(target=server.serve_forever, daemon=True)
            thread.start()
            host, port = server.server_address[:2]
            assert wait_ready(host, port, timeout=30)
            servers[frontend], threads[frontend] = server, thread
        try:
            for method, path, body in self.ROUTES:
                results = {}
                for frontend, server in servers.items():
                    host, port = server.server_address[:2]
                    connection = http.client.HTTPConnection(host, port, timeout=30)
                    try:
                        connection.request(
                            method, path,
                            json.dumps(body) if body is not None else None,
                            # Pin the trace so minted IDs cannot differ.
                            {"X-Repro-Trace": "0123456789abcdef"},
                        )
                        response = connection.getresponse()
                        results[frontend] = (response.status, response.read())
                    finally:
                        connection.close()
                threaded_status, threaded_body = results["threaded"]
                async_status, async_body = results["async"]
                assert async_status == threaded_status, (method, path)
                scrubbed = [
                    self._scrub(json.loads(raw))
                    for raw in (threaded_body, async_body)
                ]
                if not any(
                    f'"{key}"'.encode() in threaded_body for key in self.VOLATILE
                ):
                    # No volatile keys at all: the bodies must match byte
                    # for byte, not just structurally.
                    assert async_body == threaded_body, (method, path)
                assert scrubbed[0] == scrubbed[1], (method, path)
        finally:
            for frontend, server in servers.items():
                server.shutdown()
                server.server_close()
                server.service.close()
                threads[frontend].join(timeout=10)

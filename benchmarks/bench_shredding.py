"""Section 6's future-work claim: shredding + partial chunk residency.

A compressed instance shredded into top-level chunks can answer pruned
queries from a fraction of the chunks.  We measure assembled-instance size
and assembly time for pruned vs full loads on XMark (whose regions give a
natural 6-way shred), plus the dedup factor chunking achieves on a
record-shaped corpus.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import fmt_int, format_table
from repro.engine.evaluator import evaluate
from repro.skeleton.loader import load_instance
from repro.storage.chunked import ChunkedStore

from conftest import register_report

_ROWS = []

XMARK_QUERIES = [
    ("/site/regions/africa/item/name", "pruned to regions"),
    ("/site/people/person/name", "pruned to people"),
    ("//item", "unprunable (descendant)"),
]


@pytest.fixture(scope="module")
def xmark_store(tmp_path_factory, corpus_cache):
    instance = load_instance(corpus_cache("xmark"))
    directory = str(tmp_path_factory.mktemp("xmark-store"))
    return ChunkedStore.save(instance, directory), instance


@pytest.mark.parametrize("query,label", XMARK_QUERIES)
def test_partial_load(benchmark, xmark_store, query, label):
    store, full = xmark_store

    partial, loaded = benchmark(lambda: store.instance_for_query(query))
    expected = evaluate(full, query).tree_count()
    actual = evaluate(partial, query).tree_count()
    assert actual == expected
    _ROWS.append(
        [
            label,
            f"{loaded}/{store.num_chunks}",
            fmt_int(len(partial.preorder())),
            fmt_int(len(full.preorder())),
            fmt_int(expected),
        ]
    )
    if "unprunable" not in label:
        assert loaded < store.num_chunks


def test_chunk_dedup_on_record_corpus(tmp_path, corpus_cache):
    """DBLP-like data: thousands of records, a handful of distinct chunks."""
    instance = load_instance(corpus_cache("dblp"))
    store = ChunkedStore.save(instance, str(tmp_path / "dblp"))
    records = instance.out_degree(
        instance.children(instance.root)[0][0]
    )
    assert store.num_chunks < records / 10
    _ROWS.append(
        ["dblp chunk dedup", f"{store.num_chunks} chunks", fmt_int(records) + " records", "-", "-"]
    )


def _report():
    if not _ROWS:
        return None
    return format_table(
        ["query / corpus", "chunks loaded", "|V| partial", "|V| full", "matches"],
        _ROWS,
        title="Section 6 — shredded storage: partial chunk residency",
    )


register_report(_report)

"""Scenario: a concordance over the collected plays (string constraints).

String predicates ``["..."]`` become node sets at parse time: the loader's
global-stream matcher attributes each substring match to every element whose
XPath string value contains it, even across markup boundaries.  The queries
then combine those sets with structural navigation — including the
sibling-order queries the paper uses (Q5).

Run:  python examples/shakespeare_concordance.py [scale]
"""

import sys

from repro.corpora import generate
from repro.engine.pipeline import query

SEARCHES = [
    ("speeches by Mark Antony", '//SPEECH[SPEAKER["MARK ANTONY"]]'),
    ("lines of those speeches", '//SPEECH[SPEAKER["MARK ANTONY"]]/LINE'),
    (
        "Cleopatra: speaking or spoken of",
        '//SPEECH[SPEAKER["CLEOPATRA"] or LINE["Cleopatra"]]',
    ),
    (
        "Cleopatra replying to Antony",
        '//SPEECH[SPEAKER["CLEOPATRA"] and '
        'preceding-sibling::SPEECH[SPEAKER["MARK ANTONY"]]]',
    ),
    (
        "scenes containing both speakers",
        '//SCENE[SPEECH/SPEAKER["MARK ANTONY"] and SPEECH/SPEAKER["CLEOPATRA"]]',
    ),
]


def main(scale: int = 600) -> None:
    corpus = generate("shakespeare", scale)
    print(f"Collected plays: {corpus.megabytes:.1f} MB of XML\n")
    for label, xpath in SEARCHES:
        result = query(corpus.xml, xpath)
        print(f"{label:36s} {result.tree_count():>6,} matches "
              f"({result.dag_count()} DAG vertices, {1000 * result.seconds:6.2f}ms)")
        for path in result.tree_paths(limit=100_000)[:2]:
            print(f"    e.g. tree node at edge path {'.'.join(map(str, path))}")
    print(
        "\nEach string constraint was matched in the same single scan that"
        "\nbuilt the compressed skeleton (automata over the text stream)."
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 600)

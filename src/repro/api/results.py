"""Result sets: lazy streaming cursors over query selections.

A :class:`ResultSet` materialises a selection on demand, in three tiers of
increasing cost — exactly the decode ladder of the paper's Figure 7:

1. **DAG vertices** (:meth:`ResultSet.vertices`, :meth:`dag_count`) — the
   selected vertices of the compressed instance, free;
2. **tree paths** (:meth:`iter_paths`, :meth:`tree_count`) — the edge
   paths of the tree nodes the selection stands for, streamed lazily in
   document order (consuming a prefix walks only enough of the tree to
   produce it, via a bounded ``islice``-able iterator);
3. **XML fragments** (:meth:`iter_fragments`) — the actual subtree text
   of each match, reassembled from the skeleton/containers decomposition
   (:mod:`repro.skeleton.reassemble`) and serialised by
   :mod:`repro.xmlio.writer`.

One canonical JSON encoding (:meth:`to_json`, shared with the HTTP wire
format and the cluster worker protocol through
:mod:`repro.api.envelope`) covers both backends: an *embedded* result set
wraps a live :class:`repro.engine.results.QueryResult`, a *served* one
wraps the decoded payload a query service returned — the counts and any
requested paths, which is all that crosses the wire.
"""

from __future__ import annotations

from itertools import islice
from typing import Callable, Iterator

from repro.api.envelope import DEFAULT_LIMIT, decode_path, encode_result
from repro.engine.results import BatchStats, QueryResult
from repro.errors import ReproError
from repro.xmlio.dom import Element
from repro.xmlio.writer import serialize


def fragment_at(root: Element, path: tuple[int, ...]) -> str:
    """The XML fragment of the tree node at ``path`` under ``root``.

    ``path`` is a 1-based edge path from the virtual document root, so
    ``()`` names the document itself and ``(1,)`` the root element.
    Skeleton child slots are attributes first (when the instance was
    loaded with ``attributes="nodes"``), then element children — the same
    order the loader emitted them; an attribute node's "fragment" is its
    value text.
    """
    if not path:
        return serialize(root, declaration=False)
    if path[0] != 1:
        raise ReproError(f"edge path {path!r} does not start at the root element")
    element = root
    for depth, position in enumerate(path[1:], start=1):
        attributes = list(element.attributes.items())
        index = position - 1
        if index < len(attributes):
            if depth != len(path) - 1:
                raise ReproError(f"edge path {path!r} descends through an attribute")
            return attributes[index][1]
        element_children = [
            child for child in element.children if isinstance(child, Element)
        ]
        try:
            element = element_children[index - len(attributes)]
        except IndexError:
            raise ReproError(
                f"edge path {path!r} leaves the document at depth {depth}"
            ) from None
    return serialize(element, declaration=False)


class ResultSet:
    """A lazy cursor over one query's selection (see module doc).

    Construct via :meth:`repro.api.Database.execute` — the database wires
    in the document source fragments are reassembled from.  Never holds
    more than the requested prefix of a materialisation in memory.
    """

    def __init__(
        self,
        result: QueryResult | None = None,
        payload: dict | None = None,
        document_loader: Callable[[], Element] | None = None,
    ):
        if (result is None) == (payload is None):
            raise ReproError("a ResultSet wraps either a QueryResult or a payload")
        self._result = result
        self._payload = payload
        self._document_loader = document_loader

    # -- construction (used by Database) ---------------------------------

    @classmethod
    def from_result(
        cls, result: QueryResult, document_loader: Callable[[], Element] | None = None
    ) -> "ResultSet":
        """An embedded result set over a live evaluation result."""
        return cls(result=result, document_loader=document_loader)

    @classmethod
    def from_payload(cls, payload: dict) -> "ResultSet":
        """A served result set over a decoded service response."""
        return cls(payload=payload)

    # -- identity --------------------------------------------------------

    @property
    def served(self) -> bool:
        """True when this result crossed a service boundary (payload-backed)."""
        return self._payload is not None

    @property
    def result(self) -> QueryResult:
        """The underlying engine result (embedded result sets only)."""
        if self._result is None:
            raise ReproError("a served ResultSet has no live engine result")
        return self._result

    @property
    def info(self) -> dict:
        """Service metadata (document, batching, pool hit); ``{}`` embedded."""
        if self._payload is None:
            return {}
        return {
            key: value
            for key, value in self._payload.items()
            if key not in ("dag_count", "tree_count", "paths")
        }

    # -- tier 1: DAG vertices (free) -------------------------------------

    def vertices(self) -> set[int]:
        """The selected DAG vertices (embedded only; a fresh, mutable set)."""
        return self.result.vertices()

    def dag_count(self) -> int:
        """Figure 7 column (7): #nodes selected in the compressed instance."""
        if self._payload is not None:
            return self._payload["dag_count"]
        return self._result.dag_count()

    def tree_count(self) -> int:
        """Figure 7 column (8): #tree nodes the selection represents."""
        if self._payload is not None:
            return self._payload["tree_count"]
        return self._result.tree_count()

    def is_empty(self) -> bool:
        return self.dag_count() == 0

    # -- tier 2: tree paths (streamed) -----------------------------------

    def iter_paths(self, limit: int = DEFAULT_LIMIT) -> Iterator[tuple[int, ...]]:
        """Edge paths of the selected tree nodes, lazily, in document order.

        ``limit`` bounds the decompression walk (the tree may be
        exponentially larger than the instance).  A served result set
        yields the paths its response carried — ask for them at execute
        time via ``paths=N``.
        """
        if self._payload is not None:
            if "paths" not in self._payload:
                raise ReproError(
                    "this served result carries no paths; re-run the query "
                    "with paths=N to request them"
                )
            return (decode_path(text) for text in self._payload["paths"])
        return (path for path, _ in self._result.iter_tree_matches(limit=limit))

    def paths(
        self, max_paths: int | None = None, limit: int = DEFAULT_LIMIT
    ) -> list[tuple[int, ...]]:
        """Eager prefix of :meth:`iter_paths` (all matches when unbounded)."""
        return list(islice(self.iter_paths(limit=limit), max_paths))

    # -- tier 3: XML fragments (reassembled) -----------------------------

    def iter_fragments(self, limit: int = DEFAULT_LIMIT) -> Iterator[str]:
        """The XML text of each matched subtree, lazily, in document order.

        The first fragment pays the one-time cost of reassembling the
        document DOM from the skeleton/containers decomposition (cached on
        the owning database); each subsequent fragment is one subtree
        serialisation.  Only available on embedded result sets whose
        database holds the document text.
        """
        if self._document_loader is None:
            raise ReproError(
                "XML fragments need a text-backed embedded database "
                "(served results and .dag instances carry no character data)"
            )
        root = self._document_loader()
        return (fragment_at(root, path) for path in self.iter_paths(limit=limit))

    def fragments(
        self, max_fragments: int | None = None, limit: int = DEFAULT_LIMIT
    ) -> list[str]:
        """Eager prefix of :meth:`iter_fragments`."""
        return list(islice(self.iter_fragments(limit=limit), max_fragments))

    # -- evaluation metadata ---------------------------------------------

    @property
    def seconds(self) -> float:
        """Wall-clock seconds the evaluation took."""
        if self._payload is not None:
            return float(self._payload.get("seconds", 0.0))
        return self._result.seconds

    @property
    def before(self) -> tuple[int, int] | None:
        """Instance size before evaluation (embedded only)."""
        return None if self._result is None else self._result.before

    @property
    def after(self) -> tuple[int, int] | None:
        """Instance size after evaluation (embedded only)."""
        return None if self._result is None else self._result.after

    def summary(self) -> str:
        if self._result is not None:
            return self._result.summary()
        return (
            f"query time {self.seconds * 1000:8.2f} ms | "
            f"selected {self.dag_count()} dag / {self.tree_count()} tree nodes"
        )

    # -- the canonical wire shape ----------------------------------------

    def to_json(self, paths: int = 0, limit: int = DEFAULT_LIMIT) -> dict:
        """The canonical ``{"dag_count", "tree_count", "paths"?}`` payload.

        Byte-identical to what the HTTP server and cluster workers return
        for the same selection (both encode through
        :func:`repro.api.envelope.encode_result`).
        """
        if self._result is not None:
            return encode_result(self._result, paths=paths, limit=limit)
        payload = {
            "dag_count": self._payload["dag_count"],
            "tree_count": self._payload["tree_count"],
        }
        if paths:
            carried = self._payload.get("paths")
            if carried is None:
                raise ReproError(
                    "this served result carries no paths; re-run the query "
                    "with paths=N to request them"
                )
            payload["paths"] = carried[:paths]
        return payload

    def __repr__(self) -> str:
        backend = "served" if self.served else "embedded"
        return (
            f"ResultSet({backend}, dag={self.dag_count()}, tree={self.tree_count()})"
        )


class ResultSetBatch:
    """The result sets of one batch execution (shared-instance evaluation).

    Iterable and indexable like a list; ``stats`` carries the batch
    engine's shared-work accounting when the batch ran embedded (one
    working copy, cross-query subexpression reuse) and is ``None`` for a
    served batch, where coalescing happens inside the service instead.
    """

    def __init__(
        self,
        results: list[ResultSet],
        seconds: float = 0.0,
        stats: BatchStats | None = None,
    ):
        self.results = results
        self.seconds = seconds
        self.stats = stats

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[ResultSet]:
        return iter(self.results)

    def __getitem__(self, index: int) -> ResultSet:
        return self.results[index]

    def summary(self) -> str:
        lines = [f"batch of {len(self.results)} queries in {self.seconds * 1000:.2f} ms"]
        if self.stats is not None:
            lines[0] += (
                f" | algebra nodes {self.stats.nodes_evaluated} evaluated / "
                f"{self.stats.nodes_reused} reused "
                f"({100 * self.stats.sharing_ratio:.0f}% shared)"
            )
        for index, result in enumerate(self.results):
            lines.append(f"  [{index}] {result.summary()}")
        return "\n".join(lines)

"""Instance model: sigma-instances, edge paths, equivalence, bisimulation.

This package implements section 2 of Buneman/Grohe/Koch (VLDB 2003): the
data model shared by uncompressed XML skeletons (tree instances) and their
compressed DAG versions.
"""

from repro.model.instance import Edge, Instance, expand_edges, normalize_edges, tree_instance
from repro.model.schema import DOC_SET, string_set, tag_set, temp_set
from repro.model.paths import (
    selected_tree_count,
    tree_edge_count,
    tree_node_counts,
    tree_size,
)
from repro.model.equivalence import compatible, equivalent, equivalent_by_paths
from repro.model.bisimulation import (
    coarsest_bisimulation,
    identity_partition,
    is_bisimilarity,
    is_minimal,
    join,
    meet,
    quotient,
)

__all__ = [
    "DOC_SET",
    "Edge",
    "Instance",
    "coarsest_bisimulation",
    "compatible",
    "equivalent",
    "equivalent_by_paths",
    "expand_edges",
    "identity_partition",
    "is_bisimilarity",
    "is_minimal",
    "join",
    "meet",
    "normalize_edges",
    "quotient",
    "selected_tree_count",
    "string_set",
    "tag_set",
    "temp_set",
    "tree_edge_count",
    "tree_instance",
    "tree_node_counts",
    "tree_size",
]

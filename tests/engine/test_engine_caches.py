"""Regression tests for the Engine's cache semantics.

Two bugs fixed by the batch-workload PR are pinned here:

* the compiled-algebra cache was FIFO, not LRU — under query churn the
  hottest query text was evicted first because hits never refreshed
  insertion order;
* ``Engine.instance_for`` left ``last_load`` stale on an instance-cache
  hit, so callers reading ``last_load.parse_seconds`` after a cached query
  saw the *previous schema's* load stats.
"""

from repro.engine.pipeline import Engine

from tests.skeleton.test_loader import BIB_XML


class TestCompiledCacheLRU:
    def test_hit_refreshes_recency(self):
        engine = Engine(BIB_XML)
        engine.COMPILED_CACHE_LIMIT = 2
        engine.compiled("//book")
        engine.compiled("//paper")
        engine.compiled("//book")  # hit: //book becomes most recent
        engine.compiled("//title")  # evicts //paper, not //book
        assert "//book" in engine._compiled
        assert "//paper" not in engine._compiled
        assert "//title" in engine._compiled

    def test_hot_query_survives_churn(self):
        # The regression scenario: one hot query interleaved with a stream
        # of one-off queries longer than the cache. FIFO evicted the hot
        # query as soon as the stream wrapped; LRU must keep it resident.
        engine = Engine(BIB_XML)
        engine.COMPILED_CACHE_LIMIT = 4
        hot = "//book/author"
        engine.compiled(hot)
        hot_expr = engine._compiled[hot][0]
        for i in range(20):
            engine.compiled(f"//oneoff{i}")
            engine.compiled(hot)
        assert hot in engine._compiled
        # Same object: the hot entry was never recompiled.
        assert engine._compiled[hot][0] is hot_expr

    def test_cache_stays_bounded(self):
        engine = Engine(BIB_XML)
        engine.COMPILED_CACHE_LIMIT = 3
        for i in range(10):
            engine.compiled(f"//b{i}")
        assert len(engine._compiled) == 3

    def test_repeated_query_reuses_compiled_object(self):
        engine = Engine(BIB_XML)
        first = engine.compiled("//book")
        assert engine.compiled("//book") is first


class TestLastLoadContract:
    def test_fresh_load_recorded(self):
        engine = Engine(BIB_XML, reparse_per_query=False)
        engine.query("//book")
        assert engine.last_load is not None
        assert engine.last_load_cached is False
        assert "book" in engine.last_load.instance.schema

    def test_cache_hit_updates_last_load(self):
        # The regression: after //book (cached) ran again following //paper,
        # last_load used to still describe //paper's schema.
        engine = Engine(BIB_XML, reparse_per_query=False)
        engine.query("//book")
        book_load = engine.last_load
        engine.query("//paper")
        assert "paper" in engine.last_load.instance.schema
        engine.query("//book")  # served from the instance cache
        assert engine.last_load_cached is True
        assert engine.last_load is book_load
        assert "book" in engine.last_load.instance.schema
        assert "paper" not in engine.last_load.instance.schema

    def test_reparse_mode_never_reports_cached(self):
        engine = Engine(BIB_XML, reparse_per_query=True)
        engine.query("//book")
        engine.query("//book")
        assert engine.last_load_cached is False

    def test_query_batch_sets_last_load_to_union_schema(self):
        engine = Engine(BIB_XML, reparse_per_query=False)
        engine.query_batch(["//book", "//paper"])
        schema = set(engine.last_load.instance.schema)
        assert {"book", "paper"} <= schema
        assert engine.last_load_cached is False
        engine.query_batch(["//book", "//paper"])
        assert engine.last_load_cached is True

"""Tests for axis application on compressed instances (Propositions 3.2-3.4)."""

import pytest

from repro.compress.minimize import minimize
from repro.engine.axes_compressed import apply_axis
from repro.errors import EvaluationError
from repro.model.instance import Instance, tree_instance
from repro.xpath.algebra import AxisApply, NamedSet

from tests.engine.util import assert_engines_agree, engine_paths

ALL_AXES = [
    "self",
    "child",
    "parent",
    "descendant",
    "ancestor",
    "descendant-or-self",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
]


class TestUpwardAxesInPlace:
    """Proposition 3.3: upward axes never change the instance DAG."""

    @pytest.mark.parametrize("axis", ["self", "parent", "ancestor", "ancestor-or-self"])
    def test_no_structural_change(self, figure2_compressed, axis):
        instance = figure2_compressed.copy()
        before = (instance.num_vertices, instance.num_edge_entries)
        result = apply_axis(instance, axis, "author", "out")
        assert result is instance  # mutated in place
        assert (instance.num_vertices, instance.num_edge_entries) == before

    def test_parent_selection(self, figure2_compressed):
        instance = figure2_compressed.copy()
        apply_axis(instance, "parent", "title", "out")
        assert instance.members("out") == (
            instance.members("book") | instance.members("paper")
        )

    def test_ancestor_selection(self, figure2_compressed):
        instance = figure2_compressed.copy()
        apply_axis(instance, "ancestor", "author", "out")
        expected = (
            instance.members("book")
            | instance.members("paper")
            | instance.members("bib")
        )
        assert instance.members("out") == expected

    def test_ancestor_or_self_includes_sources(self, figure2_compressed):
        instance = figure2_compressed.copy()
        apply_axis(instance, "ancestor-or-self", "author", "out")
        assert instance.members("author") <= instance.members("out")

    def test_self_copies_selection(self, figure2_compressed):
        instance = figure2_compressed.copy()
        apply_axis(instance, "self", "paper", "out")
        assert instance.members("out") == instance.members("paper")


class TestDownwardAxesSplit:
    def test_child_of_root_no_split(self, figure2_compressed):
        instance = apply_axis(figure2_compressed.copy(), "child", "bib", "out")
        # All children of bib (book + papers) selected; sharing preserved.
        assert len(instance.preorder()) == 5
        assert instance.members("out") == (
            instance.members("book") | instance.members("paper")
        )

    def test_child_splits_shared_vertex(self):
        # r -> a -> x ; r -> b -> x : child(a) must select only a's x.
        instance = Instance(["r", "a", "b"])
        x = instance.new_vertex()
        a = instance.new_vertex(["a"], [(x, 1)])
        b = instance.new_vertex(["b"], [(x, 1)])
        instance.set_root(instance.new_vertex(["r"], [(a, 1), (b, 1)]))
        result = apply_axis(instance, "child", "a", "out")
        # x split in two: one selected (under a), one not (under b).
        assert len(result.preorder()) == 5
        assert len(result.members("out")) == 1

    def test_growth_at_most_doubles(self, figure2_compressed):
        # Proposition 3.2: each downward axis at most doubles the instance.
        for axis in ("child", "descendant", "descendant-or-self"):
            for source in ("bib", "book", "paper", "title", "author"):
                instance = figure2_compressed.copy()
                before_v = len(instance.preorder())
                before_e = sum(len(instance.children(v)) for v in instance.preorder())
                result = apply_axis(instance, axis, source, "out")
                assert len(result.preorder()) <= 2 * before_v
                after_e = sum(len(result.children(v)) for v in result.preorder())
                assert after_e <= 2 * before_e

    def test_descendant_reaches_whole_subtree(self, figure2_compressed):
        result = apply_axis(figure2_compressed.copy(), "descendant", "book", "out")
        # book's title and author leaves must be selected; decoded: 4 nodes.
        paths = engine_paths(
            figure2_compressed,
            AxisApply("descendant", NamedSet("book")),
        )
        assert paths == {(1, 1), (1, 2), (1, 3), (1, 4)}
        assert len(result.members("out")) >= 2

    def test_descendant_or_self_includes_source(self, figure2_compressed):
        paths = engine_paths(
            figure2_compressed, AxisApply("descendant-or-self", NamedSet("paper"))
        )
        assert (2,) in paths and (3,) in paths  # the papers themselves
        assert (2, 1) in paths and (3, 2) in paths  # their subtrees

    def test_multiplicity_runs_survive_downward(self):
        # A run (leaf, 1000) under a selected parent stays one entry.
        instance = Instance(["r"])
        leaf = instance.new_vertex()
        root = instance.new_vertex(["r"], [(leaf, 1000)])
        instance.set_root(root)
        result = apply_axis(instance, "child", "r", "out")
        assert result.num_edge_entries == 1
        assert len(result.preorder()) == 2


class TestSiblingAxes:
    def test_multiplicity_run_splits(self):
        # root -> (x, 3) with x selected: following-sibling(x) = occurrences
        # 2 and 3, so the run must split into (x,1)(x',2).
        instance = Instance(["r", "x"])
        x = instance.new_vertex(["x"])
        instance.set_root(instance.new_vertex(["r"], [(x, 3)]))
        result = apply_axis(instance, "following-sibling", "x", "out")
        root_edges = result.children(result.root)
        assert [count for _, count in root_edges] == [1, 2]
        paths = engine_paths(instance, AxisApply("following-sibling", NamedSet("x")))
        assert paths == {(2,), (3,)}

    def test_preceding_sibling_multiplicity(self):
        instance = Instance(["r", "x"])
        x = instance.new_vertex(["x"])
        instance.set_root(instance.new_vertex(["r"], [(x, 3)]))
        paths = engine_paths(instance, AxisApply("preceding-sibling", NamedSet("x")))
        assert paths == {(1,), (2,)}

    def test_siblings_do_not_cross_parents(self, figure2_compressed):
        # title precedes author within book and within paper, never across.
        paths = engine_paths(
            figure2_compressed, AxisApply("following-sibling", NamedSet("title"))
        )
        assert paths == {(1, 2), (1, 3), (1, 4), (2, 2), (3, 2)}

    def test_following_composition(self, figure2_compressed):
        assert_engines_agree(
            figure2_compressed, AxisApply("following", NamedSet("book"))
        )

    def test_preceding_composition(self, figure2_compressed):
        assert_engines_agree(
            figure2_compressed, AxisApply("preceding", NamedSet("author"))
        )

    def test_composite_drops_temporaries(self, figure2_compressed):
        from repro.engine.evaluator import evaluate

        result = evaluate(
            figure2_compressed, AxisApply("following", NamedSet("book"))
        )
        leftovers = [name for name in result.instance.schema if "~" in name]
        assert leftovers == []


class TestAllAxesAgainstOracle:
    @pytest.mark.parametrize("axis", ALL_AXES)
    @pytest.mark.parametrize("source", ["bib", "book", "paper", "title", "author"])
    def test_figure2(self, figure2_compressed, axis, source):
        assert_engines_agree(
            figure2_compressed, AxisApply(axis, NamedSet(source))
        )

    @pytest.mark.parametrize("axis", ALL_AXES)
    def test_deeper_shared_instance(self, axis):
        # Two levels of sharing with multiplicities.
        spec = (
            "r",
            [
                ("s", [("a", [("x", [])]), ("a", [("x", [])]), ("b", [])]),
                ("s", [("a", [("x", [])]), ("a", [("x", [])]), ("b", [])]),
                ("b", []),
            ],
        )
        instance = minimize(tree_instance(spec, schema=["r", "s", "a", "b", "x"]))
        for source in ("a", "b", "x", "s"):
            assert_engines_agree(instance, AxisApply(axis, NamedSet(source)))


class TestErrors:
    def test_unknown_axis(self, figure2_compressed):
        with pytest.raises(EvaluationError, match="unknown axis"):
            apply_axis(figure2_compressed.copy(), "up-and-left", "bib", "out")

    def test_existing_target_rejected(self, figure2_compressed):
        with pytest.raises(EvaluationError, match="already exists"):
            apply_axis(figure2_compressed.copy(), "child", "bib", "author")

    def test_missing_source_rejected(self, figure2_compressed):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            apply_axis(figure2_compressed.copy(), "child", "nope", "out")

"""Benchmark harness: Appendix A queries, Figure 6/7 runners, table printing."""

from repro.bench.harness import Figure6Row, Figure7Row, figure6_row, figure7_row
from repro.bench.queries import QUERIES, QUERY_IDS, queries_for
from repro.bench.tables import fmt_int, fmt_pct, fmt_seconds, format_table

__all__ = [
    "Figure6Row",
    "Figure7Row",
    "QUERIES",
    "QUERY_IDS",
    "figure6_row",
    "figure7_row",
    "fmt_int",
    "fmt_pct",
    "fmt_seconds",
    "format_table",
    "queries_for",
]

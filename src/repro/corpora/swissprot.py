"""SwissProt-like protein database corpus.

SwissProt is the paper's largest corpus (457 MB, 10.9M nodes, compressing
to ~7-10%).  Records are rich but structurally repetitive: protein
metadata, taxonomy lists, free-text comments grouped by topic, features and
a sequence.  Variety comes from the *counts* of repeated sections, which is
exactly the regime where subtree sharing plus multiplicity edges shine.

Planted strings (Appendix A, SwissProt Q3-Q5): taxonomies containing
"Eukaryota"; one record whose sequence contains "MMSARGDFLN" *and* whose
protein is from "Rattus norvegicus"; records with a comment topic
"TISSUE SPECIFICITY" followed by a sibling comment with topic
"DEVELOPMENTAL STAGE".
"""

from __future__ import annotations

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, rng_for, sentence

_TAXA = ("Bacteria", "Archaea", "Viridiplantae", "Metazoa", "Fungi", "Eukaryota")
_ORGANISMS = ("Homo sapiens", "Mus musculus", "Escherichia coli", "Saccharomyces cerevisiae")
_TOPICS = ("FUNCTION", "SUBUNIT", "SIMILARITY", "CATALYTIC ACTIVITY", "SUBCELLULAR LOCATION")
_FEATURE_TYPES = ("DOMAIN", "CHAIN", "ACT_SITE", "BINDING", "TRANSMEM")
_AMINO = "ACDEFGHIKLMNPQRSTVWY"


def _sequence(rng, length: int) -> str:
    return "".join(rng.choice(_AMINO) for _ in range(length))


def _comment(builder: XMLBuilder, rng, topic: str) -> None:
    builder.open("comment")
    builder.leaf("topic", topic)
    builder.leaf("text", sentence(rng, rng.randint(6, 14)))
    builder.close()


def _record(builder: XMLBuilder, rng, index: int, scale: int) -> None:
    special_rat = index == min(11, scale - 1)
    tissue_pair = scale > 2 and index % max(scale // 9, 1) == 2

    builder.open("Record")
    builder.leaf("accession", f"P{10000 + index}")
    builder.open("protein")
    builder.leaf("name", sentence(rng, 3).title())
    builder.leaf("from", "Rattus norvegicus" if special_rat else rng.choice(_ORGANISMS))
    taxa = rng.sample(_TAXA, rng.randint(1, 3))
    if index % 5 == 0 and "Eukaryota" not in taxa:
        taxa.append("Eukaryota")
    for taxon in taxa:
        builder.leaf("taxo", taxon)
    builder.close()  # protein
    for _ in range(rng.randint(0, 3)):
        _comment(builder, rng, rng.choice(_TOPICS))
    if tissue_pair:
        _comment(builder, rng, "TISSUE SPECIFICITY")
        _comment(builder, rng, "DEVELOPMENTAL STAGE")
    builder.open("features")
    for _ in range(rng.randint(1, 5)):
        builder.open("feature")
        builder.leaf("type", rng.choice(_FEATURE_TYPES))
        start = rng.randint(1, 300)
        builder.leaf("begin", str(start))
        builder.leaf("end", str(start + rng.randint(5, 60)))
        builder.close()
    builder.close()  # features
    builder.open("sequence")
    payload = _sequence(rng, rng.randint(40, 120))
    if special_rat:
        payload = "MMSARGDFLN" + payload
    builder.leaf("seq", payload)
    builder.close()
    builder.close().newline()  # Record


def generate(scale: int = 900, seed: int = 0) -> GeneratedCorpus:
    """Generate ``scale`` protein records (roughly 25 skeleton nodes each)."""
    check_scale(scale)
    rng = rng_for("swissprot", scale, seed)
    builder = XMLBuilder()
    builder.open("ROOT").newline()
    for index in range(scale):
        _record(builder, rng, index, scale)
    builder.close()
    return GeneratedCorpus(name="swissprot", xml=builder.result(), scale=scale, seed=seed)

"""The JSON-over-HTTP front of the query service (stdlib only).

``repro serve`` runs a :class:`ReproHTTPServer` — a
``ThreadingHTTPServer`` whose handler threads feed the coalescing
:class:`repro.server.service.QueryService`.  Endpoints::

    GET    /healthz            liveness + catalog summary
    GET    /stats              serving / pool / coalescing counters
    GET    /catalog            registered documents with shred metadata
    POST   /catalog/<name>     register a document  {"xml": "<...>"}
    DELETE /catalog/<name>     evict: drop pool residency + catalog entry
    POST   /query              {"document": d, "query": q,
                                "paths": N?, "limit": N?}

Every response is ``application/json``.  Client errors are mapped to
status codes the same way the CLI maps them to exit codes: unknown
documents and malformed queries are 400/404 (the caller's fault), engine
failures are 500.
"""

from __future__ import annotations

import json
# Distinct from builtins.TimeoutError before 3.11, an alias after.
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import CatalogError, ReproError, XPathCompileError, XPathSyntaxError
from repro.server.catalog import Catalog
from repro.server.service import QueryService

#: Registration payloads above this size are rejected (bytes).
MAX_BODY = 256 * 1024 * 1024


class ReproHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection; requests coalesce in the service."""

    daemon_threads = True
    # socketserver's default listen backlog is 5; a burst of clients
    # connecting at once then overflows the SYN queue and the dropped
    # connects retry after a full second.  128 rides out real bursts.
    request_queue_size = 128

    def __init__(self, address: tuple[str, int], service: QueryService, quiet: bool = True):
        self.service = service
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"
    # Responses go out as header + body segments on a keep-alive connection;
    # without this (a *handler* attribute, per socketserver), Nagle + the
    # client's delayed ACK stall every request on the connection ~40ms.
    disable_nagle_algorithm = True

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._reply(status, {"error": message})

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            self._error(400, "missing request body")
            return None
        if length > MAX_BODY:
            self._error(413, f"request body over {MAX_BODY} bytes")
            return None
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._error(400, f"malformed JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        if self.path == "/healthz":
            self._reply(
                200,
                {
                    "status": "ok",
                    "documents": len(service.catalog),
                    "mode": service.mode,
                },
            )
        elif self.path == "/stats":
            self._reply(200, service.stats_dict())
        elif self.path == "/catalog":
            from dataclasses import asdict

            self._reply(
                200, {"documents": [asdict(entry) for entry in service.catalog.entries()]}
            )
        else:
            self._error(404, f"no such endpoint: GET {self.path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/query":
            self._post_query()
        elif self.path.startswith("/catalog/"):
            self._post_catalog(self.path[len("/catalog/"):])
        else:
            self._error(404, f"no such endpoint: POST {self.path}")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        if not self.path.startswith("/catalog/"):
            self._error(404, f"no such endpoint: DELETE {self.path}")
            return
        name = self.path[len("/catalog/"):]
        service = self.server.service
        try:
            evicted = service.evict(name)
            service.catalog.remove(name)
        except CatalogError as error:
            self._error(404, str(error))
            return
        self._reply(200, {"removed": name, "pool_entries_evicted": evicted})

    # -- handlers --------------------------------------------------------

    def _post_query(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        document = payload.get("document")
        query_text = payload.get("query")
        if not isinstance(document, str) or not isinstance(query_text, str):
            self._error(400, "body needs string fields 'document' and 'query'")
            return
        paths = payload.get("paths", 0)
        limit = payload.get("limit", None)
        if not isinstance(paths, int) or paths < 0:
            self._error(400, "'paths' must be a non-negative integer")
            return
        kwargs = {"paths": paths}
        if limit is not None:
            if not isinstance(limit, int) or limit < 1:
                self._error(400, "'limit' must be a positive integer")
                return
            kwargs["limit"] = limit
        try:
            response = self.server.service.query(document, query_text, **kwargs)
        except CatalogError as error:
            self._error(404, str(error))
        except (XPathSyntaxError, XPathCompileError) as error:
            self._error(400, f"invalid query: {error}")
        except FuturesTimeoutError:
            self._error(504, f"request timed out after {self.server.service.request_timeout}s")
        except ReproError as error:
            self._error(500, str(error))
        else:
            self._reply(200, response)

    def _post_catalog(self, name: str) -> None:
        payload = self._read_json()
        if payload is None:
            return
        xml = payload.get("xml")
        if not isinstance(xml, str):
            self._error(400, "body needs a string field 'xml'")
            return
        attributes = payload.get("attributes", "ignore")
        try:
            entry = self.server.service.catalog.add(name, xml, attributes=attributes)
        except ReproError as error:
            self._error(400, str(error))
            return
        from dataclasses import asdict

        self._reply(201, asdict(entry))


def create_server(
    catalog_dir: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    mode: str = "snapshot",
    window: float = 0.0,
    max_batch: int = 64,
    pool_capacity: int = 8,
    axes: str = "functional",
    quiet: bool = True,
) -> ReproHTTPServer:
    """Build a ready-to-run server (``port=0`` binds an ephemeral port)."""
    service = QueryService(
        Catalog(catalog_dir),
        mode=mode,
        window=window,
        max_batch=max_batch,
        pool_capacity=pool_capacity,
        axes=axes,
    )
    return ReproHTTPServer((host, port), service, quiet=quiet)


def serve(catalog_dir: str, **kwargs) -> None:
    """Run the server until interrupted (the ``repro serve`` entry point)."""
    import sys

    server = create_server(catalog_dir, **kwargs)
    documents = server.service.catalog.names()
    print(
        f"repro serve: {server.url}  catalog={catalog_dir!r} "
        f"documents={len(documents)} mode={server.service.mode}",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.server_close()

"""Secondary storage: shredding compressed instances into chunks (section 6)."""

from repro.storage.chunked import ChunkedStore, extract_subdag
from repro.storage.prune import prunable_top_tags

__all__ = ["ChunkedStore", "extract_subdag", "prunable_top_tags"]

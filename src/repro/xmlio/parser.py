"""Structural (SAX-like) XML parsing on top of the tokenizer.

:func:`parse_events` adds well-formedness checking to the lexical stream:
balanced and properly nested tags, exactly one root element, no character
data outside the root.  :func:`sax_parse` drives a handler object, which is
how the skeleton loader consumes documents in one scan without ever building
a tree.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import XMLSyntaxError
from repro.xmlio.events import Event, Text
from repro.xmlio.tokenizer import tokenize


def parse_events(text: str) -> Iterator[Event]:
    """Yield checked events; adjacent text runs are coalesced.

    Comments, processing instructions and the DOCTYPE are passed through
    (they carry no skeleton information but a DOM may keep them); whitespace
    outside the root element is dropped, any other character data there is an
    error.
    """
    stack: list[str] = []
    seen_root = False
    pending_text: list[str] = []
    pending_offset = -1

    def flush() -> Iterator[Text]:
        nonlocal pending_offset
        if pending_text:
            yield Text("".join(pending_text), offset=pending_offset)
            pending_text.clear()
            pending_offset = -1

    for event in tokenize(text):
        kind = event.kind
        if kind == "text":
            if not stack:
                if event.data.strip():
                    raise XMLSyntaxError(
                        "character data outside the root element", offset=event.offset
                    )
                continue
            if not pending_text:
                pending_offset = event.offset
            pending_text.append(event.data)
            continue
        yield from flush()
        if kind == "start":
            if not stack and seen_root:
                raise XMLSyntaxError(
                    f"second root element <{event.name}>", offset=event.offset
                )
            stack.append(event.name)
            seen_root = True
            yield event
        elif kind == "end":
            if not stack:
                raise XMLSyntaxError(
                    f"closing tag </{event.name}> with no open element",
                    offset=event.offset,
                )
            expected = stack.pop()
            if expected != event.name:
                raise XMLSyntaxError(
                    f"mismatched closing tag: expected </{expected}>, got </{event.name}>",
                    offset=event.offset,
                )
            yield event
        else:
            yield event
    yield from flush()
    if stack:
        raise XMLSyntaxError(f"unclosed element <{stack[-1]}> at end of document")
    if not seen_root:
        raise XMLSyntaxError("document has no root element")


class Handler:
    """Callback interface for :func:`sax_parse`; override what you need."""

    def start_element(self, name: str, attributes: dict[str, str]) -> None:
        """Called for every ``<name ...>`` (and the open half of ``<name/>``)."""

    def end_element(self, name: str) -> None:
        """Called for every ``</name>``."""

    def characters(self, data: str) -> None:
        """Called with coalesced character data inside the root element."""

    def comment(self, data: str) -> None:
        """Called for comments (default: ignored)."""

    def processing_instruction(self, target: str, data: str) -> None:
        """Called for PIs and the XML declaration (default: ignored)."""


def sax_parse(text: str, handler: Handler) -> None:
    """Parse ``text``, driving ``handler`` — the paper's evaluation entry point."""
    for event in parse_events(text):
        kind = event.kind
        if kind == "start":
            handler.start_element(event.name, event.attributes)
        elif kind == "end":
            handler.end_element(event.name)
        elif kind == "text":
            handler.characters(event.data)
        elif kind == "comment":
            handler.comment(event.data)
        elif kind == "pi":
            handler.processing_instruction(event.target, event.data)


def iter_events(source: Iterable[Event]) -> Iterator[Event]:
    """Identity adaptor so loaders accept pre-tokenized event streams."""
    return iter(source)

"""Skeleton extraction, reassembly and property distillation.

One-scan XML -> compressed-instance loading (section 4), the lossless
XMILL-style decomposition (skeleton + containers + layout), document
reassembly, and the distill-and-merge workflow for adding string properties
to stored instances without re-reading the XML.
"""

from repro.skeleton.distill import add_string_sets, distill_string_instance
from repro.skeleton.layout import LayoutTracker, TextLayout
from repro.skeleton.loader import LoadResult, load, load_file, load_instance
from repro.skeleton.reassemble import reassemble, reassemble_element

__all__ = [
    "LayoutTracker",
    "LoadResult",
    "TextLayout",
    "add_string_sets",
    "distill_string_instance",
    "load",
    "load_file",
    "load_instance",
    "reassemble",
    "reassemble_element",
]

"""Structured query plans: the JSON-able view of a compiled algebra tree.

``Engine.explain`` renders the Figure 3 algebra tree as ASCII; every other
surface (the CLI's ``explain --json``, ``repro query --explain-json``, the
HTTP ``/explain`` route) needs the *same* tree as data.  A :class:`Plan`
wraps one compiled query: the per-node operator tree, the schema the query
requires (tags and string-containment needles — exactly what the one-scan
loader extracts), the upward-only flag of Corollary 3.7, and — when a
:class:`repro.api.Database` or a query service produced the plan — where
the instance answering it would come from (engine schema cache, pool
residency, worker shard).

The ASCII rendering of :meth:`Plan.render` is byte-identical to
``AlgebraExpr.render``, so the human-facing ``repro explain`` output did
not change when it moved onto this structure.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.xpath.algebra import (
    AlgebraExpr,
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    uses_only_upward_axes,
)

#: Operator names used in plan JSON, keyed by algebra node class.
_OPS = {
    RootSet: "root-set",
    AllNodes: "all-nodes",
    ContextSet: "context",
    NamedSet: "named-set",
    AxisApply: "axis",
    Union: "union",
    Intersect: "intersect",
    Difference: "difference",
    RootFilter: "root-filter",
}


@dataclass(frozen=True)
class PlanNode:
    """One operator of the plan tree (a mirror of one algebra node)."""

    #: Operator name: ``axis``, ``named-set``, ``union``, ... (see ``_OPS``).
    op: str
    #: ASCII label, identical to ``AlgebraExpr.label()`` (drives rendering).
    label: str
    #: The axis applied (``op == "axis"`` only).
    axis: str | None = None
    #: The schema set read (``op == "named-set"`` only).
    set_name: str | None = None
    children: tuple["PlanNode", ...] = ()

    def to_dict(self) -> dict:
        node: dict = {"op": self.op}
        if self.axis is not None:
            node["axis"] = self.axis
        if self.set_name is not None:
            node["set"] = self.set_name
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def render(self, indent: str = "") -> str:
        lines = [indent + self.label]
        for child in self.children:
            lines.append(child.render(indent + "    "))
        return "\n".join(lines)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)


def _node_from_expr(expr: AlgebraExpr) -> PlanNode:
    op = _OPS.get(type(expr))
    if op is None:  # pragma: no cover - future algebra nodes
        op = type(expr).__name__.lower()
    return PlanNode(
        op=op,
        label=expr.label(),
        axis=expr.axis if isinstance(expr, AxisApply) else None,
        set_name=expr.name if isinstance(expr, NamedSet) else None,
        children=tuple(_node_from_expr(child) for child in expr.children()),
    )


@dataclass
class Plan:
    """A compiled query as structured data (one per :class:`PreparedQuery`).

    ``instance`` is optional provenance describing where the answering
    instance would come from; it is attached by whichever surface produced
    the plan (embedded engine cache state, pool residency for a served
    document, shard id under a worker fleet) and is ``None`` for a plan of
    a bare query text.
    """

    query: str | None
    root: PlanNode
    required_tags: tuple[str, ...]
    required_strings: tuple[str, ...]
    upward_only: bool
    #: Where the instance answering this plan would come from (see class doc).
    instance: dict | None = field(default=None)

    @classmethod
    def from_compiled(
        cls,
        query_text: str | None,
        expr: AlgebraExpr,
        tags: tuple[str, ...],
        strings: tuple[str, ...],
    ) -> "Plan":
        """Build a plan from an already-compiled query (no re-parse)."""
        return cls(
            query=query_text,
            root=_node_from_expr(expr),
            required_tags=tuple(tags),
            required_strings=tuple(strings),
            upward_only=uses_only_upward_axes(expr),
        )

    @classmethod
    def from_query(cls, query_text: str) -> "Plan":
        """Parse + compile ``query_text`` and build its plan."""
        from repro.xpath.compiler import compile_query, required_strings, required_tags
        from repro.xpath.parser import parse_query

        ast = parse_query(query_text)
        return cls.from_compiled(
            query_text,
            compile_query(ast),
            tuple(sorted(required_tags(ast))),
            tuple(sorted(required_strings(ast))),
        )

    def size(self) -> int:
        """Number of operator nodes — the |Q| of Theorem 3.6."""
        return self.root.size()

    def render(self) -> str:
        """The ASCII tree (byte-identical to ``AlgebraExpr.render``)."""
        return self.root.render()

    def to_dict(self) -> dict:
        plan: dict = {
            "query": self.query,
            "nodes": self.size(),
            "upward_only": self.upward_only,
            "required": {
                "tags": list(self.required_tags),
                "strings": list(self.required_strings),
            },
            "algebra": self.root.to_dict(),
        }
        if self.instance is not None:
            plan["instance"] = self.instance
        return plan

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, ensure_ascii=False)

    def __str__(self) -> str:
        return self.render()

"""Unit tests for the sigma-instance data structure."""

import pytest

from repro.errors import InstanceError, SchemaError
from repro.model.instance import Instance, expand_edges, normalize_edges, tree_instance


class TestNormalizeEdges:
    def test_merges_adjacent_runs(self):
        assert normalize_edges([(1, 2), (1, 3), (2, 1)]) == ((1, 5), (2, 1))

    def test_keeps_non_adjacent_runs_apart(self):
        assert normalize_edges([(1, 1), (2, 1), (1, 1)]) == ((1, 1), (2, 1), (1, 1))

    def test_drops_zero_counts(self):
        assert normalize_edges([(1, 0), (2, 1)]) == ((2, 1),)

    def test_rejects_negative_counts(self):
        with pytest.raises(InstanceError):
            normalize_edges([(1, -1)])

    def test_empty(self):
        assert normalize_edges([]) == ()

    def test_expand_round_trip(self):
        edges = ((3, 2), (5, 1), (3, 1))
        assert list(expand_edges(edges)) == [3, 3, 5, 3]


class TestSchema:
    def test_ensure_set_is_idempotent(self):
        instance = Instance()
        bit = instance.ensure_set("a")
        assert instance.ensure_set("a") == bit
        assert instance.schema == ("a",)

    def test_bit_of_missing_set_raises(self):
        instance = Instance(["a"])
        with pytest.raises(SchemaError):
            instance.bit_of("b")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Instance().ensure_set("")

    def test_drop_set_compacts_masks(self):
        instance = Instance(["a", "b", "c"])
        v = instance.new_vertex(["a", "c"])
        instance.set_root(v)
        instance.drop_set("b")
        assert instance.schema == ("a", "c")
        assert instance.sets_at(v) == ("a", "c")

    def test_drop_first_set_shifts_bits(self):
        instance = Instance(["a", "b"])
        v = instance.new_vertex(["b"])
        instance.set_root(v)
        instance.drop_set("a")
        assert instance.in_set(v, "b")


class TestVerticesAndEdges:
    def test_single_vertex(self):
        instance = Instance(["a"])
        v = instance.new_vertex(["a"])
        instance.set_root(v)
        instance.validate()
        assert instance.num_vertices == 1
        assert instance.num_edge_entries == 0

    def test_children_are_normalized(self):
        instance = Instance()
        leaf = instance.new_vertex()
        parent = instance.new_vertex(children=[(leaf, 1), (leaf, 2)])
        assert instance.children(parent) == ((leaf, 3),)

    def test_out_degree_counts_multiplicities(self, figure2_compressed):
        instance = figure2_compressed
        book = next(iter(instance.members("book")))
        assert instance.out_degree(book) == 4

    def test_edge_counts(self, figure2_compressed):
        # book: title + 3x author (2 entries), paper: title + author (2),
        # bib: book + 2x paper (2).
        assert figure2_compressed.num_edge_entries == 6
        assert figure2_compressed.num_edges_expanded == 9

    def test_set_children_to_unknown_vertex_raises(self):
        instance = Instance()
        v = instance.new_vertex()
        with pytest.raises(InstanceError):
            instance.set_children(v, [(99, 1)])

    def test_root_unset_raises(self):
        with pytest.raises(InstanceError):
            Instance().root


class TestSetMembership:
    def test_members(self, figure2_compressed):
        assert len(figure2_compressed.members("author")) == 1
        assert len(figure2_compressed.members("paper")) == 1

    def test_add_and_remove(self):
        instance = Instance(["a"])
        v = instance.new_vertex()
        instance.set_root(v)
        assert not instance.in_set(v, "a")
        instance.add_to_set(v, "a")
        assert instance.in_set(v, "a")
        instance.remove_from_set(v, "a")
        assert not instance.in_set(v, "a")

    def test_add_to_new_set_extends_schema(self):
        instance = Instance()
        v = instance.new_vertex()
        instance.set_root(v)
        instance.add_to_set(v, "fresh")
        assert instance.has_set("fresh")
        assert instance.members("fresh") == {v}

    def test_sets_at_in_schema_order(self):
        instance = Instance(["x", "y"])
        v = instance.new_vertex(["y", "x"])
        assert instance.sets_at(v) == ("x", "y")


class TestTraversal:
    def test_topological_order_parents_first(self, figure2_compressed):
        instance = figure2_compressed
        order = instance.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for vertex in order:
            for child, _ in instance.children(vertex):
                assert position[vertex] < position[child]

    def test_postorder_children_first(self, bib_tree):
        order = bib_tree.postorder()
        position = {v: i for i, v in enumerate(order)}
        for vertex in order:
            for child, _ in bib_tree.children(vertex):
                assert position[child] < position[vertex]

    def test_preorder_starts_at_root(self, figure2_compressed):
        assert figure2_compressed.preorder()[0] == figure2_compressed.root

    def test_orders_cover_reachable_once(self, figure2_compressed):
        for order in (
            figure2_compressed.preorder(),
            figure2_compressed.postorder(),
            figure2_compressed.topological_order(),
        ):
            assert sorted(order) == sorted(figure2_compressed.reachable())
            assert len(set(order)) == len(order)

    def test_parents(self, figure2_compressed):
        instance = figure2_compressed
        parents = instance.parents()
        title = next(iter(instance.members("title")))
        book = next(iter(instance.members("book")))
        paper = next(iter(instance.members("paper")))
        assert sorted(parents[title]) == sorted([book, paper])
        assert parents[instance.root] == []

    def test_deep_chain_does_not_overflow(self):
        # 50k-deep chain: traversals must be iterative.
        instance = Instance()
        vertex = instance.new_vertex()
        for _ in range(50_000):
            vertex = instance.new_vertex(children=[(vertex, 1)])
        instance.set_root(vertex)
        assert len(instance.postorder()) == 50_001
        instance.validate()


class TestValidate:
    def test_cycle_detected(self):
        instance = Instance()
        a = instance.new_vertex()
        b = instance.new_vertex(children=[(a, 1)])
        instance.set_children(a, [(b, 1)])
        # Both have incoming edges; add a root above to isolate cycle check.
        root = instance.new_vertex(children=[(a, 1)])
        instance.set_root(root)
        with pytest.raises(InstanceError, match="cycle"):
            instance.validate()

    def test_second_source_detected(self):
        instance = Instance()
        instance.new_vertex()  # orphan vertex
        root = instance.new_vertex()
        instance.set_root(root)
        with pytest.raises(InstanceError, match="no incoming edge"):
            instance.validate()

    def test_root_with_incoming_edge_detected(self):
        instance = Instance()
        a = instance.new_vertex()
        root = instance.new_vertex(children=[(a, 1)])
        instance.set_children(a, [])
        instance.set_children(root, [(a, 1)])
        instance.set_root(a)
        with pytest.raises(InstanceError, match="root has incoming"):
            instance.validate()

    def test_valid_dag_passes(self, figure2_compressed):
        figure2_compressed.validate()


class TestCopyCompactReduct:
    def test_copy_is_independent(self, figure2_compressed):
        clone = figure2_compressed.copy()
        clone.add_to_set(clone.root, "marker")
        assert not figure2_compressed.has_set("marker")

    def test_compact_renumbers_root_to_zero(self, figure2_compressed):
        compact = figure2_compressed.compact()
        assert compact.root == 0
        compact.validate()
        assert compact.num_vertices == 5

    def test_compact_drops_unreachable(self):
        instance = Instance(["a"])
        instance.new_vertex(["a"])  # unreachable
        root = instance.new_vertex()
        instance.set_root(root)
        compact = instance.compact()
        assert compact.num_vertices == 1

    def test_reduct_restricts_schema(self, figure2_compressed):
        reduct = figure2_compressed.reduct(["author", "title"])
        assert reduct.schema == ("author", "title")
        assert len(reduct.members("author")) == 1

    def test_reduct_unknown_set_raises(self, figure2_compressed):
        with pytest.raises(SchemaError):
            figure2_compressed.reduct(["nope"])


class TestTreeInstance:
    def test_bib_tree_shape(self, bib_tree):
        bib_tree.validate()
        assert bib_tree.num_vertices == 12
        assert bib_tree.is_tree()
        assert len(bib_tree.members("author")) == 5

    def test_compressed_is_not_tree(self, figure2_compressed):
        assert not figure2_compressed.is_tree()

    def test_multi_label_nodes(self):
        instance = tree_instance((("a", "b"), []))
        assert instance.sets_at(instance.root) == ("a", "b")

    def test_to_dot_mentions_all_vertices(self, figure2_compressed):
        dot = figure2_compressed.to_dot()
        for vertex in figure2_compressed.preorder():
            assert f"v{vertex}" in dot
        assert "x3" in dot  # the multiplicity-3 author edge

    def test_repr(self, figure2_compressed):
        text = repr(figure2_compressed)
        assert "|V|=5" in text

"""Unit tests for the write-ahead journal's framing and recovery contract.

A journal survives exactly the failures the mutation path can hit:
torn final frames (crash mid-append) are detected and truncated, bad
checksums stop the replay scan cold, and compaction drops everything a
published version already covers.
"""

import os

import pytest

from repro.server.journal import JOURNAL_FILE, Journal


@pytest.fixture
def journal(tmp_path):
    return Journal(str(tmp_path / JOURNAL_FILE))


def test_append_and_read_roundtrip(journal):
    first = {"name": "d", "base_version": 1, "doc_version": 2, "mutations": []}
    second = {"name": "d", "base_version": 2, "doc_version": 3, "mutations": [1]}
    journal.append(first)
    journal.append(second)
    records, torn = journal.records()
    assert records == [first, second]
    assert torn == 0


def test_missing_file_reads_empty(journal):
    assert journal.records() == ([], 0)


def test_torn_tail_detected_and_replay_stops(journal):
    keep = {"doc_version": 2}
    journal.append(keep)
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write("deadbeef" * 4 + " {\"doc_version\": 3")  # no newline: torn
    records, torn = journal.records()
    assert records == [keep]
    assert torn == 1


def test_checksum_mismatch_stops_scan(journal):
    journal.append({"doc_version": 2})
    journal.append({"doc_version": 3})
    with open(journal.path, "r", encoding="utf-8") as handle:
        first, second = handle.readlines()
    # Flip a digest hex digit in the first frame: both frames are intact
    # JSON, but the scan must stop at the first bad checksum.
    broken = ("0" if first[0] != "0" else "1") + first[1:]
    with open(journal.path, "w", encoding="utf-8") as handle:
        handle.write(broken + second)
    records, torn = journal.records()
    assert records == []
    assert torn


def test_repair_truncates_garbage(journal):
    keep = {"doc_version": 5}
    journal.append(keep)
    with open(journal.path, "a", encoding="utf-8") as handle:
        handle.write("not a frame at all\n")
    assert journal.repair() == 1
    assert journal.records() == ([keep], 0)


def test_compact_drops_published_records(journal):
    for version in (2, 3, 4):
        journal.append({"doc_version": version})
    journal.compact(3)
    records, torn = journal.records()
    assert [record["doc_version"] for record in records] == [4]
    assert torn == 0


def test_compact_to_empty_removes_file(journal):
    journal.append({"doc_version": 2})
    journal.compact(2)
    assert not os.path.exists(journal.path)
    assert journal.records() == ([], 0)

"""The per-document write-ahead journal behind :meth:`Catalog.mutate`.

Durability protocol (two independent commit points, journal first):

1. The mutation batch is appended here — one framed record, flushed and
   fsynced — *before* any shredding work starts.
2. The new document version is staged to a side directory, renamed into
   place, and the manifest rewrite (the catalog's existing atomic
   tmp+``os.replace``) publishes it.  The manifest is the commit point.
3. After publish, records at or below the live version are compacted away.

A crash between 1 and 2 leaves an intent record whose version never made
the manifest; startup replay re-applies it deterministically from the
last published text.  A crash *during* 1 leaves a torn tail; framing makes
that detectable and truncation safe (the writer never got an acknowledged
append, so dropping the tail loses nothing that was promised).

Frame format — one record per line::

    <blake2b-16-hex-digest-of-payload> <compact-json-payload>\\n

The payload is ``json.dumps(..., separators=(",", ":"), sort_keys=True)``
— no embedded newlines, so a line either round-trips exactly through its
checksum or the record is torn/corrupt.  Keyed BLAKE2b is unnecessary:
this guards torn writes and bit rot, not adversaries.

The chaos seam ``catalog.journal`` fires on every append (op="append")
and just before the manifest commit (op="commit", fired by the catalog),
so tests can kill the process between the two commit points for real.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Iterable

from repro.server.resilience import FAULTS

#: Journal file name inside a document's catalog directory.
JOURNAL_FILE = "journal.wal"

_DIGEST_SIZE = 16  # bytes; 32 hex chars per frame header


def _digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return _digest(payload).encode("ascii") + b" " + payload + b"\n"


class Journal:
    """Framed, checksummed, append-only mutation intents for one document."""

    def __init__(self, path: str):
        self.path = path

    # -- writing ---------------------------------------------------------

    def append(self, record: dict) -> None:
        """Durably append one intent record (flush + fsync before return)."""
        FAULTS.fire("catalog.journal", op="append", path=self.path, record=record)
        with open(self.path, "ab") as handle:
            handle.write(_frame(record))
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading ---------------------------------------------------------

    def records(self) -> tuple[list[dict], bool]:
        """All intact records, plus whether a torn/corrupt tail was cut.

        Reading stops at the first bad frame: a record after a torn one
        cannot be trusted to have been acknowledged in order, and the
        append-only protocol means garbage only ever appears at the tail.
        """
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return [], False
        records: list[dict] = []
        offset = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                return records, True  # incomplete tail (no terminator)
            line = raw[offset:newline]
            space = line.find(b" ")
            if space != 2 * _DIGEST_SIZE:
                return records, True
            payload = line[space + 1 :]
            if line[:space].decode("ascii", "replace") != _digest(payload):
                return records, True
            try:
                record = json.loads(payload)
            except ValueError:
                return records, True
            if not isinstance(record, dict):
                return records, True
            records.append(record)
            offset = newline + 1
        return records, False

    # -- maintenance -----------------------------------------------------

    def _rewrite(self, records: Iterable[dict]) -> None:
        """Atomically replace the journal with exactly ``records``."""
        kept = list(records)
        if not kept:
            try:
                os.remove(self.path)
            except FileNotFoundError:
                pass
            return
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            for record in kept:
                handle.write(_frame(record))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)

    def repair(self) -> int:
        """Truncate a torn tail in place; returns 1 if anything was cut."""
        records, torn = self.records()
        if not torn:
            return 0
        self._rewrite(records)
        return 1

    def compact(self, published_version: int) -> None:
        """Drop records whose version is already live in the manifest."""
        records, torn = self.records()
        pending = [r for r in records if r.get("doc_version", 0) > published_version]
        if torn or len(pending) != len(records):
            self._rewrite(pending)

"""The canonical wire encodings every serving surface shares.

Two shapes cross process and network boundaries, and both are defined
here — once:

* **Result payloads** — :func:`encode_result` turns a decoded selection
  into the canonical ``{"dag_count", "tree_count", "paths"?}`` JSON
  object.  ``repro.server.service.decode_result`` (the HTTP wire format
  and the cluster worker protocol) and :meth:`repro.api.ResultSet.to_json`
  all delegate here, so "server response == direct evaluation" stays a
  byte comparison of canonical JSON.
* **Error envelopes** — :func:`error_envelope` produces the uniform
  ``{"error": {"kind", "message", "detail"}}`` body every HTTP route
  returns, and :data:`ERROR_KINDS` names the error families the worker
  wire protocol round-trips (:func:`error_kind` / :func:`rebuild_error`),
  so a fleet worker's failure carries the same ``kind`` string a
  single-process server would have produced.
"""

from __future__ import annotations

from itertools import islice

# Distinct from builtins.TimeoutError before 3.11, an alias after.
from concurrent.futures import TimeoutError as FuturesTimeoutError

from repro.errors import (
    CatalogError,
    ClusterError,
    DeadlineExceededError,
    IntegrityError,
    MutationError,
    OverloadedError,
    QuarantinedError,
    ReproError,
    WorkerUnavailableError,
    XPathCompileError,
    XPathSyntaxError,
)

#: Decompression guard when decoding result paths (same default as the CLI).
DEFAULT_LIMIT = 1_000_000

#: Server-side cap on how many result paths one response may carry.
MAX_PATHS = 10_000

#: Error-family names crossing process/network boundaries, mapped to the
#: exception type the receiving side re-raises.  Exceptions themselves are
#: never pickled — custom ones may not round-trip, and a malformed one
#: could take down a fleet response pump.  Insertion order is
#: most-specific-first (``worker-unavailable`` before its parent
#: ``cluster``, every family before the catch-all ``engine``), so the two
#: directions of the mapping cannot drift apart.
ERROR_KINDS = {
    "quarantined": QuarantinedError,
    "integrity": IntegrityError,
    "catalog": CatalogError,
    "mutation": MutationError,
    "xpath-syntax": XPathSyntaxError,
    "xpath-compile": XPathCompileError,
    "deadline_exceeded": DeadlineExceededError,
    "overloaded": OverloadedError,
    "timeout": FuturesTimeoutError,
    "worker-unavailable": WorkerUnavailableError,
    "cluster": ClusterError,
    "engine": ReproError,
}

#: HTTP-only kinds (request-shape problems that never cross the worker
#: wire): used by the routes for envelopes with no underlying exception.
REQUEST_KINDS = ("bad-request", "not-found", "payload-too-large", "internal")


def error_kind(error: BaseException) -> str:
    """The wire name of ``error``'s family (see :data:`ERROR_KINDS`)."""
    for kind, exception_type in ERROR_KINDS.items():
        if isinstance(error, exception_type):
            return kind
    return "engine"


def rebuild_error(kind: str, message: str) -> Exception:
    """The receiving-side inverse of :func:`error_kind`."""
    return ERROR_KINDS.get(kind, ReproError)(message)


def error_detail(error: BaseException) -> dict | None:
    """Machine-readable location info some error families carry."""
    detail: dict = {}
    for attribute in ("position", "offset", "line", "column"):
        value = getattr(error, attribute, None)
        if isinstance(value, int) and value >= 0:
            detail[attribute] = value
    retry_after = getattr(error, "retry_after", None)
    if isinstance(retry_after, (int, float)) and retry_after >= 0:
        detail["retry_after"] = retry_after
    return detail or None


def error_envelope(
    error: BaseException | None = None,
    *,
    kind: str | None = None,
    message: str | None = None,
    detail: dict | None = None,
) -> dict:
    """The uniform JSON error body: ``{"error": {kind, message, detail}}``.

    Built either from an exception (``kind`` derived via
    :func:`error_kind`, location detail extracted when the error carries
    one) or from explicit parts for request-shape errors that have no
    exception behind them.
    """
    if error is not None:
        kind = kind or error_kind(error)
        message = message if message is not None else str(error)
        detail = detail if detail is not None else error_detail(error)
    return {
        "error": {
            "kind": kind or "internal",
            "message": message or "",
            "detail": detail,
        }
    }


def encode_path(path: tuple[int, ...]) -> str:
    """One edge path in the canonical dotted form (``"(root)"`` for ())."""
    return ".".join(map(str, path)) or "(root)"


def decode_path(text: str) -> tuple[int, ...]:
    """Inverse of :func:`encode_path` (used by served result cursors)."""
    if text == "(root)":
        return ()
    return tuple(int(part) for part in text.split("."))


def encode_result(result, paths: int = 0, limit: int = DEFAULT_LIMIT) -> dict:
    """Encode a :class:`repro.engine.results.QueryResult` selection.

    This is THE canonical response payload — the benchmarks build their
    expected payloads through the same function the server uses, so
    correctness gates are byte comparisons of canonical JSON.
    """
    payload: dict = {
        "dag_count": result.dag_count(),
        "tree_count": result.tree_count(),
    }
    if paths:
        payload["paths"] = [
            encode_path(path)
            for path, _ in islice(
                result.iter_tree_matches(limit=limit), min(paths, MAX_PATHS)
            )
        ]
    return payload

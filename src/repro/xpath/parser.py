"""Recursive-descent parser for the Core XPath fragment.

Grammar (whitespace-insensitive)::

    query      := path
    path       := '/' [relpath] | '//' relpath | relpath
    relpath    := step (('/' | '//') step)*
    step       := (axis '::')? nodetest predicate*
    nodetest   := NAME | '*'
    predicate  := '[' or_expr ']'
    or_expr    := and_expr ('or' and_expr)*
    and_expr   := unary ('and' unary)*
    unary      := 'not' '(' or_expr ')' | '(' or_expr ')' | STRING | path

``//`` desugars to an explicit ``descendant-or-self::*`` step.  ``and``,
``or`` and ``not`` are reserved words inside predicates (they cannot be used
as tag names there — none of the paper's corpora need that).
"""

from __future__ import annotations

from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    AXES,
    AndExpr,
    Expr,
    LocationPath,
    NotExpr,
    OrExpr,
    PathUnion,
    Step,
    StringExpr,
)
from repro.xpath.lexer import Token, lex

_DOS_STAR = Step("descendant-or-self", "*")
_RESERVED = {"and", "or", "not"}


class _Parser:
    def __init__(self, query: str):
        self.query = query
        self.tokens = lex(query)
        self.index = 0

    # -- token helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, kind: str) -> Token | None:
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise XPathSyntaxError(
                f"expected {kind}, found {self.current.kind} ({self.current.value!r})",
                position=self.current.position,
            )
        return self.advance()

    # -- grammar -------------------------------------------------------

    def parse(self) -> LocationPath | PathUnion:
        paths = [self.path()]
        while self.accept("PIPE"):
            paths.append(self.path())
        if self.current.kind != "EOF":
            raise XPathSyntaxError(
                f"trailing input {self.current.value!r}", position=self.current.position
            )
        return paths[0] if len(paths) == 1 else PathUnion(tuple(paths))

    def path(self) -> LocationPath:
        steps: list[Step] = []
        if self.accept("DSLASH"):
            steps.append(_DOS_STAR)
            steps.extend(self.relative_steps())
            return LocationPath(absolute=True, steps=tuple(steps))
        if self.accept("SLASH"):
            if self._at_step_start():
                steps.extend(self.relative_steps())
            return LocationPath(absolute=True, steps=tuple(steps))
        return LocationPath(absolute=False, steps=tuple(self.relative_steps()))

    def relative_steps(self) -> list[Step]:
        steps = [self.step()]
        while True:
            if self.accept("DSLASH"):
                steps.append(_DOS_STAR)
                steps.append(self.step())
            elif self.accept("SLASH"):
                steps.append(self.step())
            else:
                return steps

    def _at_step_start(self) -> bool:
        token = self.current
        if token.kind == "STAR":
            return True
        return token.kind == "NAME" and token.value not in _RESERVED

    def step(self) -> Step:
        axis = "child"
        token = self.current
        if token.kind == "NAME" and self.tokens[self.index + 1].kind == "AXISSEP":
            if token.value not in AXES:
                raise XPathSyntaxError(
                    f"unknown axis {token.value!r}", position=token.position
                )
            axis = token.value
            self.advance()
            self.advance()
        test = self.node_test()
        predicates = []
        while self.accept("LBRACKET"):
            predicates.append(self.or_expr())
            self.expect("RBRACKET")
        return Step(axis, test, tuple(predicates))

    def node_test(self) -> str:
        if self.accept("STAR"):
            return "*"
        token = self.current
        if token.kind == "NAME":
            if token.value in _RESERVED:
                raise XPathSyntaxError(
                    f"{token.value!r} is reserved inside predicates",
                    position=token.position,
                )
            return self.advance().value
        raise XPathSyntaxError(
            f"expected a node test, found {token.kind} ({token.value!r})",
            position=token.position,
        )

    def or_expr(self) -> Expr:
        parts = [self.and_expr()]
        while self.current.kind == "NAME" and self.current.value == "or":
            self.advance()
            parts.append(self.and_expr())
        return parts[0] if len(parts) == 1 else OrExpr(tuple(parts))

    def and_expr(self) -> Expr:
        parts = [self.unary()]
        while self.current.kind == "NAME" and self.current.value == "and":
            self.advance()
            parts.append(self.unary())
        return parts[0] if len(parts) == 1 else AndExpr(tuple(parts))

    def unary(self) -> Expr:
        token = self.current
        if token.kind == "NAME" and token.value == "not":
            self.advance()
            self.expect("LPAREN")
            inner = self.or_expr()
            self.expect("RPAREN")
            return NotExpr(inner)
        if self.accept("LPAREN"):
            inner = self.or_expr()
            self.expect("RPAREN")
            return inner
        if token.kind == "STRING":
            return StringExpr(self.advance().value)
        if token.kind in {"SLASH", "DSLASH"} or self._at_step_start():
            return self.path()
        raise XPathSyntaxError(
            f"expected a predicate expression, found {token.kind} ({token.value!r})",
            position=token.position,
        )


def parse_query(query: str) -> LocationPath | PathUnion:
    """Parse a Core XPath query string into an AST.

    Returns a :class:`LocationPath`, or a :class:`PathUnion` for top-level
    ``path1 | path2`` queries.
    """
    return _Parser(query).parse()

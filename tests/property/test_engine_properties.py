"""Property-based tests for the query engine.

The central invariant of the paper: evaluating on the compressed instance
and decoding the selection gives exactly the nodes the baseline tree engine
selects on the decompressed tree — for random instances and random algebra
expressions, with both axis implementations (functional rebuild and the
Figure 4 in-place splitter).
"""

from hypothesis import given, settings, strategies as st

from repro.engine.evaluator import evaluate
from repro.model.paths import tree_size
from repro.xpath.algebra import (
    AllNodes,
    AxisApply,
    Difference,
    Intersect,
    NamedSet,
    RootSet,
    Union,
)
from repro.xpath.ast import AXES

from tests.conftest import LABELS, random_dag_instances
from tests.engine.util import engine_paths, oracle_paths

_AXIS_LIST = sorted(AXES)
_SPLITTING = {
    "child",
    "descendant",
    "descendant-or-self",
    "following-sibling",
    "preceding-sibling",
}


def algebra_expressions(max_depth: int = 3):
    leaves = st.one_of(
        st.sampled_from([NamedSet(label) for label in LABELS]),
        st.just(RootSet()),
        st.just(AllNodes()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(_AXIS_LIST), children).map(
                lambda t: AxisApply(t[0], t[1])
            ),
            st.tuples(children, children).map(lambda t: Union(t[0], t[1])),
            st.tuples(children, children).map(lambda t: Intersect(t[0], t[1])),
            st.tuples(children, children).map(lambda t: Difference(t[0], t[1])),
        )

    return st.recursive(leaves, extend, max_leaves=4)


@given(random_dag_instances(), algebra_expressions())
@settings(max_examples=150, deadline=None)
def test_compressed_engines_match_tree_oracle(instance, expr):
    if tree_size(instance) > 4000:
        return  # keep the oracle cheap
    expected = oracle_paths(instance, expr)
    assert engine_paths(instance, expr, "functional") == expected
    assert engine_paths(instance, expr, "inplace") == expected


@given(random_dag_instances(), st.sampled_from(_AXIS_LIST), st.sampled_from(LABELS))
@settings(max_examples=150, deadline=None)
def test_single_axis_matches_oracle(instance, axis, label):
    if tree_size(instance) > 4000:
        return
    expr = AxisApply(axis, NamedSet(label))
    expected = oracle_paths(instance, expr)
    assert engine_paths(instance, expr, "functional") == expected
    assert engine_paths(instance, expr, "inplace") == expected


@given(random_dag_instances(), st.sampled_from(sorted(_SPLITTING)), st.sampled_from(LABELS))
@settings(max_examples=100, deadline=None)
def test_splitting_axes_at_most_double(instance, axis, label):
    """Proposition 3.2 / the growth argument behind Theorem 3.6.

    Vertices and *expanded* edges at most double per operation.  Run-length
    edge *entries* can grow 4x under the sibling axes (2x from vertex
    splitting times 2x from multiplicity-run splitting, e.g. ``(w, 3)`` ->
    ``(w, 1)(w', 2)`` under two parent variants) — a subtlety the paper's
    "at most doubles" wording glosses over; its |E| is the expanded count.
    """
    before_v = len(instance.preorder())
    reachable = instance.preorder()
    before_entries = sum(len(instance.children(v)) for v in reachable)
    before_expanded = sum(instance.out_degree(v) for v in reachable)
    result = evaluate(instance, AxisApply(axis, NamedSet(label)))
    after = result.instance.preorder()
    after_v = len(after)
    after_entries = sum(len(result.instance.children(v)) for v in after)
    after_expanded = sum(result.instance.out_degree(v) for v in after)
    assert after_v <= 2 * before_v
    assert after_expanded <= 2 * before_expanded
    if axis in ("child", "descendant", "descendant-or-self"):
        assert after_entries <= 2 * before_entries  # runs never split downward
    else:
        assert after_entries <= 4 * before_entries


@given(random_dag_instances(), st.sampled_from(["self", "parent", "ancestor", "ancestor-or-self"]), st.sampled_from(LABELS))
@settings(max_examples=100, deadline=None)
def test_upward_axes_never_change_structure(instance, axis, label):
    """Proposition 3.3 as a property."""
    before = (
        len(instance.preorder()),
        sum(len(instance.children(v)) for v in instance.preorder()),
    )
    result = evaluate(instance, AxisApply(axis, NamedSet(label)))
    after = (
        len(result.instance.preorder()),
        sum(len(result.instance.children(v)) for v in result.instance.preorder()),
    )
    assert before == after


@given(random_dag_instances(), algebra_expressions())
@settings(max_examples=60, deadline=None)
def test_result_is_equivalent_instance(instance, expr):
    """Partial decompression must preserve the represented tree (section 3.3)."""
    from repro.model.equivalence import equivalent

    if tree_size(instance) > 4000:
        return
    result = evaluate(instance, expr)
    final = result.instance.compact()
    original_names = sorted(set(instance.schema))
    assert equivalent(final.reduct(original_names), instance.reduct(original_names))


@given(random_dag_instances(), algebra_expressions())
@settings(max_examples=60, deadline=None)
def test_tree_count_equals_decoded_paths(instance, expr):
    if tree_size(instance) > 4000:
        return
    result = evaluate(instance, expr)
    assert result.tree_count() == len(result.tree_paths())

"""Query engine: axes on compressed instances, evaluators, result decoding."""

from repro.engine.axes_compressed import apply_axis
from repro.engine.axes_inplace import downward_axis_inplace
from repro.engine.axes_tree import TreeIndex, tree_axis
from repro.engine.evaluator import CompressedEvaluator, evaluate
from repro.engine.pipeline import Engine, load_for_query, load_instance, query
from repro.engine.results import QueryResult
from repro.engine.tree_evaluator import TreeEvaluator, TreeResult, evaluate_on_tree

__all__ = [
    "CompressedEvaluator",
    "Engine",
    "QueryResult",
    "TreeEvaluator",
    "TreeIndex",
    "TreeResult",
    "apply_axis",
    "downward_axis_inplace",
    "evaluate",
    "evaluate_on_tree",
    "load_for_query",
    "load_instance",
    "query",
    "tree_axis",
]

"""Streaming construction of compressed instances (section 4 of the paper).

``DagBuilder`` is the paper's one-scan algorithm: a stack holding the list of
(already compressed) siblings for every open node on the path from the root
to the current parse position, plus a hash table of interned nodes.  When a
node ends, its children are already interned, so the redundancy check is one
(amortised constant time) lookup, giving an overall linear-time build of the
*minimal* instance directly from a SAX event stream — the original tree is
never materialised.

Sibling lists are run-length compressed incrementally, so a node with a
million identical children costs one list entry, which is what makes the
``O(C + log R)`` claim for XML-ised relational data (section 1) real.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InstanceError
from repro.model.instance import Edge, Instance


class DagBuilder:
    """Build a minimal instance bottom-up from open/close events.

    Usage for a document with root element handled by the caller::

        builder = DagBuilder(schema)
        builder.start_node()          # <a>
        builder.start_node()          # <b>
        builder.end_node(("b",))      # </b>
        builder.end_node(("a",))      # </a>
        instance = builder.finish()

    ``end_node`` returns the interned vertex id, so equal subtrees report
    equal ids — callers may use this for their own memoisation.
    """

    __slots__ = ("_instance", "_cons", "_stack")

    def __init__(self, schema: Iterable[str] = ()):
        self._instance = Instance(schema)
        self._cons: dict[tuple, int] = {}
        self._stack: list[list[Edge]] = [[]]

    @property
    def depth(self) -> int:
        """Number of currently open nodes."""
        return len(self._stack) - 1

    @property
    def instance(self) -> Instance:
        """The instance under construction (no root until :meth:`finish`)."""
        return self._instance

    def ensure_set(self, name: str) -> int:
        """Expose schema management of the underlying instance."""
        return self._instance.ensure_set(name)

    def mask_of(self, names: Iterable[str]) -> int:
        """Precompute a membership mask for :meth:`end_node_masked`."""
        mask = 0
        for name in names:
            mask |= 1 << self._instance.ensure_set(name)
        return mask

    def start_node(self) -> None:
        """Open a node; subsequent ends become its children until closed."""
        self._stack.append([])

    def end_node(self, sets: Iterable[str] = ()) -> int:
        """Close the current node with the given set memberships."""
        return self.end_node_masked(self.mask_of(sets))

    def end_node_masked(self, mask: int) -> int:
        """Close the current node (fast path: precomputed mask)."""
        if len(self._stack) < 2:
            raise InstanceError("end_node without matching start_node")
        children = tuple(self._stack.pop())
        vertex = self._intern(mask, children)
        self._append(vertex, 1)
        return vertex

    def leaf(self, sets: Iterable[str] = ()) -> int:
        """Convenience: a start/end pair with no children."""
        self.start_node()
        return self.end_node(sets)

    def leaf_masked(self, mask: int) -> int:
        children: tuple[Edge, ...] = ()
        vertex = self._intern(mask, children)
        self._append(vertex, 1)
        return vertex

    def repeat_last(self, extra: int) -> None:
        """Add ``extra`` more copies of the most recently closed sibling.

        Lets generators emit huge repetitive regions in O(1): the sibling
        list grows a multiplicity instead of an entry.
        """
        siblings = self._stack[-1]
        if not siblings:
            raise InstanceError("repeat_last with no previous sibling")
        if extra < 0:
            raise InstanceError("repeat count must be non-negative")
        child, count = siblings[-1]
        siblings[-1] = (child, count + extra)

    def finish(self) -> Instance:
        """Close the build; exactly one top-level node must remain — the root."""
        if len(self._stack) != 1:
            raise InstanceError(f"{len(self._stack) - 1} nodes still open at finish")
        top = self._stack[0]
        if len(top) != 1 or top[0][1] != 1:
            raise InstanceError("document must have exactly one root node")
        self._instance.set_root(top[0][0])
        return self._instance

    # ------------------------------------------------------------------

    def _intern(self, mask: int, children: tuple[Edge, ...]) -> int:
        key = (mask, children)
        vertex = self._cons.get(key)
        if vertex is None:
            vertex = self._instance.new_vertex_masked(mask, children)
            self._cons[key] = vertex
        return vertex

    def _append(self, vertex: int, count: int) -> None:
        siblings = self._stack[-1]
        if siblings and siblings[-1][0] == vertex:
            siblings[-1] = (vertex, siblings[-1][1] + count)
        else:
            siblings.append((vertex, count))

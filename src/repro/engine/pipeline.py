"""The end-to-end pipeline of section 4: document + query -> result.

Given a query, only the tags and string constraints it mentions are needed
in the instance schema; :func:`load_for_query` performs the paper's one-scan
extraction over exactly that schema, and :func:`query` runs the full
pipeline.  :class:`Engine` caches per-schema instances for a document so
repeated queries with the same leaf sets skip the parse (the paper re-parses
per query; both behaviours are measurable in the benchmarks).
"""

from __future__ import annotations

from repro.model.instance import Instance
from repro.skeleton.loader import LoadResult, load
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.results import QueryResult
from repro.xpath.algebra import AlgebraExpr
from repro.xpath.compiler import compile_query, required_strings, required_tags
from repro.xpath.parser import parse_query


def load_for_query(text: str, query_text: str) -> LoadResult:
    """One-scan load of exactly the schema ``query_text`` needs (section 4).

    Queries with ``@name`` steps automatically switch the loader into
    attribute-node mode (the extension of the paper's attribute-free model).
    """
    tags = sorted(required_tags(query_text))
    strings = sorted(required_strings(query_text))
    attributes = "nodes" if any(tag.startswith("@") for tag in tags) else "ignore"
    return load(text, tags=tags, strings=strings, attributes=attributes)


def query(
    source: str | Instance,
    query_text: str,
    context: str | None = None,
    axes: str = "functional",
) -> QueryResult:
    """Evaluate ``query_text`` against XML text or a pre-loaded instance.

    When ``source`` is XML text, the document is parsed into a compressed
    instance over the query's schema first (the measured pipeline of
    Figure 7); when it is an :class:`Instance`, its schema must already
    contain the sets the query mentions.
    """
    if isinstance(source, Instance):
        instance = source
    else:
        instance = load_for_query(source, query_text).instance
    evaluator = CompressedEvaluator(instance, context=context, axes=axes)
    return evaluator.evaluate(query_text)


class Engine:
    """A document holder answering many queries.

    ``reparse_per_query=True`` reproduces the paper's experimental setup
    (re-extract a fresh minimal instance for each query's schema);
    ``False`` caches instances per schema.

    Independently of instance caching, the engine keeps a *compiled-algebra
    cache* keyed by query text: parsing and compiling a query happens once,
    and repeats of the same query string go straight to evaluation.  The
    schema key (required tags/strings) is derived from the compile step and
    cached alongside, so a repeated query does not re-parse its text at all.
    """

    def __init__(self, text: str, reparse_per_query: bool = True, axes: str = "functional"):
        self._text = text
        self._reparse = reparse_per_query
        self._axes = axes
        self._cache: dict[tuple[tuple[str, ...], tuple[str, ...]], Instance] = {}
        self._compiled: dict[str, tuple[AlgebraExpr, tuple[tuple[str, ...], tuple[str, ...]]]] = {}
        self.last_load: LoadResult | None = None

    def compiled(self, query_text: str) -> AlgebraExpr:
        """The compiled algebra of ``query_text`` (cached per query text)."""
        return self._compiled_entry(query_text)[0]

    #: Bound on distinct query texts kept compiled (oldest evicted first), so
    #: a long-lived engine fed generated queries cannot grow without limit.
    COMPILED_CACHE_LIMIT = 1024

    def _compiled_entry(
        self, query_text: str
    ) -> tuple[AlgebraExpr, tuple[tuple[str, ...], tuple[str, ...]]]:
        entry = self._compiled.get(query_text)
        if entry is None:
            ast = parse_query(query_text)  # one parse feeds all three derivations
            expr = compile_query(ast)
            key = (
                tuple(sorted(required_tags(ast))),
                tuple(sorted(required_strings(ast))),
            )
            entry = (expr, key)
            while len(self._compiled) >= self.COMPILED_CACHE_LIMIT:
                self._compiled.pop(next(iter(self._compiled)))
            self._compiled[query_text] = entry
        return entry

    def instance_for(self, query_text: str) -> Instance:
        """The compressed instance over the query's schema (maybe cached)."""
        key = self._compiled_entry(query_text)[1]
        if not self._reparse and key in self._cache:
            return self._cache[key]
        attributes = "nodes" if any(tag.startswith("@") for tag in key[0]) else "ignore"
        result = load(
            self._text, tags=list(key[0]), strings=list(key[1]), attributes=attributes
        )
        self.last_load = result
        if not self._reparse:
            self._cache[key] = result.instance
        return result.instance

    def query(self, query_text: str, context: str | None = None) -> QueryResult:
        expr, _ = self._compiled_entry(query_text)
        instance = self.instance_for(query_text)
        evaluator = CompressedEvaluator(instance, context=context, axes=self._axes)
        return evaluator.evaluate(expr)

    def explain(self, query_text: str) -> str:
        """Render the compiled algebra tree (the Figure 3 view of a query)."""
        return self.compiled(query_text).render()


# Re-exported via the top-level package for the quick-start API.
def load_instance(text: str, query_text: str | None = None, **kwargs) -> Instance:
    """Load ``text`` as a compressed instance.

    With ``query_text`` the schema is derived from the query (section 4);
    otherwise pass ``tags=`` / ``strings=`` through to the skeleton loader.
    """
    if query_text is not None:
        return load_for_query(text, query_text).instance
    return load(text, **kwargs).instance

"""Property tests pinning the optimizer's soundness contract.

The contract (docs/optimizer.md, DESIGN.md section 13): for ANY document
and ANY plan, evaluating the optimized plan yields the byte-identical
result payload — same DAG vertex count, same exact tree-node count, same
decoded paths — as the unoptimized plan on the same instance, with and
without the runtime short-circuit.  Tree counts and paths would follow
from set-semantics equivalence alone; the DAG count additionally pins
that rewrites never change which vertex splits evaluation performs.
"""

from hypothesis import given, settings, strategies as st

from repro.compress.stats import DocumentStats
from repro.engine.evaluator import CompressedEvaluator
from repro.model.paths import tree_size
from repro.xpath.algebra import (
    AllNodes,
    AxisApply,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
)
from repro.xpath.ast import AXES
from repro.xpath.optimizer import optimize

from tests.conftest import LABELS, random_dag_instances

_AXIS_LIST = sorted(AXES)

#: Beyond the suite-wide labels, an always-absent tag so fold-empty-set
#: and empty-propagation actually fire on random plans.
_SET_NAMES = LABELS + ("missing",)


def algebra_expressions(max_leaves: int = 4):
    leaves = st.one_of(
        st.sampled_from([NamedSet(name) for name in _SET_NAMES]),
        st.just(RootSet()),
        st.just(AllNodes()),
    )

    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(_AXIS_LIST), children).map(
                lambda t: AxisApply(t[0], t[1])
            ),
            st.tuples(children, children).map(lambda t: Union(t[0], t[1])),
            st.tuples(children, children).map(lambda t: Intersect(t[0], t[1])),
            st.tuples(children, children).map(lambda t: Difference(t[0], t[1])),
            children.map(RootFilter),
        )

    return st.recursive(leaves, extend, max_leaves=max_leaves)


def _payload(instance, expr, short_circuit: bool) -> tuple:
    """The byte-identity triple: (dag_count, tree_count, sorted paths)."""
    working = instance.copy()
    working.ensure_set("missing")
    evaluator = CompressedEvaluator(
        working, axes="functional", copy=False, short_circuit=short_circuit
    )
    result = evaluator.evaluate(expr)
    return (result.dag_count(), result.tree_count(), tuple(sorted(result.tree_paths())))


@given(random_dag_instances(), algebra_expressions())
@settings(max_examples=150, deadline=None)
def test_optimized_plan_payload_is_byte_identical(instance, expr):
    if tree_size(instance) > 4000:
        return
    stats_source = instance.copy()
    stats_source.ensure_set("missing")
    stats = DocumentStats.from_instance(stats_source, complete_tags=True)
    optimization = optimize(expr, stats)
    baseline = _payload(instance, expr, short_circuit=False)
    assert _payload(instance, optimization.expr, short_circuit=False) == baseline
    assert _payload(instance, optimization.expr, short_circuit=True) == baseline


@given(random_dag_instances(), algebra_expressions())
@settings(max_examples=100, deadline=None)
def test_short_circuit_alone_is_byte_identical(instance, expr):
    """The runtime guard is sound even on unrewritten plans."""
    if tree_size(instance) > 4000:
        return
    assert _payload(instance, expr, short_circuit=True) == _payload(
        instance, expr, short_circuit=False
    )


@given(random_dag_instances(), st.sampled_from(LABELS))
@settings(max_examples=100, deadline=None)
def test_tag_estimates_are_exact(instance, label):
    """For a tag leaf the 'estimate' is the catalog's exact tree count."""
    from repro.model.paths import selected_tree_count

    stats = DocumentStats.from_instance(instance, complete_tags=True)
    result = optimize(NamedSet(label), stats)
    estimate = result.estimates[id(result.expr)]
    exact = selected_tree_count(instance, label)
    assert estimate == float(min(exact, 10**300))


@given(random_dag_instances(), algebra_expressions())
@settings(max_examples=100, deadline=None)
def test_estimates_stay_in_bounds(instance, expr):
    """Every node estimate lies in [0, tree_nodes] — the clamp invariant."""
    stats_source = instance.copy()
    stats_source.ensure_set("missing")
    stats = DocumentStats.from_instance(stats_source, complete_tags=True)
    optimization = optimize(expr, stats)
    ceiling = min(float(stats.tree_nodes), 1e300)
    stack = [optimization.expr]
    while stack:
        node = stack.pop()
        estimate = optimization.estimates[id(node)]
        assert 0.0 <= estimate <= ceiling
        stack.extend(node.children())

"""End-to-end tests of the optimizer across catalog, service and routes.

Covers the persisted statistics lifecycle (publish → stats.json → load),
the version-stamp fallback (no stats, torn stats, old stats: serve the
unoptimized plan, never error), service-level byte-identity of optimized
vs. unoptimized answers, and the ``/explain`` analyze contract over HTTP.
"""

import json
import os

import pytest

from repro.compress.stats import STATS_FORMAT_VERSION
from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready
from repro.server.service import QueryService

from tests.skeleton.test_loader import BIB_XML

QUERIES = [
    "//author",
    "//book/author",
    "/bib/paper/title",
    '//paper[author["Codd"]]',
    "//absenttag",
    "//absenttag/title",
    "//paper[child::absenttag]/title",
    "descendant::paper/following-sibling::paper",
]


@pytest.fixture
def catalog(tmp_path):
    catalog = Catalog(str(tmp_path / "cat"))
    catalog.add("bib", BIB_XML)
    return catalog


def stats_path(catalog, name):
    return os.path.join(catalog.root, name, "stats.json")


class TestStatsPersistence:
    def test_publish_writes_versioned_stats(self, catalog):
        entry = catalog.entry("bib")
        assert entry.stats_version == STATS_FORMAT_VERSION
        assert entry.skeleton_version >= 1
        with open(stats_path(catalog, "bib"), encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["format_version"] == STATS_FORMAT_VERSION
        assert payload["complete_tags"] is True

    def test_document_stats_loads_and_caches(self, catalog):
        stats = catalog.document_stats("bib")
        assert stats is not None
        assert stats.tree_count("author") == 5
        assert stats.is_empty("absenttag")  # complete tag universe
        assert catalog.document_stats("bib") is stats  # cached object

    def test_fresh_catalog_instance_reads_persisted_stats(self, catalog):
        reread = Catalog(catalog.root)
        stats = reread.document_stats("bib")
        assert stats is not None
        assert stats.tree_count("paper") == 2

    def test_missing_stats_file_falls_back(self, catalog):
        os.remove(stats_path(catalog, "bib"))
        assert Catalog(catalog.root).document_stats("bib") is None

    def test_torn_stats_file_falls_back(self, catalog):
        with open(stats_path(catalog, "bib"), "w", encoding="utf-8") as handle:
            handle.write('{"format_version": 1, "tree_no')
        assert Catalog(catalog.root).document_stats("bib") is None

    def test_old_stats_version_falls_back(self, catalog):
        manifest = os.path.join(catalog.root, "catalog.json")
        with open(manifest, encoding="utf-8") as handle:
            raw = json.load(handle)
        for entry in raw["documents"]:
            entry["stats_version"] = STATS_FORMAT_VERSION + 1
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        assert Catalog(catalog.root).document_stats("bib") is None

    def test_pre_stats_manifest_loads(self, catalog):
        """A manifest written before the stats catalog existed (no
        ``stats_version`` field at all) still loads and serves queries."""
        manifest = os.path.join(catalog.root, "catalog.json")
        with open(manifest, encoding="utf-8") as handle:
            raw = json.load(handle)
        for entry in raw["documents"]:
            entry.pop("stats_version", None)
            entry.pop("skeleton_version", None)
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(raw, handle)
        reread = Catalog(catalog.root)
        assert reread.entry("bib").stats_version == 0
        assert reread.document_stats("bib") is None
        service = QueryService(reread)
        try:
            payload = service.query("bib", "//author")
            assert payload["tree_count"] == 5
        finally:
            service.close()

    def test_remove_drops_cached_stats(self, catalog):
        assert catalog.document_stats("bib") is not None
        catalog.remove("bib")
        with pytest.raises(Exception):
            catalog.document_stats("bib")


class TestServiceByteIdentity:
    @pytest.mark.parametrize("mode", ["snapshot", "persistent"])
    def test_optimized_matches_unoptimized(self, catalog, mode):
        plain = QueryService(catalog, mode=mode, optimize=False)
        tuned = QueryService(catalog, mode=mode, optimize=True)
        try:
            for query in QUERIES:
                expected = plain.query("bib", query, paths=10)
                actual = tuned.query("bib", query, paths=10)
                expected.pop("seconds", None)
                actual.pop("seconds", None)
                assert actual == expected, query
        finally:
            plain.close()
            tuned.close()

    def test_stats_report_optimize_flag(self, catalog):
        service = QueryService(catalog, optimize=True)
        try:
            assert service.stats_dict()["optimize"] is True
        finally:
            service.close()

    def test_unoptimized_service_explains_without_optimizer_block(self, catalog):
        service = QueryService(catalog, optimize=False)
        try:
            plan = service.explain("bib", "//absenttag/title")["plan"]
            assert "optimizer" not in plan
        finally:
            service.close()


class TestExplainAnalyze:
    def test_explain_reports_estimates_and_rules(self, catalog):
        service = QueryService(catalog)
        try:
            plan = service.explain("bib", "//book/author")["plan"]
            block = plan["optimizer"]
            assert block["stats_available"] is True
            assert "root-axis-identity" in block["rules_applied"]
            assert "unoptimized" in block
            assert isinstance(plan["algebra"]["est_cardinality"], float)
        finally:
            service.close()

    def test_analyze_attaches_actuals(self, catalog):
        service = QueryService(catalog)
        try:
            payload = service.explain("bib", "//book/author", analyze=True)
            assert payload["analyzed"] is True
            root = payload["plan"]["algebra"]
            assert root["actual"]["tree_count"] == 3  # the book's three authors
            stack, annotated = [root], 0
            while stack:
                node = stack.pop()
                if "actual" in node:
                    annotated += 1
                    assert set(node["actual"]) == {"dag_count", "tree_count"}
                stack.extend(node.get("children", ()))
            assert annotated >= 3
        finally:
            service.close()

    def test_analyze_of_folded_plan(self, catalog):
        service = QueryService(catalog)
        try:
            payload = service.explain("bib", "//absenttag/title", analyze=True)
            root = payload["plan"]["algebra"]
            assert root["op"] == "empty-set"
            assert root["actual"] == {"dag_count": 0, "tree_count": 0}
        finally:
            service.close()


@pytest.fixture
def server(catalog):
    import threading

    server = create_server(catalog.root, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def http_request(server, method, path, body=None):
    import http.client

    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestHTTPExplain:
    def test_get_explain_analyze(self, server):
        status, payload = http_request(
            server, "GET", "/explain?document=bib&query=%2F%2Fbook%2Fauthor&analyze=1"
        )
        assert status == 200
        assert payload["analyzed"] is True
        assert "actual" in payload["plan"]["algebra"]
        assert "optimizer" in payload["plan"]
        status, plain = http_request(
            server, "GET", "/explain?document=bib&query=%2F%2Fbook%2Fauthor"
        )
        assert status == 200
        assert "analyzed" not in plain
        assert "actual" not in plain["plan"]["algebra"]

    def test_post_explain_analyze(self, server):
        status, payload = http_request(
            server,
            "POST",
            "/explain",
            {"document": "bib", "query": "//author", "analyze": True},
        )
        assert status == 200
        assert payload["analyzed"] is True
        assert payload["plan"]["algebra"]["actual"]["tree_count"] == 5

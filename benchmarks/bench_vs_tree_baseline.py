"""Section 6's competitiveness claim: compressed vs uncompressed evaluation.

The paper argues compressed evaluation is competitive with (often faster
than) a traditional main-memory engine because shared subtrees are processed
once.  We evaluate the same Appendix A queries with the compressed engine on
M(T) and with the baseline set-at-a-time engine on the uncompressed tree
T, and report the speedup per corpus (selections verified equal up front in
the test suite; here we only time).
"""

from __future__ import annotations

import pytest

from repro.bench.queries import queries_for
from repro.bench.tables import format_table
from repro.compress.decompress import decompress
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query
from repro.engine.tree_evaluator import TreeEvaluator

from conftest import register_report

#: Corpora small enough to fully decompress in memory for the baseline.
CASES = [
    ("baseball", "Q2"),
    ("baseball", "Q3"),
    ("dblp", "Q2"),
    ("dblp", "Q3"),
    ("shakespeare", "Q2"),
    ("treebank", "Q2"),
]

_ROWS = []


@pytest.mark.parametrize("engine", ["compressed", "tree-baseline"])
@pytest.mark.parametrize("corpus,query_id", CASES)
def test_engine(benchmark, corpus_cache, corpus, query_id, engine):
    xml = corpus_cache(corpus)
    query_text = queries_for(corpus)[query_id]
    instance = load_for_query(xml, query_text).instance
    if engine == "compressed":
        timing = benchmark(
            lambda: CompressedEvaluator(instance).evaluate(query_text).dag_count()
        )
    else:
        tree = decompress(instance, limit=20_000_000).tree
        evaluator = TreeEvaluator(tree)
        timing = benchmark(lambda: evaluator.evaluate(query_text).count())
    _ROWS.append(
        [
            corpus,
            query_id,
            engine,
            f"{benchmark.stats.stats.mean * 1000:.2f}ms",
        ]
    )


def _report():
    if not _ROWS:
        return None
    # Pair up compressed/baseline rows per (corpus, query).
    by_case: dict[tuple, dict[str, str]] = {}
    for corpus, query_id, engine, mean in _ROWS:
        by_case.setdefault((corpus, query_id), {})[engine] = mean
    rows = []
    for (corpus, query_id), engines in sorted(by_case.items()):
        compressed = engines.get("compressed", "-")
        baseline = engines.get("tree-baseline", "-")
        speedup = "-"
        try:
            speedup = f"{float(baseline[:-2]) / float(compressed[:-2]):.1f}x"
        except (ValueError, ZeroDivisionError):
            pass
        rows.append([corpus, query_id, compressed, baseline, speedup])
    return format_table(
        ["corpus", "query", "compressed M(T)", "uncompressed T", "speedup"],
        rows,
        title="Section 6 — compressed engine vs uncompressed-tree baseline",
    )


register_report(_report)

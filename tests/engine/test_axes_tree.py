"""Tests for the reference tree axis functions (forward-image semantics)."""

import pytest

from repro.errors import EvaluationError
from repro.engine.axes_tree import TreeIndex, tree_axis
from repro.model.instance import tree_instance


@pytest.fixture
def small_tree():
    #        r
    #      / | \
    #     a  b  a
    #    /|     |
    #   c d     c
    return tree_instance(
        ("r", [("a", [("c", []), ("d", [])]), ("b", []), ("a", [("c", [])])]),
        schema=["r", "a", "b", "c", "d"],
    )


@pytest.fixture
def index(small_tree):
    return TreeIndex(small_tree)


def members(tree, name):
    return tree.members(name)


class TestTreeAxes:
    def test_child(self, small_tree, index):
        result = tree_axis(index, "child", members(small_tree, "a"))
        assert result == members(small_tree, "c") | members(small_tree, "d")

    def test_parent(self, small_tree, index):
        result = tree_axis(index, "parent", members(small_tree, "c"))
        assert result == members(small_tree, "a")

    def test_parent_of_root_is_empty(self, small_tree, index):
        assert tree_axis(index, "parent", {small_tree.root}) == set()

    def test_descendant(self, small_tree, index):
        result = tree_axis(index, "descendant", {small_tree.root})
        assert result == set(index.order) - {small_tree.root}

    def test_descendant_not_reflexive(self, small_tree, index):
        result = tree_axis(index, "descendant", members(small_tree, "a"))
        assert result == members(small_tree, "c") | members(small_tree, "d")

    def test_descendant_or_self(self, small_tree, index):
        a_nodes = members(small_tree, "a")
        result = tree_axis(index, "descendant-or-self", a_nodes)
        assert a_nodes <= result
        assert members(small_tree, "c") <= result

    def test_ancestor(self, small_tree, index):
        result = tree_axis(index, "ancestor", members(small_tree, "c"))
        assert result == members(small_tree, "a") | {small_tree.root}

    def test_ancestor_or_self(self, small_tree, index):
        c_nodes = members(small_tree, "c")
        result = tree_axis(index, "ancestor-or-self", c_nodes)
        assert c_nodes <= result
        assert small_tree.root in result

    def test_self(self, small_tree, index):
        selection = members(small_tree, "b")
        assert tree_axis(index, "self", selection) == selection

    def test_following_sibling(self, small_tree, index):
        first_a = min(members(small_tree, "a"))
        result = tree_axis(index, "following-sibling", {first_a})
        b = members(small_tree, "b")
        last_a = {max(members(small_tree, "a"))}
        assert result == b | last_a

    def test_preceding_sibling(self, small_tree, index):
        result = tree_axis(index, "preceding-sibling", members(small_tree, "b"))
        assert result == {min(members(small_tree, "a"))}

    def test_sibling_axes_within_one_parent_only(self, small_tree, index):
        # c and d are siblings under the first a; the other c has no siblings.
        result = tree_axis(index, "following-sibling", members(small_tree, "c"))
        assert result == members(small_tree, "d")

    def test_following(self, small_tree, index):
        # following(first c) = d (its following sibling), b, second a, second c.
        first_c = min(members(small_tree, "c"))
        result = tree_axis(index, "following", {first_c})
        expected = (
            members(small_tree, "d")
            | members(small_tree, "b")
            | {max(members(small_tree, "a")), max(members(small_tree, "c"))}
        )
        assert result == expected

    def test_preceding(self, small_tree, index):
        # preceding(b) = first a subtree (a, c, d) — not the root (ancestor).
        result = tree_axis(index, "preceding", members(small_tree, "b"))
        first_a = min(members(small_tree, "a"))
        assert result == {first_a} | members(small_tree, "c") - {
            max(members(small_tree, "c"))
        } | members(small_tree, "d")

    def test_following_excludes_descendants_and_ancestors(self, small_tree, index):
        first_a = min(members(small_tree, "a"))
        result = tree_axis(index, "following", {first_a})
        assert small_tree.root not in result
        assert members(small_tree, "d") & result == set()  # d is a descendant

    def test_unknown_axis_raises(self, index):
        with pytest.raises(EvaluationError, match="unknown axis"):
            tree_axis(index, "diagonal", set())

    def test_index_requires_tree(self, figure2_compressed):
        with pytest.raises(EvaluationError, match="requires a tree"):
            TreeIndex(figure2_compressed)

    def test_empty_selection_maps_to_empty(self, index):
        for axis in (
            "self",
            "child",
            "parent",
            "descendant",
            "ancestor",
            "descendant-or-self",
            "ancestor-or-self",
            "following-sibling",
            "preceding-sibling",
            "following",
            "preceding",
        ):
            assert tree_axis(index, axis, set()) == set()

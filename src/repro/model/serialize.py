"""Persistence of compressed instances.

The paper's motivation is storing skeletons compactly ("how we represent the
document in secondary storage"); this module provides a stable on-disk
format so a compressed instance can be built once and queried many times
without re-parsing the XML.

Format (version 1, line-oriented UTF-8 text):

    REPRO-DAG 1
    schema <n>
    <set name> x n            (one per line, order = bit position)
    root <vertex>
    vertices <n>
    <mask-hex> <child>:<count> <child>:<count> ...   (one line per vertex)

Masks are hexadecimal; edges are run-length pairs.  The format is
deliberately human-inspectable — instances are small, that is the point of
the paper.
"""

from __future__ import annotations

from typing import IO

from repro.errors import ReproError
from repro.model.instance import Instance

_MAGIC = "REPRO-DAG 1"


def dump(instance: Instance, stream: IO[str]) -> None:
    """Write ``instance`` to a text stream.

    The compacted form is written (unreachable vertices dropped, ids
    renumbered root-first), so files always round-trip through
    :func:`load`'s validation.
    """
    instance = instance.compact()
    stream.write(_MAGIC + "\n")
    schema = instance.schema
    stream.write(f"schema {len(schema)}\n")
    for name in schema:
        stream.write(name + "\n")
    stream.write(f"root {instance.root}\n")
    stream.write(f"vertices {instance.num_vertices}\n")
    row_masks = instance.row_masks()
    for vertex in range(instance.num_vertices):
        edges = " ".join(
            f"{child}:{count}" for child, count in instance.children(vertex)
        )
        mask = format(row_masks[vertex], "x")
        stream.write(f"{mask} {edges}".rstrip() + "\n")


def dumps(instance: Instance) -> str:
    """Serialise ``instance`` to a string."""
    import io

    buffer = io.StringIO()
    dump(instance, buffer)
    return buffer.getvalue()


def load(stream: IO[str]) -> Instance:
    """Read an instance written by :func:`dump` (validated)."""
    lines = iter(stream)

    def next_line() -> str:
        try:
            return next(lines).rstrip("\n")
        except StopIteration:
            raise ReproError("truncated instance file") from None

    if next_line() != _MAGIC:
        raise ReproError("not a REPRO-DAG file (bad magic line)")
    header = next_line().split()
    if len(header) != 2 or header[0] != "schema":
        raise ReproError("malformed schema header")
    schema = [next_line() for _ in range(int(header[1]))]
    root_line = next_line().split()
    if root_line[0] != "root":
        raise ReproError("malformed root line")
    root = int(root_line[1])
    count_line = next_line().split()
    if count_line[0] != "vertices":
        raise ReproError("malformed vertex-count line")
    total = int(count_line[1])

    instance = Instance(schema)
    # Two passes: create all vertices (with their masks) first, then wire
    # edges (forward references are legal in the file).
    rows = [next_line() for _ in range(total)]
    edge_rows: list[list[tuple[int, int]]] = []
    for vertex, row in enumerate(rows):
        parts = row.split()
        if not parts:
            raise ReproError(f"empty vertex row {vertex}")
        instance.new_vertex_masked(int(parts[0], 16))
        edges = []
        for pair in parts[1:]:
            child_text, _, count_text = pair.partition(":")
            edges.append((int(child_text), int(count_text)))
        edge_rows.append(edges)
    for vertex, edges in enumerate(edge_rows):
        if edges:
            instance.set_children(vertex, edges)
    instance.set_root(root)
    instance.validate()
    return instance


def loads(text: str) -> Instance:
    """Deserialise an instance from a string."""
    import io

    return load(io.StringIO(text))


def save_file(instance: Instance, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        dump(instance, handle)


def load_file(path: str) -> Instance:
    with open(path, "r", encoding="utf-8") as handle:
        return load(handle)

"""Tests for the repro command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def bib_file(tmp_path):
    from tests.skeleton.test_loader import BIB_XML

    path = tmp_path / "bib.xml"
    path.write_text(BIB_XML, encoding="utf-8")
    return str(path)


class TestCorpora:
    def test_lists_all(self, capsys):
        assert main(["corpora"]) == 0
        out = capsys.readouterr().out
        for name in ("dblp", "swissprot", "treebank", "baseball"):
            assert name in out


class TestGen:
    def test_writes_to_stdout(self, capsys):
        assert main(["gen", "tpcd", "--scale", "5"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("<?xml")
        assert "<table>" in out

    def test_writes_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.xml"
        assert main(["gen", "baseball", "--scale", "2", "-o", str(target)]) == 0
        assert target.read_text(encoding="utf-8").startswith("<?xml")
        assert "wrote" in capsys.readouterr().err

    def test_unknown_corpus_fails(self, capsys):
        assert main(["gen", "nosuch"]) == 1
        assert "unknown corpus" in capsys.readouterr().err


class TestCompress:
    def test_stats_output(self, bib_file, capsys):
        assert main(["compress", bib_file]) == 0
        out = capsys.readouterr().out
        assert "|V^T|: 13" in out
        assert "ratio" in out

    def test_tags_none(self, bib_file, capsys):
        assert main(["compress", bib_file, "--tags", "none"]) == 0

    def test_tag_list(self, bib_file, capsys):
        assert main(["compress", bib_file, "--tags", "book,author"]) == 0

    def test_dot_flag(self, bib_file, capsys):
        assert main(["compress", bib_file, "--dot"]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_missing_file(self, capsys):
        assert main(["compress", "/nonexistent.xml"]) == 1


class TestQuery:
    def test_counts(self, bib_file, capsys):
        assert main(["query", bib_file, "//author"]) == 0
        out = capsys.readouterr().out
        assert "selected tree nodes : 5" in out

    def test_paths_printed(self, bib_file, capsys):
        assert main(["query", bib_file, "//book/author", "--paths", "3"]) == 0
        out = capsys.readouterr().out
        assert "1.1.2" in out

    def test_inplace_axes(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "--axes", "inplace"]) == 0
        assert "selected tree nodes : 5" in capsys.readouterr().out

    def test_bad_query_fails(self, bib_file, capsys):
        assert main(["query", bib_file, "//a[["]) == 1
        assert "error" in capsys.readouterr().err

    def test_no_queries_fails(self, bib_file, capsys):
        assert main(["query", bib_file]) == 2
        assert "no queries" in capsys.readouterr().err

    def test_paths_bounded_work(self, tmp_path, capsys):
        # Regression: --paths N used to materialise up to --limit full edge
        # paths before slicing; with a limit smaller than the tree that
        # raised DecompressionLimitError even though only 2 paths were
        # requested. The lazy islice path stops after N matches.
        from repro.corpora.binary_tree import generate_xml

        path = tmp_path / "deep.xml"
        path.write_text(generate_xml(depth=8).xml, encoding="utf-8")
        assert main(["query", str(path), "//a", "--paths", "2", "--limit", "20"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n  ") == 2  # exactly two path lines printed


class TestQueryBatch:
    def test_multiple_xpaths_batched(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "//title"]) == 0
        out = capsys.readouterr().out
        assert "batch               : 2 queries" in out
        assert "shared work" in out
        assert "--- //author" in out and "--- //title" in out
        assert "selected tree nodes : 5" in out  # //author
        assert "selected tree nodes : 3" in out  # //title

    def test_workload_file(self, bib_file, tmp_path, capsys):
        workload = tmp_path / "mix.txt"
        workload.write_text(
            "# the bib mix\n//author\n\n//book/title\n", encoding="utf-8"
        )
        assert main(["query", bib_file, "--workload", str(workload)]) == 0
        out = capsys.readouterr().out
        assert "batch               : 2 queries" in out
        assert "--- //book/title" in out

    def test_positional_plus_workload(self, bib_file, tmp_path, capsys):
        workload = tmp_path / "mix.txt"
        workload.write_text("//title\n", encoding="utf-8")
        assert main(["query", bib_file, "//author", "--workload", str(workload)]) == 0
        assert "batch               : 2 queries" in capsys.readouterr().out

    def test_batch_matches_single_runs(self, bib_file, capsys):
        assert main(["query", bib_file, "//author", "//paper"]) == 0
        batched = capsys.readouterr().out
        assert main(["query", bib_file, "//author"]) == 0
        single = capsys.readouterr().out
        for line in single.splitlines():
            if line.startswith("selected"):
                assert line in batched

    def test_batch_paths_printed_per_query(self, bib_file, capsys):
        assert main(["query", bib_file, "//book/author", "//paper", "--paths", "1"]) == 0
        out = capsys.readouterr().out
        assert "1.1.2" in out  # first book author

    def test_batch_on_saved_dag(self, bib_file, tmp_path, capsys):
        dag = str(tmp_path / "bib.dag")
        assert main(["compress", bib_file, "--save", dag]) == 0
        capsys.readouterr()
        assert main(["query", dag, "//author", "//title"]) == 0
        out = capsys.readouterr().out
        assert "batch               : 2 queries" in out


class TestSavedInstances:
    def test_compress_save_then_query_dag(self, bib_file, tmp_path, capsys):
        dag = str(tmp_path / "bib.dag")
        assert main(["compress", bib_file, "--save", dag]) == 0
        capsys.readouterr()
        assert main(["query", dag, "//author"]) == 0
        out = capsys.readouterr().out
        assert "selected tree nodes : 5" in out
        assert "parse+compress time : 0.000s" in out  # no XML re-parse

    def test_compress_with_string_sets(self, bib_file, tmp_path, capsys):
        dag = str(tmp_path / "bib.dag")
        assert main(["compress", bib_file, "--string", "Codd", "--save", dag]) == 0
        capsys.readouterr()
        assert main(["query", dag, '//paper[author["Codd"]]']) == 0
        assert "selected tree nodes : 1" in capsys.readouterr().out


class TestExplain:
    def test_plan_rendered(self, capsys):
        assert main(["explain", "//a/b"]) == 0
        out = capsys.readouterr().out
        assert "descendant" in out and "L[a]" in out

    def test_upward_only_noted(self, capsys):
        assert main(["explain", "/self::*[a/b]"]) == 0
        assert "Corollary 3.7" in capsys.readouterr().out

"""Property-based tests for the model and compression invariants.

These check the paper's propositions on randomly generated instances:
compression round-trips (Props 2.2-2.5), bisimulation validity, lattice laws
and the streaming builder's agreement with batch compression.
"""

from hypothesis import given, settings

from repro.compress.builder import DagBuilder
from repro.compress.decompress import decompress
from repro.compress.minimize import is_compressed, minimize
from repro.compress.stats import instance_stats
from repro.model.bisimulation import (
    coarsest_bisimulation,
    identity_partition,
    is_bisimilarity,
    join,
    meet,
    quotient,
)
from repro.model.equivalence import equivalent, equivalent_by_paths
from repro.model.instance import tree_instance
from repro.model.paths import tree_size

from tests.conftest import LABELS, random_dag_instances, tree_specs


@given(tree_specs())
def test_minimize_round_trip(spec):
    """T(M(T)) is the original tree (Propositions 2.2 and 2.5)."""
    tree = tree_instance(spec, schema=LABELS)
    minimal = minimize(tree)
    assert is_compressed(minimal)
    assert equivalent(minimal, tree)
    restored = decompress(minimal).tree
    assert equivalent_by_paths(restored, tree)
    assert restored.num_vertices == tree.num_vertices


@given(tree_specs())
def test_minimize_never_grows(spec):
    tree = tree_instance(spec, schema=LABELS)
    minimal = minimize(tree)
    assert minimal.num_vertices <= tree.num_vertices
    assert minimal.num_edge_entries <= tree.num_edge_entries


@given(random_dag_instances())
def test_minimize_dag_round_trip(instance):
    """Minimisation of arbitrary DAGs preserves equivalence and minimality."""
    minimal = minimize(instance)
    assert is_compressed(minimal)
    assert equivalent(minimal, instance)
    minimal.validate()


@given(random_dag_instances())
def test_tree_size_matches_decompression(instance):
    size = tree_size(instance)
    if size <= 50_000:
        assert decompress(instance).tree.num_vertices == size


@given(random_dag_instances())
def test_coarsest_bisimulation_is_bisimilarity(instance):
    partition = coarsest_bisimulation(instance)
    assert is_bisimilarity(instance, partition)
    quotiented = quotient(instance, partition)
    assert equivalent(quotiented, instance)
    assert quotiented.num_vertices == len(set(partition.values()))


@given(random_dag_instances())
def test_lattice_laws(instance):
    """Meet/join of the identity and coarsest partitions behave as lattice ends."""
    fine = identity_partition(instance)
    coarse = coarsest_bisimulation(instance)
    met = meet(fine, coarse)
    joined = join(fine, coarse)
    # meet with the identity is the identity; join with it is the other.
    assert len(set(met.values())) == len(fine)
    assert len(set(joined.values())) == len(set(coarse.values()))
    assert is_bisimilarity(instance, met)
    assert is_bisimilarity(instance, joined)


@given(tree_specs())
@settings(max_examples=50)
def test_streaming_builder_matches_batch(spec):
    builder = DagBuilder()

    def emit(node):
        sets, children = node
        if isinstance(sets, str):
            sets = (sets,)
        builder.start_node()
        for child in children:
            emit(child)
        builder.end_node(sets)

    emit(spec)
    streamed = builder.finish()
    batch = minimize(tree_instance(spec, schema=LABELS))
    assert streamed.num_vertices == batch.num_vertices
    assert equivalent(
        streamed.reduct(sorted(set(streamed.schema) & set(batch.schema))),
        batch.reduct(sorted(set(streamed.schema) & set(batch.schema))),
    )


@given(random_dag_instances())
def test_stats_consistency(instance):
    stats = instance_stats(instance)
    assert stats.vertices <= instance.num_vertices
    assert stats.tree_vertices >= stats.vertices
    assert stats.edges_expanded >= stats.edge_entries

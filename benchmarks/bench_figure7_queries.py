"""Figure 7: parsing and query evaluation performance.

For every query corpus and Q1-Q5 (Appendix A, verbatim), reproduce the
paper's eight columns: parse time (including compression, over the query's
schema), instance size before, query time, instance size after (showing how
much partial decompression occurred), and the selected node counts on the
DAG and in the tree.

pytest-benchmark times the in-memory query evaluation (the paper's column
4); the parse is timed once per cell (column 1) since re-parsing per
benchmark round would dominate the suite.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import figure7_row
from repro.bench.queries import QUERY_IDS
from repro.bench.tables import fmt_int, fmt_seconds, format_table
from repro.corpora.registry import QUERY_CORPORA
from repro.engine.evaluator import CompressedEvaluator
from repro.engine.pipeline import load_for_query
from repro.xpath.compiler import compile_query
from repro.xpath.algebra import uses_only_upward_axes

from conftest import register_report

_ROWS = []


@pytest.mark.parametrize("corpus", QUERY_CORPORA)
@pytest.mark.parametrize("query_id", QUERY_IDS)
def test_query(benchmark, corpus_cache, corpus, query_id):
    xml = corpus_cache(corpus)
    row = figure7_row(corpus, xml, query_id)
    _ROWS.append(row)

    # Benchmark the repeated in-memory evaluation on a fresh copy each round
    # (evaluation decompresses, so reuse would skew sizes).
    instance = load_for_query(xml, row.query).instance
    query_text = row.query

    def run():
        CompressedEvaluator(instance, copy=True).evaluate(query_text)

    benchmark(run)

    # Every benchmark query selects at least one node (paper section 5).
    assert row.selected_tree >= 1
    # Q1 is a tree pattern: root-selecting, upward-only, no decompression
    # (Corollary 3.7).
    if query_id == "Q1":
        assert uses_only_upward_axes(compile_query(query_text))
        assert (row.vertices_after, row.edges_after) == (
            row.vertices_before,
            row.edges_before,
        )
        assert row.selected_dag == row.selected_tree == 1


def _report():
    if not _ROWS:
        return None
    headers = [
        "corpus",
        "query",
        "(1) parse",
        "(2) |V| bef",
        "(3) |E| bef",
        "(4) query",
        "(5) |V| aft",
        "(6) |E| aft",
        "(7) sel dag",
        "(8) sel tree",
    ]
    rows = [
        [
            row.corpus,
            row.query_id,
            fmt_seconds(row.parse_seconds),
            fmt_int(row.vertices_before),
            fmt_int(row.edges_before),
            fmt_seconds(row.query_seconds),
            fmt_int(row.vertices_after),
            fmt_int(row.edges_after),
            fmt_int(row.selected_dag),
            fmt_int(row.selected_tree),
        ]
        for row in _ROWS
    ]
    return format_table(
        headers,
        rows,
        title="Figure 7 — parsing and query evaluation performance (Appendix A queries)",
    )


register_report(_report)

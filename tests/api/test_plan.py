"""Structured plans: node shapes, JSON stability, render identity."""

import json

from repro.api import Plan
from repro.xpath.compiler import compile_query


class TestPlanStructure:
    def test_figure3_query_plan(self):
        plan = Plan.from_query(
            "/descendant::a/child::b[child::c/child::d or not(following::*)]"
        )
        assert plan.query.startswith("/descendant::a")
        assert plan.required_tags == ("a", "b", "c", "d")
        assert plan.required_strings == ()
        assert not plan.upward_only
        assert plan.size() == compile_query(plan.query).size()

    def test_ops_and_leaves(self):
        plan = Plan.from_query('//a[b["needle"]]')
        as_dict = plan.to_dict()

        def collect(node, out):
            out.append(node["op"])
            for child in node.get("children", ()):
                collect(child, out)
            return out

        ops = collect(as_dict["algebra"], [])
        assert "axis" in ops and "named-set" in ops and "intersect" in ops
        assert as_dict["required"]["strings"] == ["needle"]

        def leaves(node, out):
            if node["op"] == "named-set":
                out.append(node["set"])
            for child in node.get("children", ()):
                leaves(child, out)
            return out

        assert set(leaves(as_dict["algebra"], [])) >= {"a", "b"}

    def test_axis_nodes_name_their_axis(self):
        as_dict = Plan.from_query("//a/following-sibling::b").to_dict()

        def axes(node, out):
            if node["op"] == "axis":
                out.append(node["axis"])
            for child in node.get("children", ()):
                axes(child, out)
            return out

        assert "following-sibling" in axes(as_dict["algebra"], [])

    def test_upward_only_flag(self):
        assert Plan.from_query("/self::*[a/b]").upward_only
        assert not Plan.from_query("//a/b").upward_only

    def test_render_is_byte_identical_to_algebra_render(self):
        for query_text in (
            "//a/b",
            '//a[b["x"] and not(following::*)]',
            "/self::*[a/b/c]",
            "//a/parent::b/preceding-sibling::c",
        ):
            assert Plan.from_query(query_text).render() == compile_query(query_text).render()

    def test_json_round_trips(self):
        plan = Plan.from_query("//a[b or c]")
        assert json.loads(plan.to_json()) == plan.to_dict()
        # Plans are pure data: no instance provenance unless attached.
        assert "instance" not in plan.to_dict()
        plan.instance = {"source": "engine", "cached": True}
        assert plan.to_dict()["instance"] == {"source": "engine", "cached": True}

    def test_str_is_render(self):
        plan = Plan.from_query("//a")
        assert str(plan) == plan.render()

"""Skeleton layouts: text placement records and the succinct on-disk format.

XMILL-style decomposition (section 1) splits a document into the skeleton
(compressed here into a DAG) and string containers.  To be a *lossless*
decomposition — and to support the paper's section 4 workflow of labeling a
stored skeleton with new string constraints without re-reading the XML —
we must remember where each text chunk sat relative to the markup.

A :class:`TextLayout` records, for every text chunk in document order::

    (element_ordinal, slot)

where ``element_ordinal`` numbers elements in document order (0 = the root
element; the virtual document root is -1) and ``slot`` is how many child
*elements* of that element had already been closed when the chunk appeared
(so mixed content interleaves correctly on reassembly).

The second half of this module is the **RSKL succinct skeleton codec**
(DESIGN.md section 11): a compressed instance flattened into a handful of
contiguous little-endian arrays — CSR edge structure plus the raw bit
planes of :mod:`repro.model.planes` — so a stored skeleton loads by
``mmap`` + memcpy + digest check instead of re-parsing text.  Layout of
version 1 (all offsets 8-aligned)::

    0   magic  b"RSKL"
    4   u32 x 9  version, plane_format, |V|, |S|, |E|, root, nwords,
                 name_table_len, reserved(0)
    40  blake2b-256 digest of the payload (everything from offset 72)
    72  name table   '\\n'-joined set names, zero-padded to 8 bytes
    ..  edge_index   u32[|V|+1]   CSR offsets into the edge arrays
    ..  edge_child   u32[|E|]     run-length edge targets
    ..  (4 zero bytes iff |V|+1+|E| is odd, keeping the next array aligned)
    ..  edge_count   u64[|E|]     run-length edge multiplicities
    ..  planes       u64[|S| * nwords]  one bit plane per set, schema order

Instances that do not fit the fixed widths (vertex ids or name-table over
u32, multiplicities over u64, newlines in set names) raise
:class:`SkeletonUnsupported`; writers catch it and simply keep the legacy
chunked form.  A corrupted payload raises
:class:`repro.errors.IntegrityError`, which flows into the catalog's
quarantine machinery exactly like a bad chunk.  ``REPRO_NO_MMAP=1`` (or a
platform where mapping fails — e.g. some Windows filesystems) falls back
to an ordinary read of the same bytes.
"""

from __future__ import annotations

import mmap as _mmap_module
import os
import struct
import sys
from array import array
from dataclasses import dataclass, field
from hashlib import blake2b

from repro.errors import IntegrityError, ReproError
from repro.model import planes as _pl
from repro.model.instance import Instance


@dataclass
class TextLayout:
    """Placement records for all text chunks, in document order."""

    placements: list[tuple[int, int]] = field(default_factory=list)

    def record(self, element_ordinal: int, slot: int) -> None:
        self.placements.append((element_ordinal, slot))

    def __len__(self) -> int:
        return len(self.placements)

    def by_element(self) -> dict[int, list[tuple[int, int]]]:
        """Group placements per element: ordinal -> [(slot, chunk_index)].

        ``chunk_index`` indexes the document-order chunk list (which is also
        the order of :meth:`repro.strings.containers.ContainerStore.in_document_order`).
        """
        grouped: dict[int, list[tuple[int, int]]] = {}
        for chunk_index, (ordinal, slot) in enumerate(self.placements):
            grouped.setdefault(ordinal, []).append((slot, chunk_index))
        return grouped


class LayoutTracker:
    """Streaming helper the loader drives to build a :class:`TextLayout`."""

    __slots__ = ("layout", "_ordinals", "_closed_children", "_next_ordinal")

    def __init__(self) -> None:
        self.layout = TextLayout()
        self._ordinals: list[int] = [-1]  # the virtual document root
        self._closed_children: list[int] = [0]
        self._next_ordinal = 0

    def open_element(self) -> int:
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        self._ordinals.append(ordinal)
        self._closed_children.append(0)
        return ordinal

    def close_element(self) -> None:
        self._ordinals.pop()
        self._closed_children.pop()
        self._closed_children[-1] += 1

    def text(self) -> None:
        self.layout.record(self._ordinals[-1], self._closed_children[-1])


# ----------------------------------------------------------------------
# RSKL: the succinct on-disk skeleton codec
# ----------------------------------------------------------------------

SKELETON_MAGIC = b"RSKL"
SKELETON_VERSION = 1

_HEADER = "<4s9I"
_HEADER_LEN = struct.calcsize(_HEADER)  # 40
_DIGEST_LEN = 32
_PAYLOAD_OFFSET = _HEADER_LEN + _DIGEST_LEN  # 72, 8-aligned

_U32_MAX = (1 << 32) - 1
_U64_MAX = (1 << 64) - 1

#: The 4-byte unsigned array typecode on this platform ('I' everywhere that
#: matters, but checked rather than assumed).
_U32 = next(tc for tc in ("I", "L") if array(tc).itemsize == 4)

_LITTLE = sys.byteorder == "little"


class SkeletonUnsupported(ReproError):
    """The instance does not fit RSKL's fixed-width columns.

    Writers treat this as "keep the legacy form", never as a failure.
    """


def _le(values: array) -> bytes:
    """The array's little-endian bytes (byteswapping off-platform)."""
    if _LITTLE:
        return values.tobytes()
    swapped = array(values.typecode, values)
    swapped.byteswap()
    return swapped.tobytes()


def _from_le(typecode: str, raw: bytes) -> array:
    values = array(typecode, raw)
    if not _LITTLE:
        values.byteswap()
    return values


def encode_skeleton(instance: Instance) -> bytes:
    """Serialise ``instance`` into the RSKL byte layout.

    The instance is stored as-is — same vertex numbering, same schema order
    — so decoding reproduces it byte-identically to the legacy chunk
    assembly it was encoded from.
    """
    nvertices = instance.num_vertices
    if nvertices == 0 or not instance.has_root:
        raise SkeletonUnsupported("empty or rootless instance")
    schema = instance.schema
    names_blob = "\n".join(schema).encode("utf-8")
    if schema and any("\n" in name for name in schema):
        raise SkeletonUnsupported("set name contains a newline")
    children = instance.edge_table()
    nentries = instance.num_edge_entries
    nwords = _pl.words_for(nvertices)
    if (
        nvertices > _U32_MAX
        or nentries > _U32_MAX
        or len(names_blob) > _U32_MAX
        or nwords > _U32_MAX
    ):
        raise SkeletonUnsupported("instance exceeds u32 column widths")

    edge_index = array(_U32, bytes(4 * (nvertices + 1)))
    edge_child = array(_U32, bytes(4 * nentries))
    edge_count = array("Q", bytes(8 * nentries))
    position = 0
    for vertex, edges in enumerate(children):
        edge_index[vertex] = position
        for child, count in edges:
            if count > _U64_MAX:
                raise SkeletonUnsupported("edge multiplicity exceeds u64")
            edge_child[position] = child
            edge_count[position] = count
            position += 1
    edge_index[nvertices] = position

    payload = bytearray()
    payload += names_blob
    payload += bytes(-len(names_blob) % 8)
    payload += _le(edge_index)
    payload += _le(edge_child)
    if (nvertices + 1 + nentries) & 1:
        payload += bytes(4)
    payload += _le(edge_count)
    for name in schema:
        plane = instance.plane_of(name)
        if len(plane) > nwords:
            plane = plane[:nwords]
        elif len(plane) < nwords:  # pragma: no cover - planes track capacity
            padded = array("Q", plane)
            padded.frombytes(bytes(8 * (nwords - len(padded))))
            plane = padded
        payload += _le(plane)

    header = struct.pack(
        _HEADER,
        SKELETON_MAGIC,
        SKELETON_VERSION,
        _pl.PLANE_FORMAT_VERSION,
        nvertices,
        len(schema),
        nentries,
        instance.root,
        nwords,
        len(names_blob),
        0,
    )
    digest = blake2b(bytes(payload), digest_size=_DIGEST_LEN).digest()
    return header + digest + bytes(payload)


def decode_skeleton(buffer) -> Instance:
    """Rebuild an instance from RSKL bytes (any buffer supporting slicing).

    Verifies the payload digest before trusting any of it; a mismatch (or a
    malformed layout) raises :class:`IntegrityError` so catalog loads
    quarantine the document rather than serve garbage.
    """
    if len(buffer) < _PAYLOAD_OFFSET:
        raise IntegrityError("skeleton file shorter than its header")
    (
        magic,
        version,
        plane_format,
        nvertices,
        nsets,
        nentries,
        root,
        nwords,
        name_len,
        _reserved,
    ) = struct.unpack_from(_HEADER, buffer, 0)
    if magic != SKELETON_MAGIC:
        raise IntegrityError("bad skeleton magic")
    if version != SKELETON_VERSION:
        raise IntegrityError(f"unsupported skeleton version {version}")
    if plane_format > _pl.PLANE_FORMAT_VERSION:
        raise IntegrityError(f"unsupported plane format {plane_format}")

    name_pad = (name_len + 7) & ~7
    edge_words = nvertices + 1 + nentries
    index_off = _PAYLOAD_OFFSET + name_pad
    child_off = index_off + 4 * (nvertices + 1)
    count_off = child_off + 4 * nentries + (4 if edge_words & 1 else 0)
    planes_off = count_off + 8 * nentries
    total = planes_off + 8 * nsets * nwords
    if len(buffer) != total:
        raise IntegrityError(
            f"skeleton length {len(buffer)} does not match layout ({total})"
        )

    view = memoryview(buffer)
    try:
        stored = bytes(view[_HEADER_LEN:_PAYLOAD_OFFSET])
        actual = blake2b(view[_PAYLOAD_OFFSET:], digest_size=_DIGEST_LEN).digest()
        if stored != actual:
            raise IntegrityError("skeleton payload failed its checksum (blake2b digest mismatch)")

        names_raw = bytes(view[_PAYLOAD_OFFSET : _PAYLOAD_OFFSET + name_len])
        schema = names_raw.decode("utf-8").split("\n") if name_len else []
        if len(schema) != nsets:
            raise IntegrityError(f"name table holds {len(schema)} names, header says {nsets}")
        edge_index = _from_le(_U32, bytes(view[index_off:child_off]))
        edge_child = _from_le(_U32, bytes(view[child_off : child_off + 4 * nentries]))
        edge_count = _from_le("Q", bytes(view[count_off:planes_off]))
        pairs = list(zip(edge_child, edge_count))
        try:
            children = [
                tuple(pairs[edge_index[v] : edge_index[v + 1]])
                for v in range(nvertices)
            ]
        except IndexError:
            raise IntegrityError("skeleton edge index out of bounds") from None
        plane_bytes = 8 * nwords
        plane_list = [
            _from_le("Q", bytes(view[planes_off + i * plane_bytes : planes_off + (i + 1) * plane_bytes]))
            for i in range(nsets)
        ]
    finally:
        view.release()
    try:
        return Instance.from_parts(schema, children, plane_list, nwords, root)
    except ReproError as error:
        raise IntegrityError(f"skeleton decodes to an invalid instance: {error}") from None


@dataclass
class SkeletonLoadInfo:
    """How a skeleton load was served (surfaced through ``/stats``)."""

    bytes_mapped: int
    mmap: bool
    format_version: int = SKELETON_VERSION
    plane_format_version: int = _pl.PLANE_FORMAT_VERSION

    def as_dict(self) -> dict:
        return {
            "format": "skeleton",
            "format_version": self.format_version,
            "plane_format_version": self.plane_format_version,
            "bytes_mapped": self.bytes_mapped,
            "mmap": self.mmap,
        }


def write_skeleton(path: str, instance: Instance) -> int:
    """Encode ``instance`` to ``path`` (atomically); returns bytes written."""
    blob = encode_skeleton(instance)
    temp = f"{path}.tmp.{os.getpid()}"
    with open(temp, "wb") as handle:
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, path)
    return len(blob)


def read_skeleton(path: str) -> tuple[Instance, SkeletonLoadInfo]:
    """Load an RSKL file, via ``mmap`` when the platform allows it.

    The mapping lives only for the duration of the decode — the decoded
    arrays are private copies, so no page of the file is referenced after
    return and the file can be replaced or deleted freely (this also
    side-steps Windows' open-mapping file-locking semantics).
    """
    use_mmap = not os.environ.get("REPRO_NO_MMAP")
    with open(path, "rb") as handle:
        if use_mmap:
            try:
                mapped = _mmap_module.mmap(handle.fileno(), 0, access=_mmap_module.ACCESS_READ)
            except (ValueError, OSError):
                mapped = None  # empty file or mapping-hostile platform
        else:
            mapped = None
        if mapped is not None:
            try:
                instance = decode_skeleton(mapped)
                size = len(mapped)
            finally:
                mapped.close()
            return instance, SkeletonLoadInfo(bytes_mapped=size, mmap=True)
        data = handle.read()
    return decode_skeleton(data), SkeletonLoadInfo(bytes_mapped=len(data), mmap=False)

"""Tests for XMILL-style string containers."""

from repro.strings.containers import ContainerStore


class TestContainerStore:
    def test_groups_by_key(self):
        store = ContainerStore()
        store.add("title", "Foundations of Databases")
        store.add("author", "Abiteboul")
        store.add("author", "Hull")
        assert store.num_containers == 2
        assert store.container("author").chunks == ["Abiteboul", "Hull"]

    def test_references_resolve(self):
        store = ContainerStore()
        ref = store.add("x", "hello")
        assert store.get(ref) == "hello"

    def test_document_order_preserved(self):
        store = ContainerStore()
        store.add("b", "1")
        store.add("a", "2")
        store.add("b", "3")
        assert store.in_document_order() == ["1", "2", "3"]

    def test_total_characters(self):
        store = ContainerStore()
        store.add("a", "xy")
        store.add("b", "z")
        assert store.total_characters == 3

    def test_keys_sorted(self):
        store = ContainerStore()
        store.add("z", "")
        store.add("a", "")
        assert store.keys() == ["a", "z"]

    def test_summary_mentions_counts(self):
        store = ContainerStore()
        store.add("title", "abc")
        text = store.summary()
        assert "1 containers" in text
        assert "title" in text

    def test_missing_container_is_none(self):
        assert ContainerStore().container("nope") is None

"""Concurrent query serving over the persistent store (load once, query forever).

The subsystem has three layers, bottom up:

* :mod:`repro.server.catalog` — a directory of documents shredded into the
  chunked store at registration time; warm starts assemble instances from
  chunks instead of re-parsing XML.
* :mod:`repro.server.pool` — a bounded LRU of resident master instances
  keyed by ``(document, schema key)``, with per-entry locks.
* :mod:`repro.server.service` / :mod:`repro.server.http` — the coalescing
  evaluation front (concurrent requests for one document share a single
  :class:`repro.engine.batch.BatchEvaluator` run) and its stdlib JSON/HTTP
  binding (``repro serve``).
"""

from repro.server.catalog import Catalog, CatalogEntry
from repro.server.http import ReproHTTPServer, create_server, serve
from repro.server.pool import InstancePool, PoolEntry
from repro.server.service import QueryService, decode_result

__all__ = [
    "Catalog",
    "CatalogEntry",
    "InstancePool",
    "PoolEntry",
    "QueryService",
    "ReproHTTPServer",
    "create_server",
    "decode_result",
    "serve",
]

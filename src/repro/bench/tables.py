"""Plain-text table rendering for the benchmark reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Render a monospace table with right-aligned numeric columns."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def align(value: str, index: int, numeric: bool) -> str:
        return value.rjust(widths[index]) if numeric else value.ljust(widths[index])

    numeric_columns = [
        all(_is_numberish(row[i]) for row in cells if i < len(row)) if cells else False
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(align(v, i, numeric_columns[i]) for i, v in enumerate(row))
        )
    return "\n".join(lines)


def _is_numberish(value: str) -> bool:
    stripped = value.replace(",", "").replace("%", "").replace("x", "")
    try:
        float(stripped)
        return True
    except ValueError:
        return value in ("-", "")


def fmt_int(value: int) -> str:
    return f"{value:,}"


def fmt_pct(value: float) -> str:
    return f"{100 * value:.1f}%"


def fmt_seconds(value: float) -> str:
    if value < 0.1:
        return f"{value * 1000:.2f}ms"
    return f"{value:.3f}s"

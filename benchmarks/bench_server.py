#!/usr/bin/env python
"""Concurrent serving vs sequential one-shot evaluation of the same workload.

The seed CLI answers every query with a one-shot process: re-parse the
document, evaluate, exit.  PR 3's serving layer registers each document in
the persistent catalog once and answers a concurrent request stream from
resident instances, coalescing simultaneous requests for one document into
single :class:`repro.engine.batch.BatchEvaluator` runs.  This benchmark
measures that difference end to end, over real HTTP:

* **one-shot** — the baseline the acceptance criterion names: for every
  request, a fresh ``Engine(xml).query(q)`` (document re-parsed per
  request, exactly what ``repro query doc.xml Q`` per-process does);
* **warm-sequential** — a generous baseline: one long-lived
  ``Engine(reparse_per_query=False)`` answering the stream sequentially
  (no parse after warm-up, no concurrency, no coalescing);
* **served (snapshot / persistent)** — N client threads firing the same
  request stream at a live ``repro serve`` instance, for both evaluation
  modes (per-batch ``copy()`` of the immutable master vs one long-lived
  working instance per pool entry).

Before timing anything, every distinct query's server response is checked
**byte-identical** (canonical JSON of counts + decoded paths) against
direct evaluation; any divergence fails the run.  Results go to
``BENCH_server.json``; the run fails when the best served throughput is
below ``--min-speedup`` x the one-shot baseline (default 2.0).

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py [--smoke]
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from corpus_cache import cached_xml
from repro.corpora import binary_tree, relational
from repro.corpora.registry import CORPORA
from repro.engine.pipeline import Engine
from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready
from repro.server.service import decode_result

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

BINARY_TREE_QUERIES = {
    "Q1": "/a/b/a/b",
    "Q2": "//b[a]",
    "Q3": "/descendant::a[b/b]",
    "Q4": "//a/following-sibling::b",
    "Q5": "//b/preceding-sibling::a",
}

RELATIONAL_QUERIES = {
    "Q1": "/table/row/col0",
    "Q2": '//row[col1["r1c1"]]/col2',
    "Q3": "//col3/following-sibling::col5",
    "Q4": '//row[col0["r0c0"]]',
    "Q5": "//col1/preceding-sibling::col0",
}

CORPUS_NAMES = ("binary-tree", "relational", "xmark")

#: Result paths requested per query during the correctness check.
CHECK_PATHS = 25


def corpus_xml(name: str, smoke: bool) -> str:
    if name == "binary-tree":
        depth = 7 if smoke else 10
        return cached_xml(
            "binary-tree", lambda: binary_tree.generate_xml(depth=depth).xml, depth=depth
        )
    if name == "relational":
        rows, cols = (50, 8) if smoke else (250, 10)
        return cached_xml(
            "relational",
            lambda: relational.generate_xml(rows, cols, distinct_texts=True).xml,
            rows=rows,
            cols=cols,
            distinct=True,
        )
    if name == "xmark":
        info = CORPORA["xmark"]
        scale = max(1, int(info.default_scale * (0.1 if smoke else 0.3)))
        return cached_xml("xmark", lambda: info.generate(scale, 0).xml, scale=scale, seed=0)
    raise ValueError(name)


def corpus_queries(name: str) -> list[str]:
    if name == "binary-tree":
        return list(BINARY_TREE_QUERIES.values())
    if name == "relational":
        return list(RELATIONAL_QUERIES.values())
    from repro.bench.queries import queries_for

    return list(queries_for(name).values())


def percentile(samples: list[float], fraction: float) -> float:
    ranked = sorted(samples)
    index = min(len(ranked) - 1, max(0, math.ceil(fraction * len(ranked)) - 1))
    return ranked[index]


def canonical(payload: dict) -> str:
    """The byte-comparable answer: counts + decoded paths, nothing volatile."""
    return json.dumps(
        {"tree_count": payload["tree_count"], "paths": payload.get("paths", [])},
        sort_keys=True,
    )


class ServerUnderTest:
    """A live ``repro serve`` on an ephemeral port over a throwaway catalog."""

    def __init__(self, catalog_dir: str, mode: str, workers: int = 0,
                 frontend: str = "threaded"):
        self.server = create_server(
            catalog_dir, port=0, mode=mode, workers=workers, frontend=frontend
        )
        self.host, self.port = self.server.server_address[:2]
        self.thread = threading.Thread(target=self.server.serve_forever, daemon=True)
        self.thread.start()
        # A failed readiness probe must not leak the serving thread or the
        # spawned fleet: a leaked earlier config would keep competing for
        # cores with every later measured one, skewing the scaling curve.
        try:
            if not wait_ready(self.host, self.port, timeout=60):
                raise AssertionError(f"server on port {self.port} never became ready")
            if not self.server.service.wait_ready(timeout=120):
                raise AssertionError("the worker fleet never became ready")
        except BaseException:
            self.close()
            raise

    def request(self, connection, document: str, query: str, paths: int = 0) -> dict:
        body = json.dumps({"document": document, "query": query, "paths": paths})
        connection.request("POST", "/query", body)
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        if response.status != 200:
            raise AssertionError(f"server error {response.status}: {payload}")
        return payload

    def connect(self) -> http.client.HTTPConnection:
        import socket

        connection = http.client.HTTPConnection(self.host, self.port, timeout=120)
        connection.connect()
        # The request line/headers and the JSON body go out as separate
        # segments; without TCP_NODELAY, Nagle + the server's delayed ACK
        # add ~40ms to every request on loopback.
        connection.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return connection

    def close(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.server.service.close()
        self.thread.join(timeout=10)


def verify_byte_identical(under_test: ServerUnderTest, document, xml, queries) -> int:
    """Server answers must be byte-identical to direct evaluation. Returns count."""
    connection = under_test.connect()
    try:
        for query in queries:
            served = canonical(
                under_test.request(connection, document, query, paths=CHECK_PATHS)
            )
            direct = canonical(decode_result(Engine(xml).query(query), paths=CHECK_PATHS))
            if served != direct:
                raise AssertionError(
                    f"divergence on {query!r}:\n  served  {served}\n  direct  {direct}"
                )
    finally:
        connection.close()
    return len(queries)


def verify_frontends_identical(catalog_dir: str, document: str, queries) -> int:
    """Both front-ends must emit byte-identical responses for one request set.

    Spins a threaded and an async server over the *same* catalog and
    replays success and error requests against both with a pinned trace
    ID, comparing raw bodies byte for byte (minus the volatile
    ``seconds`` measurement, which is stripped *textually* so everything
    else — key order, number formatting, envelope shape — still has to
    match exactly).  Returns the number of requests compared.
    """
    import re

    probes = [("POST", "/query", {"document": document, "query": query, "paths": CHECK_PATHS})
              for query in queries]
    probes += [
        ("POST", "/query", {"document": "no-such-doc", "query": "//a"}),
        ("POST", "/query", {"document": document, "query": "//broken[["}),
        ("GET", "/healthz", None),
        ("GET", "/nope", None),
    ]
    seconds_pattern = re.compile(rb'"seconds":\s*[-+0-9.eE]+,?\s*')
    servers = {}
    try:
        for frontend in ("threaded", "async"):
            servers[frontend] = ServerUnderTest(catalog_dir, "snapshot", frontend=frontend)
        for method, path, body in probes:
            bodies = {}
            for frontend, under_test in servers.items():
                connection = under_test.connect()
                try:
                    payload = json.dumps(body) if body is not None else None
                    connection.request(
                        method, path, payload, {"X-Repro-Trace": "benchdiff00000001"}
                    )
                    response = connection.getresponse()
                    bodies[frontend] = (
                        response.status,
                        seconds_pattern.sub(b"", response.read()),
                    )
                finally:
                    connection.close()
            if bodies["threaded"] != bodies["async"]:
                raise AssertionError(
                    f"front-end divergence on {method} {path}:\n"
                    f"  threaded {bodies['threaded']}\n  async    {bodies['async']}"
                )
    finally:
        for under_test in servers.values():
            under_test.close()
    return len(probes)


def drive_clients(
    under_test: ServerUnderTest, document: str, requests: list[str], clients: int
) -> dict:
    """Fire ``requests`` from ``clients`` threads; return throughput/latency."""
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    latencies: list[float] = []
    latency_lock = threading.Lock()
    failures: list[str] = []

    def worker():
        connection = under_test.connect()
        local: list[float] = []
        try:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        break
                    cursor["next"] = index + 1
                started = time.perf_counter()
                under_test.request(connection, document, requests[index])
                local.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 - reported via failures
            failures.append(repr(error))
        finally:
            connection.close()
            with latency_lock:
                latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    if failures:
        raise AssertionError(f"client failures: {failures[:3]}")
    if len(latencies) != len(requests):
        raise AssertionError(f"served {len(latencies)} of {len(requests)} requests")
    return {
        "wall_seconds": wall,
        "throughput_rps": len(requests) / wall,
        "latency_p50_ms": 1000 * percentile(latencies, 0.50),
        "latency_p95_ms": 1000 * percentile(latencies, 0.95),
        "latency_p99_ms": 1000 * percentile(latencies, 0.99),
        "latency_mean_ms": 1000 * statistics.fmean(latencies),
    }


def coalescing_probe(
    catalog_dir: str, query: str, threads: int = 8, per_thread: int = 20
) -> dict:
    """Measure micro-batch coalescing under same-key contention (no HTTP).

    Drives the service API directly so every thread spends its whole life
    inside ``QueryService.query``: concurrent arrivals for one
    ``(document, schema)`` key must coalesce into shared BatchEvaluator
    runs via the natural-batching drain loop.
    """
    from repro.server.service import QueryService

    service = QueryService(Catalog(catalog_dir), mode="snapshot")
    service.query("doc", query)  # warm: residency outside the clock
    failures: list[str] = []

    def worker():
        try:
            for _ in range(per_thread):
                service.query("doc", query)
        except Exception as error:  # noqa: BLE001 - reported via failures
            failures.append(repr(error))

    workers = [threading.Thread(target=worker) for _ in range(threads)]
    started = time.perf_counter()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    wall = time.perf_counter() - started
    if failures:
        raise AssertionError(f"probe failures: {failures[:3]}")
    stats = service.stats_dict()["service"]
    total = threads * per_thread
    return {
        "query": query,
        "requests": total,
        "throughput_rps": total / wall,
        "batches": stats["batches"],
        "max_batch_size": stats["max_batch_size"],
        "coalesced_requests": stats["coalesced_requests"],
        "coalesced_fraction": stats["coalesced_requests"] / max(1, stats["requests"]),
    }


def run_sequential_one_shot(xml: str, requests: list[str]) -> float:
    started = time.perf_counter()
    for query in requests:
        Engine(xml).query(query)  # fresh engine: re-parse per request
    return time.perf_counter() - started


def run_sequential_warm(xml: str, requests: list[str]) -> float:
    engine = Engine(xml, reparse_per_query=False)
    for query in requests[: len(set(requests))]:
        engine.query(query)  # warm-up: parse + compile outside the clock
    started = time.perf_counter()
    for query in requests:
        engine.query(query)
    return time.perf_counter() - started


def measure(
    corpus: str, smoke: bool, clients: int, requests_total: int,
    frontend: str = "threaded",
) -> dict:
    xml = corpus_xml(corpus, smoke)
    queries = corpus_queries(corpus)
    requests = [queries[i % len(queries)] for i in range(requests_total)]

    catalog_dir = tempfile.mkdtemp(prefix=f"repro-bench-{corpus}-")
    try:
        Catalog(catalog_dir).add("doc", xml)
        one_shot_seconds = run_sequential_one_shot(xml, requests)
        warm_seconds = run_sequential_warm(xml, requests)

        served = {}
        checked = 0
        frontends_checked = 0
        if frontend == "async":
            # The async run doubles as the differential gate: both
            # front-ends must answer the same requests byte-identically.
            frontends_checked = verify_frontends_identical(catalog_dir, "doc", queries)
        for mode in ("snapshot", "persistent"):
            under_test = ServerUnderTest(catalog_dir, mode, frontend=frontend)
            try:
                checked += verify_byte_identical(under_test, "doc", xml, queries)
                # One warm pass so resident instances exist before the clock.
                drive_clients(under_test, "doc", requests[: len(queries)], clients)
                run = drive_clients(under_test, "doc", requests, clients)
                run["stats"] = under_test.server.service.stats_dict()
                served[mode] = run
            finally:
                under_test.close()
        probe = coalescing_probe(catalog_dir, queries[0])
    finally:
        shutil.rmtree(catalog_dir, ignore_errors=True)

    best_mode = max(served, key=lambda mode: served[mode]["throughput_rps"])
    one_shot_rps = len(requests) / one_shot_seconds
    warm_rps = len(requests) / warm_seconds
    row = {
        "corpus": corpus,
        "frontend": frontend,
        "requests": len(requests),
        "clients": clients,
        "queries_checked_byte_identical": checked,
        "frontend_responses_checked_identical": frontends_checked,
        "one_shot_seconds": one_shot_seconds,
        "one_shot_rps": one_shot_rps,
        "warm_sequential_seconds": warm_seconds,
        "warm_sequential_rps": warm_rps,
        "served": served,
        "coalescing_probe": probe,
        "best_mode": best_mode,
        "speedup_vs_one_shot": served[best_mode]["throughput_rps"] / one_shot_rps,
        "speedup_vs_warm": served[best_mode]["throughput_rps"] / warm_rps,
    }
    print(
        f"  {corpus:12s}  one-shot {one_shot_rps:8.1f} rps  warm {warm_rps:8.1f} rps  "
        f"served[snapshot] {served['snapshot']['throughput_rps']:8.1f} rps  "
        f"served[persistent] {served['persistent']['throughput_rps']:8.1f} rps  "
        f"best {row['speedup_vs_one_shot']:6.1f}x one-shot "
        f"({row['speedup_vs_warm']:4.2f}x warm, p95 "
        f"{served[best_mode]['latency_p95_ms']:.2f} ms, coalesced "
        f"{100 * probe['coalesced_fraction']:.0f}% depth {probe['max_batch_size']})"
    )
    return row


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(value) for value in values) / len(values))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small corpora, CI smoke mode")
    parser.add_argument("--clients", type=int, default=None, help="client thread count")
    parser.add_argument("--requests", type=int, default=None, help="requests per corpus")
    parser.add_argument(
        "--min-speedup", type=float, default=2.0,
        help="fail when the worst per-corpus speedup vs one-shot is below this",
    )
    parser.add_argument(
        "--frontend", choices=("threaded", "async"), default="threaded",
        help="HTTP front-end under test (async also runs the byte-identity "
        "differential against threaded)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_server.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    clients = args.clients or (6 if args.smoke else 12)
    requests_total = args.requests or (48 if args.smoke else 240)

    print(
        f"server workload: concurrent serving vs sequential one-shot Engine.query "
        f"({'smoke' if args.smoke else 'full'}, {clients} clients, "
        f"{requests_total} requests/corpus, {args.frontend} front-end)"
    )
    rows = [
        measure(corpus, args.smoke, clients, requests_total, frontend=args.frontend)
        for corpus in CORPUS_NAMES
    ]

    speedups = [row["speedup_vs_one_shot"] for row in rows]
    report = {
        "benchmark": "server",
        "mode": "smoke" if args.smoke else "full",
        "frontend": args.frontend,
        "baseline": "sequential one-shot Engine.query (fresh engine per request)",
        "corpora": list(CORPUS_NAMES),
        "clients": clients,
        "requests_per_corpus": requests_total,
        "rows": rows,
        "geomean_speedup": geomean(speedups),
        "worst_speedup": min(speedups),
        "best_speedup": max(speedups),
        "min_speedup_required": args.min_speedup,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    print(
        f"\nspeedup vs one-shot: geomean {report['geomean_speedup']:.2f}x  "
        f"worst {report['worst_speedup']:.2f}x  best {report['best_speedup']:.2f}x  "
        f"(required worst >= {args.min_speedup:.2f}x)"
    )
    print(f"wrote {args.output}")
    if report["worst_speedup"] < args.min_speedup:
        print("FAIL: concurrent serving too slow relative to one-shot", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

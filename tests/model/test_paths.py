"""Tests for edge paths and tree-node counting."""

import pytest

from repro.errors import DecompressionLimitError
from repro.model.instance import Instance
from repro.model.paths import (
    edge_path_set,
    iter_edge_paths,
    selected_tree_count,
    set_path_sets,
    tree_edge_count,
    tree_node_counts,
    tree_size,
)


class TestTreeNodeCounts:
    def test_tree_counts_are_all_one(self, bib_tree):
        counts = tree_node_counts(bib_tree)
        assert all(count == 1 for count in counts.values())
        assert tree_size(bib_tree) == 12

    def test_compressed_counts_match_tree(self, figure2_compressed):
        counts = tree_node_counts(figure2_compressed)
        instance = figure2_compressed
        author = next(iter(instance.members("author")))
        title = next(iter(instance.members("title")))
        paper = next(iter(instance.members("paper")))
        assert counts[instance.root] == 1
        assert counts[paper] == 2
        assert counts[title] == 3  # 1 from book + 2 papers
        assert counts[author] == 5  # 3 from book + 2 papers
        assert tree_size(figure2_compressed) == 12
        assert tree_edge_count(figure2_compressed) == 11

    def test_exponential_tree_counted_exactly(self):
        # A chain of n vertices each with a double edge represents a complete
        # binary tree with 2^(n) - 1 nodes; counting must use big ints.
        instance = Instance()
        vertex = instance.new_vertex()
        for _ in range(100):
            vertex = instance.new_vertex(children=[(vertex, 2)])
        instance.set_root(vertex)
        assert tree_size(instance) == 2**101 - 1

    def test_selected_tree_count(self, figure2_compressed):
        assert selected_tree_count(figure2_compressed, "author") == 5
        assert selected_tree_count(figure2_compressed, "bib") == 1
        assert selected_tree_count(figure2_compressed, "paper") == 2


class TestEdgePathEnumeration:
    def test_bib_paths_match_figure2(self, figure2_compressed):
        # The author vertex is reached via paths 1.2, 1.3, 1.4, 2.2, 3.2.
        instance = figure2_compressed
        author = next(iter(instance.members("author")))
        paths = sorted(path for v, path in iter_edge_paths(instance, target=author))
        assert paths == [(1, 2), (1, 3), (1, 4), (2, 2), (3, 2)]

    def test_root_path_is_empty(self, figure2_compressed):
        root_paths = [
            path
            for v, path in iter_edge_paths(figure2_compressed)
            if v == figure2_compressed.root
        ]
        assert root_paths == [()]

    def test_path_set_is_prefix_closed(self, figure2_compressed):
        paths = edge_path_set(figure2_compressed)
        for path in paths:
            assert path[:-1] in paths or path == ()

    def test_limit_enforced(self):
        instance = Instance()
        vertex = instance.new_vertex()
        for _ in range(40):
            vertex = instance.new_vertex(children=[(vertex, 2)])
        instance.set_root(vertex)
        with pytest.raises(DecompressionLimitError):
            list(iter_edge_paths(instance, limit=1000))

    def test_set_path_sets(self, figure2_compressed):
        paths = set_path_sets(figure2_compressed)
        assert paths["bib"] == frozenset({()})
        assert paths["paper"] == frozenset({(2,), (3,)})
        assert len(paths["author"]) == 5

    def test_equal_path_sets_for_equivalent_instances(self, bib_tree, figure2_compressed):
        # bib_tree has schema subset; compare only shared sets.
        tree_paths = set_path_sets(bib_tree)
        dag_paths = set_path_sets(figure2_compressed)
        for name in ("book", "paper", "title", "author"):
            assert tree_paths[name] == dag_paths[name]
        assert edge_path_set(bib_tree) == edge_path_set(figure2_compressed)

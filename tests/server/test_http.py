"""End-to-end tests of the JSON/HTTP serving layer (real sockets, threads)."""

import http.client
import json
import threading

import pytest

from repro.engine.pipeline import Engine
from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready
from repro.server.service import decode_result

from tests.skeleton.test_loader import BIB_XML


@pytest.fixture
def server(tmp_path):
    # Always port 0: the kernel hands out a free ephemeral port, so any
    # number of parallel CI runs can never collide; the real port is read
    # back off the socket and readiness is probed (not assumed) through
    # the same helper the benchmarks use.
    Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
    server = create_server(str(tmp_path / "cat"), port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def request(server, method, path, body=None):
    host, port = server.server_address[:2]
    connection = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body) if body is not None else None
        connection.request(method, path, payload)
        response = connection.getresponse()
        return response.status, json.loads(response.read().decode("utf-8"))
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, payload = request(server, "GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["documents"] == 1

    def test_query_matches_direct_evaluation(self, server):
        status, payload = request(
            server, "POST", "/query",
            {"document": "bib", "query": "//book/author", "paths": 10},
        )
        assert status == 200
        expected = decode_result(Engine(BIB_XML).query("//book/author"), paths=10)
        assert payload["tree_count"] == expected["tree_count"]
        assert payload["paths"] == expected["paths"]
        assert payload["document"] == "bib"
        assert payload["mode"] == "snapshot"

    def test_catalog_listing(self, server):
        status, payload = request(server, "GET", "/catalog")
        assert status == 200
        assert [doc["name"] for doc in payload["documents"]] == ["bib"]

    def test_register_then_query(self, server):
        status, payload = request(
            server, "POST", "/catalog/tiny", {"xml": "<r><x/><x/></r>"}
        )
        assert status == 201 and payload["name"] == "tiny"
        status, payload = request(
            server, "POST", "/query", {"document": "tiny", "query": "//x"}
        )
        assert status == 200 and payload["tree_count"] == 2

    def test_delete_document(self, server):
        status, payload = request(server, "DELETE", "/catalog/bib")
        assert status == 200 and payload["removed"] == "bib"
        status, _ = request(server, "POST", "/query", {"document": "bib", "query": "//a"})
        assert status == 404


class TestErrorMapping:
    def test_unknown_document_is_404(self, server):
        status, payload = request(
            server, "POST", "/query", {"document": "ghost", "query": "//a"}
        )
        assert status == 404
        assert "unknown catalog document" in payload["error"]

    def test_malformed_query_is_400(self, server):
        status, payload = request(
            server, "POST", "/query", {"document": "bib", "query": "//a[["}
        )
        assert status == 400
        assert "invalid query" in payload["error"]

    def test_malformed_json_is_400(self, server):
        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.request("POST", "/query", "{not json")
            response = connection.getresponse()
            assert response.status == 400
            assert "malformed JSON" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_missing_fields_is_400(self, server):
        status, payload = request(server, "POST", "/query", {"document": "bib"})
        assert status == 400
        assert "'document' and 'query'" in payload["error"]

    def test_unknown_endpoint_is_404(self, server):
        status, _ = request(server, "GET", "/nope")
        assert status == 404

    def test_bad_delete_is_404(self, server):
        status, _ = request(server, "DELETE", "/catalog/ghost")
        assert status == 404


class TestConcurrentClients:
    def test_many_clients_all_served_correctly(self, server):
        queries = ["//author", "//title", "//book/author", "/bib/paper/title"]
        expected = {
            query: decode_result(Engine(BIB_XML).query(query), paths=20)
            for query in queries
        }
        failures = []

        def client(index):
            query = queries[index % len(queries)]
            try:
                status, payload = request(
                    server, "POST", "/query",
                    {"document": "bib", "query": query, "paths": 20},
                )
                assert status == 200, payload
                assert payload["tree_count"] == expected[query]["tree_count"]
                assert payload["paths"] == expected[query]["paths"]
            except Exception as error:  # noqa: BLE001 - collected for the assert
                failures.append((index, error))

        threads = [threading.Thread(target=client, args=(i,)) for i in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not failures
        status, payload = request(server, "GET", "/stats")
        assert status == 200
        assert payload["service"]["requests"] >= 16

"""Decoding query results from compressed instances (Figure 7 columns 5-8).

A query result is a named selection on a (possibly partially decompressed)
instance.  A selected DAG vertex represents all tree nodes that unfold from
it, so the result offers both counts: selected DAG vertices (column 7) and
the tree nodes they stand for (column 8, via path counting), plus bounded
materialisation of the actual tree nodes as edge paths.

Results are **read-only views**: the evaluator hands them a finished
instance and never mutates it afterwards, so every traversal-derived value
(`dag_count`, `tree_count`, `after`, the path-count table) is memoised on
first use and never invalidated.  A :class:`BatchResult` bundles the
per-query results of one batch evaluation, which all share the same final
instance, together with the shared-work statistics of the
common-subexpression cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.model.instance import Instance
from repro.model.paths import iter_edge_paths, tree_node_counts


class _PathCounts:
    """A shareable memo cell for an instance's per-vertex path counts."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: dict[int, int] | None = None


@dataclass
class QueryResult:
    """A selection ``set_name`` on the evaluation's final ``instance``."""

    instance: Instance
    set_name: str
    #: Sizes of the instance before evaluation (vertices, edge entries).
    before: tuple[int, int] = (0, 0)
    #: Wall-clock seconds spent in evaluation (set by the evaluator).
    seconds: float = 0.0
    # Memoised traversal-derived values (results are read-only views, so
    # nothing ever invalidates these).  The path-count cell is swapped for a
    # shared one by BatchResult, since batch siblings hold the same instance.
    _dag_count: int | None = field(default=None, init=False, repr=False, compare=False)
    _tree_count: int | None = field(default=None, init=False, repr=False, compare=False)
    _after: tuple[int, int] | None = field(default=None, init=False, repr=False, compare=False)
    _counts_cell: _PathCounts = field(
        default_factory=_PathCounts, init=False, repr=False, compare=False
    )

    def vertices(self) -> set[int]:
        """The selected DAG vertices (a fresh set; callers may mutate it)."""
        return self.instance.members(self.set_name)

    def dag_count(self) -> int:
        """Figure 7 column (7): #nodes selected in the compressed instance."""
        if self._dag_count is None:
            self._dag_count = self.instance.count_set(self.set_name)
        return self._dag_count

    def _tree_counts(self) -> dict[int, int]:
        """Per-vertex edge-path counts, computed once per memo cell."""
        cell = self._counts_cell
        if cell.value is None:
            cell.value = tree_node_counts(self.instance)
        return cell.value

    def tree_count(self) -> int:
        """Figure 7 column (8): #tree nodes the selection represents."""
        if self._tree_count is None:
            counts = self._tree_counts()
            self._tree_count = sum(
                counts.get(v, 0) for v in self.instance.members(self.set_name)
            )
        return self._tree_count

    @property
    def after(self) -> tuple[int, int]:
        """Instance size after evaluation (vertices, edge entries)."""
        if self._after is None:
            reachable = self.instance.preorder()
            entries = sum(len(self.instance.children(v)) for v in reachable)
            self._after = (len(reachable), entries)
        return self._after

    def is_empty(self) -> bool:
        return self.dag_count() == 0

    def tree_paths(self, limit: int = 1_000_000) -> list[tuple[int, ...]]:
        """Edge paths of all selected tree nodes, in document order.

        This is the "decode" step the paper describes for column (8): a
        single depth-first traversal of the partially decompressed instance.
        """
        plane = self.instance.plane_of(self.set_name)
        return [
            path
            for vertex, path in iter_edge_paths(self.instance, limit=limit)
            if plane[vertex >> 6] >> (vertex & 63) & 1
        ]

    def iter_tree_matches(self, limit: int = 1_000_000) -> Iterator[tuple[tuple[int, ...], int]]:
        """Yield ``(edge_path, dag_vertex)`` for each selected tree node.

        Lazy: consuming only a prefix (e.g. via ``itertools.islice``) walks
        only as much of the tree as needed to produce it, so printing the
        first k matches is bounded work even on astronomically large
        selections — as long as they appear early in document order.
        """
        plane = self.instance.plane_of(self.set_name)
        for vertex, path in iter_edge_paths(self.instance, limit=limit):
            if plane[vertex >> 6] >> (vertex & 63) & 1:
                yield path, vertex

    def decompression_ratio(self) -> float:
        """How much the instance grew during evaluation (1.0 = not at all)."""
        if not self.before[0]:
            return 1.0
        return self.after[0] / self.before[0]

    def summary(self) -> str:
        after = self.after
        return (
            f"query time {self.seconds * 1000:8.2f} ms | instance "
            f"{self.before[0]}v/{self.before[1]}e -> {after[0]}v/{after[1]}e | "
            f"selected {self.dag_count()} dag / {self.tree_count()} tree nodes"
        )


@dataclass
class BatchStats:
    """Shared-work accounting of one batch evaluation.

    ``nodes_total`` counts every algebra-node evaluation the batch *asked*
    for; ``nodes_reused`` of those were answered from the cross-query
    common-subexpression cache without touching the instance, and
    ``nodes_evaluated`` ran for real.
    """

    queries: int = 0
    nodes_total: int = 0
    nodes_evaluated: int = 0
    nodes_reused: int = 0

    @property
    def sharing_ratio(self) -> float:
        """Fraction of algebra-node evaluations served by the cache."""
        return self.nodes_reused / self.nodes_total if self.nodes_total else 0.0


@dataclass
class BatchResult:
    """Per-query results of one batch evaluation over a shared instance.

    All contained :class:`QueryResult`\\ s point at the *same* final
    instance; each holds its own durable snapshot selection (``#q<i>``), so
    decoding any of them remains valid regardless of which later query
    forced a partial decompression.
    """

    results: list[QueryResult]
    #: Wall-clock seconds for the whole batch (>= sum of per-query times).
    seconds: float = 0.0
    stats: BatchStats = field(default_factory=BatchStats)

    def __post_init__(self) -> None:
        # Results holding the same instance share one path-count memo cell,
        # so a batch of N queries computes the (expensive, big-integer)
        # tree_node_counts table once instead of N times.
        cells: dict[int, _PathCounts] = {}
        for result in self.results:
            result._counts_cell = cells.setdefault(id(result.instance), result._counts_cell)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[QueryResult]:
        return iter(self.results)

    def __getitem__(self, index: int) -> QueryResult:
        return self.results[index]

    @property
    def instance(self) -> Instance:
        """The shared final instance all per-query selections live on."""
        if not self.results:
            raise ValueError("empty batch has no instance")
        return self.results[0].instance

    def summary(self) -> str:
        stats = self.stats
        lines = [
            f"batch of {stats.queries} queries in {self.seconds * 1000:.2f} ms | "
            f"algebra nodes {stats.nodes_evaluated} evaluated / "
            f"{stats.nodes_reused} reused ({100 * stats.sharing_ratio:.0f}% shared)"
        ]
        for index, result in enumerate(self.results):
            lines.append(f"  [{index}] {result.summary()}")
        return "\n".join(lines)

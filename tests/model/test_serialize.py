"""Tests for instance persistence (the REPRO-DAG text format)."""

import pytest

from repro.errors import ReproError
from repro.model.equivalence import equivalent
from repro.model.serialize import dumps, load_file, loads, save_file
from repro.skeleton.loader import load_instance


class TestRoundTrip:
    def test_figure2_round_trip(self, figure2_compressed):
        restored = loads(dumps(figure2_compressed))
        restored.validate()
        assert equivalent(restored, figure2_compressed)
        assert restored.schema == figure2_compressed.schema

    def test_file_round_trip(self, tmp_path, figure2_compressed):
        path = str(tmp_path / "instance.dag")
        save_file(figure2_compressed, path)
        restored = load_file(path)
        assert equivalent(restored, figure2_compressed)

    def test_loaded_document_round_trip(self):
        from tests.skeleton.test_loader import BIB_XML

        instance = load_instance(BIB_XML, strings=["Codd"])
        restored = loads(dumps(instance))
        assert equivalent(restored, instance)

    def test_unreachable_vertices_compacted(self, figure2_compressed):
        instance = figure2_compressed.copy()
        instance.new_vertex(["title"])  # unreachable junk
        restored = loads(dumps(instance))
        restored.validate()
        assert restored.num_vertices == 5

    def test_multiplicities_preserved(self, figure2_compressed):
        restored = loads(dumps(figure2_compressed))
        book = next(iter(restored.members("book")))
        assert sorted(count for _, count in restored.children(book)) == [1, 3]

    def test_empty_schema(self):
        from repro.model.instance import Instance

        instance = Instance()
        instance.set_root(instance.new_vertex())
        restored = loads(dumps(instance))
        assert restored.num_vertices == 1
        assert restored.schema == ()


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ReproError, match="magic"):
            loads("NOT-A-DAG\n")

    def test_truncated(self, figure2_compressed):
        text = dumps(figure2_compressed)
        with pytest.raises(ReproError, match="truncated"):
            loads(text[: len(text) // 2].rsplit("\n", 1)[0])

    def test_malformed_header(self):
        with pytest.raises(ReproError, match="schema header"):
            loads("REPRO-DAG 1\nbogus\n")


def test_format_is_human_readable(figure2_compressed):
    text = dumps(figure2_compressed)
    assert text.startswith("REPRO-DAG 1\n")
    assert "bib" in text  # schema names in the clear

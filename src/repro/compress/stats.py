"""Size statistics for instances — the quantities reported in Figures 6 and 7 —
plus the per-document statistics catalog the plan optimizer runs on.

The paper measures compression as ``|E^{M(T)}| / |E^T|`` where DAG edges are
counted as run-length *entries* (one multiplicity edge counts once) and tree
edges are ``|V^T| - 1``.

:class:`DocumentStats` is the optimizer's input (DESIGN.md section 13,
``docs/optimizer.md``): per-set DAG/tree cardinalities from one linear pass
over the skeleton DAG (the path-summary node counts of Arion et al.), shape
aggregates (average depth, fanout, subtree size) for axis-image estimation,
and a character-frequency sketch of the document text for string-predicate
selectivity.  It is collected at shred time, persisted as ``stats.json``
beside the chunk store, and versioned (:data:`STATS_FORMAT_VERSION`) so an
instance published without statistics — or with an older format — falls
back to the unoptimized plan instead of erroring.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field

from repro.model.instance import Instance
from repro.model.paths import tree_size

#: Version stamp of the persisted statistics format.  Bump on any change to
#: the ``to_dict`` layout; readers treat other versions as "no statistics".
STATS_FORMAT_VERSION = 1


def _clamped(value: int | float) -> float:
    """A big int as a float, saturating to ``inf`` (compressed instances can
    represent trees with astronomically many nodes)."""
    try:
        return float(value)
    except OverflowError:
        return math.inf


@dataclass(frozen=True)
class InstanceStats:
    """Vertex/edge counts of an instance and of its tree version."""

    vertices: int
    edge_entries: int
    edges_expanded: int
    tree_vertices: int

    @property
    def tree_edges(self) -> int:
        return self.tree_vertices - 1

    @property
    def edge_ratio(self) -> float:
        """The paper's compression measure ``|E^M| / |E^T|`` (entries)."""
        return self.edge_entries / self.tree_edges if self.tree_edges else 1.0

    @property
    def vertex_ratio(self) -> float:
        return self.vertices / self.tree_vertices if self.tree_vertices else 1.0

    def row(self) -> str:
        """One formatted line in the style of Figure 6."""
        return (
            f"|V^T|={self.tree_vertices:>12,} |V^M|={self.vertices:>9,} "
            f"|E^M|={self.edge_entries:>10,} ratio={100 * self.edge_ratio:6.2f}%"
        )


def instance_stats(instance: Instance) -> InstanceStats:
    """Compute the Figure 6 quantities for ``instance``."""
    return InstanceStats(
        vertices=len(instance.preorder()),
        edge_entries=instance.num_edge_entries,
        edges_expanded=instance.num_edges_expanded,
        tree_vertices=tree_size(instance),
    )


# ----------------------------------------------------------------------
# The optimizer's statistics catalog
# ----------------------------------------------------------------------

#: Character-sketch size cap: only this many most-common characters are
#: persisted (enough for selectivity *ordering*; see ``string_selectivity``).
_SKETCH_CHARS = 128

#: Cap for persisted float aggregates: JSON has no ``Infinity``, and a
#: Figure-5 binary tree's average subtree size overflows a double anyway.
_FLOAT_CAP = 1e300


def _capped(value: float) -> float:
    return value if value < _FLOAT_CAP else _FLOAT_CAP


def _ratio(numerator: int, denominator: int) -> float:
    """Big-int division as a float: exact while the *ratio* fits a double
    (Python scales internally), saturating instead of overflowing."""
    try:
        return numerator / denominator
    except OverflowError:
        return math.inf


@dataclass(frozen=True)
class SetStats:
    """Cardinalities of one schema set: DAG vertices and tree nodes.

    ``tree_count`` is exact big-integer arithmetic (the per-vertex path
    counts of :func:`repro.model.paths.tree_node_counts` summed over the
    set), so "provably empty" really is a proof, not an estimate.
    """

    dag_count: int
    tree_count: int


@dataclass(frozen=True)
class DocumentStats:
    """The per-document statistics catalog driving plan optimization.

    One linear pass over the skeleton DAG yields, per schema set, its DAG
    vertex count and exact tree-node count (path-summary cardinalities);
    plus the shape aggregates the axis-image estimator uses and an optional
    character-frequency sketch for string-predicate selectivity.

    ``complete_tags`` records whether the tag universe was complete when
    the stats were collected (catalog documents are shredded over *every*
    tag, so an unknown tag set is provably empty; an instance loaded over
    one query's schema proves nothing about other tags).  String sets are
    only exact when they were part of the schema at collection time —
    otherwise :meth:`tree_count` returns ``None`` and the optimizer must
    treat them as unknown (estimate via the sketch, never fold).
    """

    format_version: int
    #: Exact number of tree nodes ``|V^T|`` (big int).
    tree_nodes: int
    dag_vertices: int
    avg_depth: float
    avg_fanout: float
    avg_subtree: float
    #: Schema sets containing the document root.
    root_sets: tuple[str, ...]
    sets: dict[str, SetStats] = field(default_factory=dict)
    complete_tags: bool = False
    #: Character counts over the document text (most common only).
    chars: dict[str, int] = field(default_factory=dict)
    total_chars: int = 0

    # -- collection ------------------------------------------------------

    @classmethod
    def from_instance(
        cls,
        instance: Instance,
        text: str | None = None,
        complete_tags: bool = False,
    ) -> "DocumentStats":
        """Collect the full catalog from one compressed instance.

        Cost is linear in the DAG (plus big-int arithmetic on the path
        counts): one topological pass computes per-vertex tree
        multiplicities and depth sums top-down, a reverse pass computes
        subtree sizes bottom-up.  ``text`` (when given) feeds the
        character sketch used for string-predicate selectivity.
        """
        from repro.model.schema import is_result, is_temp

        order = instance.topological_order()
        counts: dict[int, int] = {}
        depth_sums: dict[int, int] = {}
        subtree: dict[int, int] = {}
        for vertex in order:
            counts.setdefault(vertex, 0)
            depth_sums.setdefault(vertex, 0)
            if vertex == instance.root:
                counts[vertex] += 1
            multiplier = counts[vertex]
            depths = depth_sums[vertex]
            for child, count in instance.children(vertex):
                counts[child] = counts.get(child, 0) + multiplier * count
                depth_sums[child] = depth_sums.get(child, 0) + count * (
                    depths + multiplier
                )
        internal = 0
        for vertex in reversed(order):
            size = 1
            for child, count in instance.children(vertex):
                size += count * subtree[child]
            subtree[vertex] = size
            if instance.out_degree(vertex):
                internal += counts[vertex]
        tree_nodes = sum(counts.values())
        sets: dict[str, SetStats] = {}
        for name in instance.schema:
            if is_temp(name) or is_result(name):
                continue
            members = instance.members(name)
            tree_count = sum(counts.get(v, 0) for v in members)
            sets[name] = SetStats(
                dag_count=sum(1 for v in members if v in counts),
                tree_count=tree_count,
            )
        avg_depth = (
            _capped(_ratio(sum(depth_sums.values()), tree_nodes))
            if tree_nodes
            else 0.0
        )
        avg_subtree = (
            _capped(_ratio(sum(counts[v] * subtree[v] for v in order), tree_nodes))
            if tree_nodes
            else 0.0
        )
        avg_fanout = _ratio(tree_nodes - 1, internal) if internal else 0.0
        chars: dict[str, int] = {}
        total_chars = 0
        if text is not None:
            total_chars = len(text)
            chars = dict(Counter(text).most_common(_SKETCH_CHARS))
        return cls(
            format_version=STATS_FORMAT_VERSION,
            tree_nodes=tree_nodes,
            dag_vertices=len(order),
            avg_depth=avg_depth,
            avg_fanout=_capped(avg_fanout),
            avg_subtree=avg_subtree,
            root_sets=tuple(
                name
                for name in instance.sets_at(instance.root)
                if not is_temp(name) and not is_result(name)
            ),
            sets=sets,
            complete_tags=complete_tags,
            chars=chars,
            total_chars=total_chars,
        )

    # -- lookups ---------------------------------------------------------

    def tree_count(self, name: str) -> int | None:
        """Exact tree-node count of schema set ``name``, or ``None`` unknown.

        An unknown *tag* is provably empty when the tag universe was
        complete at collection time; an unknown string set is never
        assumed anything (string schemas are per-query, not per-document).
        """
        from repro.model.schema import is_string_set

        entry = self.sets.get(name)
        if entry is not None:
            return entry.tree_count
        if is_string_set(name):
            return None
        return 0 if self.complete_tags else None

    def dag_count(self, name: str) -> int | None:
        from repro.model.schema import is_string_set

        entry = self.sets.get(name)
        if entry is not None:
            return entry.dag_count
        if is_string_set(name):
            return None
        return 0 if self.complete_tags else None

    def is_empty(self, name: str) -> bool:
        """True only when the catalog *proves* ``name`` selects nothing."""
        return self.tree_count(name) == 0

    def root_in(self, name: str) -> bool | None:
        """Whether the root is in set ``name`` (``None`` when unknown)."""
        if name in self.root_sets:
            return True
        if name in self.sets or self.complete_tags:
            from repro.model.schema import is_string_set

            if name in self.sets or not is_string_set(name):
                return False
        return None

    def string_selectivity(self, needle: str) -> float | None:
        """Estimated number of tree nodes matching ``contains(needle)``.

        The crudest sketch that still orders predicates usefully: under a
        character-independence assumption, the expected number of match
        *positions* is ``total_chars * prod(freq(c)/total_chars)``; a node
        matches when its subtree text has at least one position, so the
        node estimate is the position estimate clamped to the node count.
        Assumptions (documented in docs/optimizer.md): character
        independence (wrong for natural language, fine for ordering),
        match positions spread over distinct nodes, and a sketch truncated
        to the most common characters (a missing character estimates as
        frequency 1).  Returns ``None`` without a sketch.
        """
        if not self.total_chars:
            return None
        if not needle:
            return _clamped(self.tree_nodes)
        probability = 1.0
        for char in needle:
            probability *= self.chars.get(char, 1) / self.total_chars
            if probability == 0.0:
                break
        expected = self.total_chars * probability
        return min(_clamped(self.tree_nodes), expected)

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "format_version": self.format_version,
            "tree_nodes": self.tree_nodes,
            "dag_vertices": self.dag_vertices,
            "avg_depth": self.avg_depth,
            "avg_fanout": self.avg_fanout,
            "avg_subtree": self.avg_subtree,
            "root_sets": list(self.root_sets),
            "sets": {
                name: [entry.dag_count, entry.tree_count]
                for name, entry in sorted(self.sets.items())
            },
            "complete_tags": self.complete_tags,
            "chars": self.chars,
            "total_chars": self.total_chars,
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "DocumentStats":
        """Rebuild persisted statistics; raises ``ValueError`` on a version
        or shape mismatch (callers treat that as "no statistics")."""
        if not isinstance(raw, dict) or raw.get("format_version") != STATS_FORMAT_VERSION:
            found = raw.get("format_version") if isinstance(raw, dict) else raw
            raise ValueError(f"unsupported stats format: {found!r}")
        try:
            return cls(
                format_version=int(raw["format_version"]),
                tree_nodes=int(raw["tree_nodes"]),
                dag_vertices=int(raw["dag_vertices"]),
                avg_depth=float(raw["avg_depth"]),
                avg_fanout=float(raw["avg_fanout"]),
                avg_subtree=float(raw["avg_subtree"]),
                root_sets=tuple(raw["root_sets"]),
                sets={
                    name: SetStats(dag_count=int(pair[0]), tree_count=int(pair[1]))
                    for name, pair in raw["sets"].items()
                },
                complete_tags=bool(raw["complete_tags"]),
                chars={str(k): int(v) for k, v in raw.get("chars", {}).items()},
                total_chars=int(raw.get("total_chars", 0)),
            )
        except (KeyError, TypeError, IndexError) as error:
            raise ValueError(f"malformed stats payload: {error}") from error


def document_stats(
    instance: Instance, text: str | None = None, complete_tags: bool = False
) -> DocumentStats:
    """Convenience wrapper: collect :class:`DocumentStats` for ``instance``."""
    return DocumentStats.from_instance(instance, text=text, complete_tags=complete_tags)

"""Abstract syntax of the Core XPath fragment (section 3.1).

The fragment covers everything appearing in the paper's Appendix A:

* absolute and relative location paths with ``/`` and ``//`` separators,
* all eleven node-selecting axes (plus ``self``),
* name and ``*`` node tests,
* predicates combining relative paths, absolute paths, string-containment
  constraints (``["abc"]``) with ``and`` / ``or`` / ``not(...)``.

``//`` is desugared by the parser into an explicit
``descendant-or-self::*`` step, and re-fused to a ``descendant`` axis by
:func:`repro.xpath.compiler.simplify_steps`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The axes of Core XPath, paper section 3.1.
AXES = frozenset(
    {
        "self",
        "child",
        "parent",
        "descendant",
        "descendant-or-self",
        "ancestor",
        "ancestor-or-self",
        "following-sibling",
        "preceding-sibling",
        "following",
        "preceding",
    }
)

#: chi <-> chi^-1, used to reverse predicate paths (Fig. 3).
INVERSE_AXIS = {
    "self": "self",
    "child": "parent",
    "parent": "child",
    "descendant": "ancestor",
    "ancestor": "descendant",
    "descendant-or-self": "ancestor-or-self",
    "ancestor-or-self": "descendant-or-self",
    "following-sibling": "preceding-sibling",
    "preceding-sibling": "following-sibling",
    "following": "preceding",
    "preceding": "following",
}

#: Axes whose application never splits DAG vertices (Proposition 3.3).
UPWARD_AXES = frozenset({"self", "parent", "ancestor", "ancestor-or-self"})


class Expr:
    """Base class of predicate expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Step:
    """One location step: ``axis::test[pred]*``."""

    axis: str
    test: str  # tag name or "*"
    predicates: tuple[Expr, ...] = ()

    def __str__(self) -> str:
        out = f"{self.axis}::{self.test}"
        for predicate in self.predicates:
            out += f"[{predicate}]"
        return out


@dataclass(frozen=True)
class LocationPath(Expr):
    """A path; absolute paths start at the (virtual) document root."""

    absolute: bool
    steps: tuple[Step, ...]

    def __str__(self) -> str:
        body = "/".join(str(step) for step in self.steps)
        return ("/" + body) if self.absolute else body


@dataclass(frozen=True)
class PathUnion(Expr):
    """``path1 | path2``: the union of several location paths' selections."""

    paths: tuple["LocationPath", ...]

    def __str__(self) -> str:
        return " | ".join(str(path) for path in self.paths)


@dataclass(frozen=True)
class OrExpr(Expr):
    parts: tuple[Expr, ...]

    def __str__(self) -> str:
        return " or ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class AndExpr(Expr):
    parts: tuple[Expr, ...]

    def __str__(self) -> str:
        return " and ".join(f"({part})" for part in self.parts)


@dataclass(frozen=True)
class NotExpr(Expr):
    part: Expr

    def __str__(self) -> str:
        return f"not({self.part})"


@dataclass(frozen=True)
class StringExpr(Expr):
    """``["needle"]`` — the node's string value contains the needle."""

    needle: str

    def __str__(self) -> str:
        return f'"{self.needle}"'


def walk(expr: Expr):
    """Yield every AST node under ``expr`` (including itself)."""
    yield expr
    if isinstance(expr, PathUnion):
        for path in expr.paths:
            yield from walk(path)
    elif isinstance(expr, LocationPath):
        for step in expr.steps:
            for predicate in step.predicates:
                yield from walk(predicate)
    elif isinstance(expr, (OrExpr, AndExpr)):
        for part in expr.parts:
            yield from walk(part)
    elif isinstance(expr, NotExpr):
        yield from walk(expr.part)

"""A persistent multi-document catalog over the chunked store.

The serving model of the paper — and of Arion et al.'s path-partitioned
stores — is *load once, query forever*: a document is shredded into the
compressed chunk store exactly once, at registration time, and every later
query is answered from the resident (or quickly re-assembled) instance
without touching the XML again.

A :class:`Catalog` is a directory::

    <root>/catalog.json            registry: name -> entry metadata
    <root>/<name>/document.xml     the original text (string-schema reloads)
    <root>/<name>/chunks/          the shredded instance (storage.chunked)

Documents are registered with **every** tag as a node set, so any tag-only
query can be served from the shredded chunks alone (a *warm start*: one
:func:`repro.model.serialize.load` per distinct chunk, no XML parse).  Only
queries with string-containment predicates need the original text again —
string sets are computed by the one-scan matcher at load time — and the
resulting instances are cached upstream in the server's instance pool,
keyed by their string schema.

All catalog methods are thread-safe: registration and removal serialise on
one lock, and the manifest is rewritten atomically (temp file + rename).
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
from dataclasses import asdict, dataclass, field

from repro.errors import CatalogError
from repro.skeleton.loader import load
from repro.storage.chunked import ChunkedStore

_MANIFEST = "catalog.json"
_FORMAT = "repro-catalog-1"
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass
class CatalogEntry:
    """Registry metadata for one shredded document."""

    name: str
    #: ``"ignore"`` or ``"nodes"`` — how attributes were encoded at shred time.
    attributes: str = "ignore"
    megabytes: float = 0.0
    skeleton_nodes: int = 0
    dag_vertices: int = 0
    dag_edge_entries: int = 0
    chunks: int = 0
    shred_seconds: float = 0.0
    #: Tag sets available in the shredded schema (queries outside this set
    #: still work: missing sets are materialised empty at serve time).
    tags: list[str] = field(default_factory=list)


class Catalog:
    """A directory of registered documents, shredded once, served many times."""

    def __init__(self, root: str):
        self.root = root
        self._lock = threading.RLock()
        self._entries: dict[str, CatalogEntry] = {}
        self._stores: dict[str, ChunkedStore] = {}
        manifest_path = os.path.join(root, _MANIFEST)
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if manifest.get("format") != _FORMAT:
                raise CatalogError(f"not a repro catalog: {root}")
            for raw in manifest["documents"]:
                entry = CatalogEntry(**raw)
                self._entries[entry.name] = entry

    # -- registry --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def entries(self) -> list[CatalogEntry]:
        with self._lock:
            return [self._entries[name] for name in sorted(self._entries)]

    def entry(self, name: str) -> CatalogEntry:
        with self._lock:
            try:
                return self._entries[name]
            except KeyError:
                known = ", ".join(sorted(self._entries)) or "(catalog is empty)"
                raise CatalogError(
                    f"unknown catalog document {name!r}; known: {known}"
                ) from None

    def _write_manifest(self) -> None:
        manifest = {
            "format": _FORMAT,
            "documents": [asdict(self._entries[name]) for name in sorted(self._entries)],
        }
        os.makedirs(self.root, exist_ok=True)
        temp_path = os.path.join(self.root, _MANIFEST + ".tmp")
        with open(temp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2)
            handle.write("\n")
        os.replace(temp_path, os.path.join(self.root, _MANIFEST))

    # -- registration ----------------------------------------------------

    def add(self, name: str, xml: str, attributes: str = "ignore") -> CatalogEntry:
        """Register ``xml`` under ``name``: shred once, serve forever.

        The document is loaded over *all* tags (every element tag becomes a
        node set) and shredded into the chunk store; the original text is
        kept beside it for string-schema reloads.  The (possibly slow)
        parse + shred runs *outside* the registry lock so a registration
        never stalls concurrent query traffic; only the registry update is
        serialised.
        """
        if not _NAME_RE.match(name):
            raise CatalogError(
                f"invalid document name {name!r} (use letters, digits, '.', '_', '-')"
            )
        with self._lock:
            if name in self._entries:
                raise CatalogError(f"document {name!r} is already in the catalog")
        result = load(xml, tags=None, attributes=attributes)
        instance = result.instance
        doc_dir = os.path.join(self.root, name)
        os.makedirs(doc_dir, exist_ok=True)
        with open(os.path.join(doc_dir, "document.xml"), "w", encoding="utf-8") as handle:
            handle.write(xml)
        store = ChunkedStore.save(instance, os.path.join(doc_dir, "chunks"))
        entry = CatalogEntry(
            name=name,
            attributes=attributes,
            megabytes=len(xml.encode("utf-8")) / 1e6,
            skeleton_nodes=result.skeleton_nodes,
            dag_vertices=instance.num_vertices,
            dag_edge_entries=instance.num_edge_entries,
            chunks=store.num_chunks,
            shred_seconds=result.parse_seconds,
            tags=[set_name for set_name in instance.schema if not set_name.startswith("#")],
        )
        with self._lock:
            if name in self._entries:
                # Lost a registration race: drop our files, keep the winner's.
                shutil.rmtree(doc_dir, ignore_errors=True)
                raise CatalogError(f"document {name!r} is already in the catalog")
            self._entries[name] = entry
            self._stores[name] = store
            self._write_manifest()
        return entry

    def add_file(self, name: str, path: str, attributes: str = "ignore") -> CatalogEntry:
        """Register the XML file at ``path`` (see :meth:`add`)."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.add(name, handle.read(), attributes=attributes)

    def remove(self, name: str) -> None:
        """Drop ``name`` from the registry and delete its files."""
        with self._lock:
            self.entry(name)  # raises CatalogError when unknown
            del self._entries[name]
            self._stores.pop(name, None)
            self._write_manifest()
            shutil.rmtree(os.path.join(self.root, name), ignore_errors=True)

    # -- serving ---------------------------------------------------------

    def xml(self, name: str) -> str:
        """The original document text (string-schema reloads only)."""
        self.entry(name)
        with open(
            os.path.join(self.root, name, "document.xml"), "r", encoding="utf-8"
        ) as handle:
            return handle.read()

    def store(self, name: str) -> ChunkedStore:
        """The (cached) chunk store of ``name``."""
        with self._lock:
            store = self._stores.get(name)
            if store is None:
                self.entry(name)
                store = ChunkedStore(os.path.join(self.root, name, "chunks"))
                self._stores[name] = store
            return store

    def load_instance(self, name: str, strings: tuple[str, ...] = ()):
        """A full instance of ``name`` over its tag schema plus ``strings``.

        Without string constraints this is the warm path: the instance is
        assembled from the shredded chunks (``serialize.load`` per distinct
        chunk, run-length repetition from the manifest) — the XML is never
        re-parsed.  With string constraints the original text is re-scanned
        once to compute the containment sets; callers cache the result.
        """
        if not strings:
            return self.store(name).assemble()
        entry = self.entry(name)
        return load(
            self.xml(name), tags=None, strings=list(strings), attributes=entry.attributes
        ).instance

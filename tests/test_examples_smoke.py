"""Every script in examples/ must actually run (the façade's first users).

Each example executes in a subprocess at a tiny corpus scale — this is a
smoke gate, not a benchmark: an example that crashes (an API drift, a
renamed symbol, a bad import) fails here before it fails in a reader's
hands.  CI runs the same scripts at slightly larger scales in the
examples-smoke step.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: script -> argv tail (small scales keep the suite fast).
EXAMPLES = {
    "quickstart.py": [],
    "query_plans.py": [],
    "auction_analytics.py": ["40"],
    "bibliography_queries.py": ["60"],
    "shakespeare_concordance.py": ["20"],
}


def run_example(name: str, args: list[str]) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )


def test_every_example_is_covered():
    # A new example script must be added to the smoke table (or this test).
    scripts = {
        name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
    }
    missing = scripts - set(EXAMPLES) - {"compression_explorer.py"}
    assert not missing, f"examples missing from the smoke table: {sorted(missing)}"


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs(name):
    completed = run_example(name, EXAMPLES[name])
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must print their findings"


def test_compression_explorer_runs_in_ci_only():
    # compression_explorer generates a sample of EVERY corpus at a fixed
    # fraction of its default scale — minutes of work, exercised by the CI
    # examples-smoke step instead of the tier-1 suite.
    assert os.path.exists(os.path.join(EXAMPLES_DIR, "compression_explorer.py"))

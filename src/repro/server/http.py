"""The JSON-over-HTTP front of the query service (stdlib only).

``repro serve`` runs one of two front-ends over the same route core
(:mod:`repro.server.routes`): the default asyncio server
(:class:`repro.server.asyncio_http.AsyncReproHTTPServer`) or this
module's :class:`ReproHTTPServer` — a ``ThreadingHTTPServer`` whose
handler threads feed either the in-process coalescing
:class:`repro.server.service.QueryService` (``--workers 0``) or the
pre-forked :class:`repro.server.cluster.WorkerFleet` (``--workers N``).
Both front-ends expose the same surface and byte-identical bodies, so
the threaded path doubles as the differential-testing oracle.
Endpoints::

    GET    /healthz            liveness + catalog summary (+ fleet summary)
    GET    /stats              serving / pool / coalescing counters
                               (per-worker shard/residency/queue-depth
                               counters under --workers N)
    GET    /metrics            Prometheus text exposition (repro_* families)
    GET    /catalog            registered documents with shred metadata
    POST   /catalog/<name>     register a document  {"xml": "<...>"}
    DELETE /catalog/<name>     evict: drop pool residency + catalog entry
    POST   /query              {"document": d, "query": q,
                                "paths": N?, "limit": N?}
    GET    /explain            ?document=d&query=q -> structured Plan JSON
    POST   /explain            {"document": d?, "query": q}

Every response is ``application/json`` (``/metrics`` is text/plain) and
carries an ``X-Repro-Trace`` header — the client's own trace ID when it
sent one, a freshly minted one otherwise.  Every error body is the
uniform envelope of :func:`repro.api.envelope.error_envelope` —
``{"error": {"kind", "message", "detail"}}`` — whose ``kind`` strings are
the same families the cluster worker wire protocol round-trips, so a
client sees identical error payloads at any worker count.  Status codes
map the same way the CLI maps errors to exit codes: unknown documents
and malformed queries are 400/404 (the caller's fault), engine failures
are 500.  A request whose shard's worker process died mid-flight is 503
— transient by construction, the dispatcher respawns the worker.
"""

from __future__ import annotations

import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.server.catalog import Catalog
from repro.server.metrics import ServerMetrics
from repro.server.routes import MAX_BODY, Request, Router
from repro.server.service import QueryService

__all__ = [
    "MAX_BODY",
    "ReproHTTPServer",
    "create_server",
    "serve",
    "wait_ready",
]


class ReproHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection; requests coalesce in the service."""

    daemon_threads = True
    # socketserver's default listen backlog is 5; a burst of clients
    # connecting at once then overflows the SYN queue and the dropped
    # connects retry after a full second.  128 rides out real bursts.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service,
        quiet: bool = True,
        default_deadline_ms: float = 0.0,
    ):
        self.service = service
        self.quiet = quiet
        #: Applied to /query requests that carry no deadline of their own
        #: (0 = requests without a deadline run unbounded, as before).
        self.default_deadline_ms = default_deadline_ms
        self.metrics = ServerMetrics(lambda: self.service, frontend="threaded")
        self.router = Router(
            lambda: self.service,
            default_deadline_ms=default_deadline_ms,
            metrics=self.metrics,
        )
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    """Reads bytes off the socket; everything else happens in the Router."""

    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"
    # Responses go out as header + body segments on a keep-alive connection;
    # without this (a *handler* attribute, per socketserver), Nagle + the
    # client's delayed ACK stall every request on the connection ~40ms.
    disable_nagle_algorithm = True

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def log_request(self, code="-", size="-") -> None:
        # One access-log line per request, trace ID included.
        self.log_message(
            '"%s" %s trace=%s', self.requestline, str(code), getattr(self, "_trace", "-")
        )

    def _write(self, response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)

    def _dispatch(self, method: str) -> None:
        received_at = time.monotonic()
        try:
            length = int(self.headers.get("Content-Length", 0) or 0)
        except ValueError:
            length = 0
        router = self.server.router
        if length > MAX_BODY:
            # Refuse before reading the body (matching the historical
            # behavior of replying without draining the oversized payload).
            request = Request(
                method, self.path, headers=self.headers,
                client=self.client_address[0], received_at=received_at,
            )
            self._trace = request.trace
            self._write(
                router.reject(
                    request, 413, f"request body over {MAX_BODY} bytes", "payload-too-large"
                )
            )
            return
        body = self.rfile.read(length) if length > 0 else b""
        request = Request(
            method, self.path, headers=self.headers, body=body,
            client=self.client_address[0], received_at=received_at,
        )
        self._trace = request.trace
        self._write(router.dispatch(request))

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("DELETE")


def create_server(
    catalog_dir: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    mode: str = "snapshot",
    window: float = 0.0,
    max_batch: int = 64,
    pool_capacity: int = 8,
    axes: str = "functional",
    quiet: bool = True,
    workers: int = 0,
    worker_threads: int = 4,
    deadline_ms: float = 0.0,
    max_queue: int = 0,
    rate_limit: float = 0.0,
    frontend: str = "threaded",
    http_threads: int = 0,
):
    """Build a ready-to-run server (``port=0`` binds an ephemeral port).

    ``workers=0`` serves in process (PR 3's single-process path);
    ``workers=N`` pre-forks a :class:`repro.server.cluster.WorkerFleet`
    and the front-end becomes a sharding dispatcher.  Callers own the
    service lifecycle: call ``server.service.close()`` after
    ``server_close()`` to drain the fleet.

    ``frontend`` selects the transport: ``"threaded"`` (this module's
    ``ThreadingHTTPServer``, the default here for embedding/test
    compatibility) or ``"async"`` (the asyncio front-end — ``serve()``
    and the CLI default to it).  ``http_threads`` sizes the async
    front-end's executor bridge (0 = automatic); ignored when threaded.

    The resilience knobs: ``deadline_ms`` is the default end-to-end budget
    for requests that do not carry their own (0 = unbounded),
    ``max_queue`` caps concurrently admitted requests, and ``rate_limit``
    is per-client requests/second — both shed with 429 + ``Retry-After``
    when exceeded (0 disables each).
    """
    if frontend not in ("threaded", "async"):
        raise ValueError(f"unknown frontend {frontend!r} (expected 'async' or 'threaded')")
    # Bind the socket *before* building the service: a failed bind (port
    # in use) must not leave a spawned worker fleet running with no handle
    # to close it.  The handler only reads ``server.service`` per request,
    # so the placeholder is never observed.
    if frontend == "async":
        from repro.server.asyncio_http import AsyncReproHTTPServer

        server = AsyncReproHTTPServer(
            (host, port), None, quiet=quiet, default_deadline_ms=deadline_ms,
            executor_threads=http_threads,
        )
    else:
        server = ReproHTTPServer(
            (host, port), None, quiet=quiet, default_deadline_ms=deadline_ms
        )
    try:
        if workers:
            from repro.server.cluster import WorkerFleet

            service = WorkerFleet(
                Catalog(catalog_dir),
                workers=workers,
                mode=mode,
                window=window,
                max_batch=max_batch,
                pool_capacity=pool_capacity,
                axes=axes,
                worker_threads=worker_threads,
                max_queue=max_queue,
                rate_limit=rate_limit,
            )
        else:
            service = QueryService(
                Catalog(catalog_dir),
                mode=mode,
                window=window,
                max_batch=max_batch,
                pool_capacity=pool_capacity,
                axes=axes,
                max_queue=max_queue,
                rate_limit=rate_limit,
            )
    except BaseException:
        server.server_close()
        raise
    server.service = service
    return server


def wait_ready(host: str, port: int, timeout: float = 30.0, path: str = "/healthz") -> bool:
    """Block until the server at ``host:port`` answers ``path`` with 2xx.

    Both 200 (``ok``) and 203 (``degraded``) count as ready: a degraded
    server is *serving* — a probe that refused to consider it up would
    turn partial failures into total ones.

    The shared readiness probe: tests and the benchmark harnesses call
    this one helper instead of hand-rolled retry loops (or, worse, fixed
    sleeps), so "server is up" means the same thing everywhere — the
    socket accepts *and* a real request round-trips.  Returns ``False``
    instead of raising when the deadline passes, so callers produce their
    own diagnostics.
    """
    import http.client

    deadline = time.monotonic() + timeout
    while True:
        # Bound each attempt separately (1 s, or whatever remains of the
        # overall budget): one hanging connect against a full listen
        # backlog must not consume the entire deadline in a single try.
        attempt = max(0.05, min(1.0, deadline - time.monotonic()))
        try:
            connection = http.client.HTTPConnection(host, port, timeout=attempt)
            try:
                connection.request("GET", path)
                if connection.getresponse().status in (200, 203):
                    return True
            finally:
                connection.close()
        except (OSError, http.client.HTTPException):
            pass
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.02)


def _stats_line(service) -> str:
    """One greppable line of serving counters (the ``--stats-interval`` log)."""
    stats = service.stats_dict()
    if "cluster" in stats:
        cluster = stats["cluster"]
        depths = ",".join(str(row["queue_depth"]) for row in stats["workers"])
        shards = ",".join(str(len(row.get("shards", []))) for row in stats["workers"])
        return (
            f"workers={cluster['alive']}/{cluster['workers']} "
            f"dispatched={cluster['dispatched']} completed={cluster['completed']} "
            f"failed={cluster['failed']} respawns={cluster['respawns']} "
            f"depth=[{depths}] shards=[{shards}]"
        )
    inner, pool = stats["service"], stats["pool"]
    return (
        f"requests={inner['requests']} batches={inner['batches']} "
        f"coalesced={inner['coalesced_requests']} errors={inner['errors']} "
        f"pool={pool['resident']}/{pool['capacity']} "
        f"hits={pool['hits']} misses={pool['misses']}"
    )


def serve(
    catalog_dir: str,
    stats_interval: float = 0.0,
    frontend: str = "async",
    **kwargs,
) -> None:
    """Run the server until interrupted (the ``repro serve`` entry point).

    ``frontend`` picks the transport (``"async"`` by default — the
    event-loop front-end; ``"threaded"`` keeps the thread-per-connection
    fallback).  ``stats_interval=S`` (seconds, 0 = off) logs one
    :func:`_stats_line` to stderr every S seconds, so CI smoke runs and
    operators can watch queue depth and shard residency without curling
    ``/stats``.

    SIGTERM (and SIGINT, even when the process was started as a shell
    background job with SIGINT ignored) triggers the same graceful path:
    the HTTP socket closes and the worker fleet drains — the standard
    ``kill``/systemd/docker stop signal must never orphan workers.
    """
    import signal
    import sys
    import threading

    server = create_server(catalog_dir, frontend=frontend, **kwargs)

    def _signal_shutdown(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _signal_shutdown)
        signal.signal(signal.SIGINT, _signal_shutdown)
    except ValueError:  # pragma: no cover - not the main thread (embedded use)
        pass
    service = server.service
    documents = service.catalog.names()
    workers = getattr(service, "workers", 0)
    fleet = f" workers={workers}" if workers else ""
    print(
        f"repro serve: {server.url}  catalog={catalog_dir!r} "
        f"documents={len(documents)} mode={service.mode} frontend={frontend}{fleet}",
        file=sys.stderr,
    )
    stop_stats = threading.Event()
    if stats_interval > 0:
        def stats_loop() -> None:
            while not stop_stats.wait(stats_interval):
                try:
                    print(f"repro serve: stats {_stats_line(service)}", file=sys.stderr)
                except Exception as error:  # noqa: BLE001 - logging must not kill serving
                    print(f"repro serve: stats unavailable: {error}", file=sys.stderr)

        threading.Thread(target=stats_loop, name="stats-log", daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        stop_stats.set()
        server.server_close()
        service.close()

"""String subsystem: multi-pattern matching and XMILL-style containers."""

from repro.strings.aho_corasick import AhoCorasick
from repro.strings.containers import Container, ContainerStore
from repro.strings.matcher import StreamMatcher

__all__ = ["AhoCorasick", "Container", "ContainerStore", "StreamMatcher"]

"""The ``repro.api`` façade: Database / PreparedQuery lifecycle and plumbing."""

import warnings

import pytest

import repro
from repro.api import Database, Plan, PreparedQuery
from repro.engine.pipeline import Engine
from repro.errors import CatalogError, ReproError

BIB_XML = """\
<bib>
  <book><title>Foundations</title><author>Abiteboul</author>\
<author>Hull</author><author>Vianu</author></book>
  <paper year="1970"><title>Relational</title><author>Codd</author></paper>
  <paper><title>Complexity</title><author>Vardi</author></paper>
</bib>
"""


class TestOpen:
    def test_open_text(self):
        with repro.open(BIB_XML) as db:
            assert db.mode == "embedded"
            assert db.execute("//author").tree_count() == 5

    def test_open_xml_file(self, tmp_path):
        path = tmp_path / "bib.xml"
        path.write_text(BIB_XML, encoding="utf-8")
        with repro.open(path) as db:
            assert db.execute("//author").tree_count() == 5

    def test_open_dag_file(self, tmp_path):
        from repro.model.serialize import save_file
        from repro.skeleton.loader import load

        path = str(tmp_path / "bib.dag")
        save_file(load(BIB_XML).instance, path)
        with repro.open(path) as db:
            assert db.execute("//author").tree_count() == 5
            # No character data in a .dag: the fragment tier is off.
            with pytest.raises(ReproError, match="fragments"):
                db.execute("//author").fragments(1)

    def test_open_dag_file_honours_axes(self, tmp_path):
        # Regression: from_file's .dag branch used to drop the axes kwarg.
        from repro.model.serialize import save_file
        from repro.skeleton.loader import load

        path = str(tmp_path / "bib.dag")
        save_file(load(BIB_XML).instance, path)
        inplace = repro.open(path, axes="inplace")
        assert inplace._axes == "inplace"
        assert inplace.execute("//book/author").tree_count() == 3

    def test_open_catalog_directory(self, tmp_path):
        with Database.from_catalog(tmp_path / "cat") as first:
            first.add_document("bib", BIB_XML)
        with repro.open(tmp_path / "cat") as db:
            assert db.mode == "served"
            assert db.documents() == ["bib"]

    def test_open_rejects_non_catalog_directory(self, tmp_path):
        with pytest.raises(ReproError, match="catalog"):
            repro.open(tmp_path)

    def test_open_missing_file(self):
        with pytest.raises(FileNotFoundError):
            repro.open("no-such-file.xml")


class TestEmbeddedDatabase:
    def test_matches_engine_exactly(self):
        db = repro.open(BIB_XML)
        engine = Engine(BIB_XML)
        for query_text in ("//author", "/bib/book/author", '//paper[author["Codd"]]'):
            mine = db.execute(query_text)
            theirs = engine.query(query_text)
            assert mine.vertices() == theirs.vertices()
            assert mine.tree_count() == theirs.tree_count()
            assert list(mine.iter_paths()) == theirs.tree_paths()

    def test_batch_matches_engine_batch(self):
        mix = ["//author", "//title", "//book/author"]
        batch = repro.open(BIB_XML).execute_batch(mix)
        expected = Engine(BIB_XML).query_batch(mix)
        assert len(batch) == len(expected.results)
        for mine, theirs in zip(batch, expected):
            assert mine.tree_count() == theirs.tree_count()
        assert batch.stats.queries == 3
        assert "batch of 3" in batch.summary()

    def test_prepared_query_runs_without_reparse(self):
        db = repro.open(BIB_XML)
        prepared = db.prepare("//book/author")
        assert prepared.tags == ("author", "book")
        assert prepared.strings == ()
        # The engine's compiled cache serves the exact prepared object back.
        assert db.prepare("//book/author").expr is prepared.expr
        assert prepared.run(db).tree_count() == 3

    def test_foreign_prepared_query_is_adopted(self):
        prepared = PreparedQuery.compile("//author")
        db = repro.open(BIB_XML)
        assert db.execute(prepared).tree_count() == 5
        # Adoption seeded the engine cache with the foreign expression.
        assert db.engine.compiled("//author") is prepared.expr

    def test_structural_key_matches_algebra(self):
        prepared = PreparedQuery.compile("//a/b")
        assert prepared.structural_key() == prepared.expr.structural_key()

    def test_context_sets_pass_through(self):
        from repro.skeleton.loader import load

        instance = load(BIB_XML, tags=["book", "author"]).instance
        instance.ensure_set("start")
        book = next(v for v in instance.preorder() if instance.in_set(v, "book"))
        instance.add_to_set(book, "start")
        db = Database.from_instance(instance)
        assert db.execute("author", context="start").tree_count() == 3

    def test_document_name_rejected_embedded(self):
        with pytest.raises(ReproError, match="no document name"):
            repro.open(BIB_XML).execute("//a", document="bib")

    def test_explain_reports_engine_cache_state(self):
        db = repro.open(BIB_XML)
        plan = db.explain("//author")
        assert isinstance(plan, Plan)
        assert plan.instance == {
            "source": "engine",
            "cached": False,
            "reparse_per_query": False,
        }
        db.execute("//author")
        assert db.explain("//author").instance["cached"] is True

    def test_explain_render_matches_engine_explain(self):
        # The façade's explain is the *optimized* annotated plan; the raw
        # Figure 3 view (what Engine.explain renders) is preserved as the
        # optimizer block's unoptimized shadow.
        db = repro.open(BIB_XML)
        query_text = '//paper[author["Codd"] or not(following::*)]'
        plan = db.explain(query_text)
        assert PreparedQuery.compile(query_text).plan().render() == Engine(
            BIB_XML
        ).explain(query_text)
        assert "[est=" in plan.render()
        assert plan.optimizer is not None
        assert plan.optimizer["optimized"] is True

    def test_last_load_exposed(self):
        db = repro.open(BIB_XML)
        db.execute("//author")
        assert db.last_load is not None
        assert db.last_load.parse_seconds >= 0

    def test_to_xml_round_trip(self):
        db = repro.open(BIB_XML)
        reparsed = repro.open(db.to_xml())
        for query_text in ("//author", "//book/title"):
            assert (
                reparsed.execute(query_text).tree_count()
                == db.execute(query_text).tree_count()
            )


class TestServedDatabase:
    @pytest.fixture
    def db(self, tmp_path):
        with Database.from_catalog(tmp_path / "cat") as db:
            db.add_document("bib", BIB_XML)
            yield db

    def test_execute_matches_embedded(self, db):
        served = db.execute("//book/author", document="bib", paths=10)
        embedded = repro.open(BIB_XML).execute("//book/author")
        assert served.served and not embedded.served
        assert served.tree_count() == embedded.tree_count()
        assert served.paths() == embedded.paths(10)
        assert served.to_json(paths=5) == embedded.to_json(paths=5)
        assert served.info["document"] == "bib"

    def test_single_document_is_implied(self, db):
        assert db.execute("//author").tree_count() == 5
        assert db.explain("//author").instance["source"] == "pool"

    def test_multi_document_needs_name(self, db):
        db.add_document("tiny", "<r><x/></r>")
        with pytest.raises(ReproError, match="document=<name>"):
            db.execute("//x")
        assert db.execute("//x", document="tiny").tree_count() == 1

    def test_unknown_document_raises_catalog_error(self, db):
        with pytest.raises(CatalogError):
            db.execute("//a", document="ghost")

    def test_context_rejected_served(self, db):
        with pytest.raises(ReproError, match="context"):
            db.execute("//a", document="bib", context="start")

    def test_explain_reports_pool_residency(self, db):
        assert db.explain("//author", document="bib").instance["resident"] is False
        db.execute("//author", document="bib")
        assert db.explain("//author", document="bib").instance["resident"] is True

    def test_prepared_query_seeds_service_cache(self, db):
        prepared = PreparedQuery.compile("//title")
        assert db.execute(prepared, document="bib").tree_count() == 3
        expr, tags, strings = db.service.compiled_entry("//title")
        assert expr is prepared.expr

    def test_batch_served(self, db):
        batch = db.execute_batch(["//author", "//title"], document="bib")
        assert [r.tree_count() for r in batch] == [5, 3]
        assert batch.stats is None  # coalescing happens inside the service

    def test_batch_served_submits_concurrently(self, db):
        # Concurrent submission gives the service callers to coalesce; a
        # larger same-document mix must still come back in order, correct.
        mix = ["//author", "//title", "//book/author", "//paper/author"] * 2
        batch = db.execute_batch(mix, document="bib")
        assert [r.tree_count() for r in batch] == [5, 3, 3, 2] * 2

    def test_empty_batch(self, db):
        assert len(db.execute_batch([], document="bib")) == 0
        assert len(repro.open(BIB_XML).execute_batch([])) == 0

    def test_remove_document(self, db):
        db.add_document("tiny", "<r><x/></r>")
        db.execute("//x", document="tiny")
        db.remove_document("tiny")
        assert db.documents() == ["bib"]
        with pytest.raises(CatalogError):
            db.execute("//x", document="tiny")

    def test_close_is_idempotent(self, tmp_path):
        db = Database.from_catalog(tmp_path / "cat2")
        db.close()
        db.close()


class TestDeprecatedShims:
    def test_old_entry_points_warn_and_work(self):
        for name in ("Engine", "load_instance", "query", "query_batch"):
            with pytest.warns(DeprecationWarning, match="repro.api"):
                attr = getattr(repro, name)
            assert attr is not None

    def test_old_query_still_answers(self):
        with pytest.warns(DeprecationWarning):
            result = repro.query(BIB_XML, "//author")
        assert result.tree_count() == 5

    def test_internal_pipeline_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.engine.pipeline import Engine as PipelineEngine

            assert PipelineEngine(BIB_XML).query("//author").tree_count() == 5

    def test_dir_lists_lazy_exports(self):
        listed = dir(repro)
        for name in ("Engine", "load_instance", "query", "query_batch",
                     "Database", "PreparedQuery", "ResultSet", "Plan", "open", "api"):
            assert name in listed, name

    def test_all_covers_lazy_exports(self):
        assert set(repro.__all__) >= {"Engine", "query", "query_batch", "open"}

    def test_version_is_single_sourced(self):
        # Either the installed distribution's version or the source-checkout
        # fallback — never a silently drifting hardcode.
        assert repro.__version__
        import importlib.metadata as metadata

        try:
            assert repro.__version__ == metadata.version("repro")
        except metadata.PackageNotFoundError:
            assert repro.__version__.endswith("+src")

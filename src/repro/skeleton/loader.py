"""One-scan loading of XML into compressed skeleton instances (section 4).

This is the paper's measured pipeline: given a document and the schema a
query needs (a set of tags and a set of string constraints), a single SAX
pass builds the *minimal* compressed instance over that schema — stack of
sibling lists + hash table of interned nodes for the structure, and the
global-stream matcher of :mod:`repro.strings.matcher` for the string
constraints.  The tree is never materialised.

Three schema modes mirror the paper's experiments:

* ``tags=()``     — bare structure, Figure 6's "-" rows;
* ``tags=None``   — every tag gets a node set, Figure 6's "+" rows;
* ``tags=[...]``  — exactly the tags a query mentions (Figure 7 runs).

A virtual *document root* vertex (set :data:`repro.model.schema.DOC_SET`) is
added above the root element so absolute XPath (``/ROOT/...``) has standard
semantics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.compress.builder import DagBuilder
from repro.errors import ReproError
from repro.model.instance import Instance
from repro.model.schema import DOC_SET, string_set
from repro.skeleton.layout import LayoutTracker, TextLayout
from repro.strings.containers import ContainerStore
from repro.strings.matcher import StreamMatcher
from repro.xmlio.parser import parse_events


@dataclass
class LoadResult:
    """A loaded instance plus everything the benchmarks report about loading."""

    instance: Instance
    parse_seconds: float
    skeleton_nodes: int
    containers: ContainerStore | None = None
    layout: TextLayout | None = None

    def __iter__(self):
        # Allow ``instance, result = load(...)`` style unpacking in examples.
        yield self.instance
        yield self


def load(
    text: str,
    tags: Iterable[str] | None = None,
    strings: Iterable[str] = (),
    collect_containers: bool = False,
    matcher_strategy: str = "auto",
    attributes: str = "ignore",
) -> LoadResult:
    """Parse ``text`` and build the compressed instance in one scan.

    ``tags`` selects which element tags become node sets (see module doc);
    ``strings`` is an iterable of containment constraints, each producing
    the node set ``string_set(needle)`` holding every element whose XPath
    string value contains the needle.  With ``collect_containers`` the
    character data is also split into XMILL-style containers keyed by parent
    tag (the skeleton/text decomposition of section 1).

    ``attributes`` extends the paper's attribute-free model ("these
    simplifications are not critical", section 1): ``"ignore"`` drops them;
    ``"nodes"`` encodes each attribute as a leading child node labeled
    ``@name`` (queryable as ``item/@id``), whose value participates in
    string matching.  Note the documented deviation: in node mode an
    attribute's text joins the string values of its ancestors, which plain
    XPath string-value semantics would not include.
    """
    if attributes not in ("ignore", "nodes"):
        raise ReproError(f"unknown attributes mode {attributes!r}")
    attribute_nodes = attributes == "nodes"
    started = time.perf_counter()
    patterns = list(dict.fromkeys(strings))  # dedupe, keep order
    include_all = tags is None
    included = None if include_all else set(tags)

    builder = DagBuilder()
    matcher = StreamMatcher(patterns, strategy=matcher_strategy)
    containers = ContainerStore() if collect_containers else None
    tracker = LayoutTracker() if collect_containers else None

    # Bit translation: matcher mask (pattern index) -> instance mask bits.
    string_bits = [1 << builder.ensure_set(string_set(p)) for p in patterns]
    doc_mask = 1 << builder.ensure_set(DOC_SET)
    if included is not None:
        # Requested tag sets exist even if the document never uses the tag
        # (a query against them simply selects nothing).
        for tag in sorted(included):
            builder.ensure_set(tag)

    tag_masks: dict[str, int] = {}

    def mask_for(tag: str) -> int:
        mask = tag_masks.get(tag)
        if mask is None:
            if include_all or tag in included:
                mask = 1 << builder.ensure_set(tag)
            else:
                mask = 0
            tag_masks[tag] = mask
        return mask

    def translate(match_mask: int) -> int:
        out = 0
        index = 0
        while match_mask:
            if match_mask & 1:
                out |= string_bits[index]
            match_mask >>= 1
            index += 1
        return out

    tag_stack: list[str] = []
    skeleton_nodes = 0

    builder.start_node()  # virtual document root
    matcher.open_node()
    for event in parse_events(text):
        kind = event.kind
        if kind == "start":
            builder.start_node()
            matcher.open_node()
            if tracker is not None:
                tracker.open_element()
            tag_stack.append(event.name)
            skeleton_nodes += 1
            if attribute_nodes and event.attributes:
                for name, value in event.attributes.items():
                    builder.start_node()
                    matcher.open_node()
                    matcher.text(value)
                    if tracker is not None:
                        tracker.open_element()
                        tracker.text()
                        tracker.close_element()
                    if containers is not None:
                        containers.add(f"@{name}", value)
                    attr_mask = mask_for(f"@{name}") | translate(matcher.close_node())
                    builder.end_node_masked(attr_mask)
                    skeleton_nodes += 1
        elif kind == "text":
            matcher.text(event.data)
            if containers is not None:
                containers.add(tag_stack[-1], event.data)
            if tracker is not None:
                tracker.text()
        elif kind == "end":
            tag = tag_stack.pop()
            mask = mask_for(tag) | translate(matcher.close_node())
            builder.end_node_masked(mask)
            if tracker is not None:
                tracker.close_element()
    builder.end_node_masked(doc_mask | translate(matcher.close_node()))
    instance = builder.finish()
    elapsed = time.perf_counter() - started
    return LoadResult(
        instance=instance,
        parse_seconds=elapsed,
        skeleton_nodes=skeleton_nodes + 1,  # + document root
        containers=containers,
        layout=tracker.layout if tracker is not None else None,
    )


def load_instance(
    text: str,
    tags: Iterable[str] | None = None,
    strings: Iterable[str] = (),
) -> Instance:
    """Like :func:`load` but returning just the instance."""
    return load(text, tags=tags, strings=strings).instance


def load_file(
    path: str,
    tags: Iterable[str] | None = None,
    strings: Iterable[str] = (),
    collect_containers: bool = False,
) -> LoadResult:
    """Read ``path`` and :func:`load` it."""
    with open(path, "r", encoding="utf-8") as handle:
        return load(
            handle.read(), tags=tags, strings=strings, collect_containers=collect_containers
        )

"""Query engine: axes on compressed instances, evaluators, result decoding."""

from repro.engine.axes_compressed import apply_axis
from repro.engine.axes_inplace import downward_axis_inplace
from repro.engine.axes_tree import TreeIndex, tree_axis
from repro.engine.batch import BatchEvaluator, evaluate_batch
from repro.engine.evaluator import CompressedEvaluator, evaluate
from repro.engine.pipeline import (
    Engine,
    load_for_queries,
    load_for_query,
    load_instance,
    query,
    query_batch,
)
from repro.engine.results import BatchResult, BatchStats, QueryResult
from repro.engine.tree_evaluator import TreeEvaluator, TreeResult, evaluate_on_tree

__all__ = [
    "BatchEvaluator",
    "BatchResult",
    "BatchStats",
    "CompressedEvaluator",
    "Engine",
    "QueryResult",
    "TreeEvaluator",
    "TreeIndex",
    "TreeResult",
    "apply_axis",
    "downward_axis_inplace",
    "evaluate",
    "evaluate_batch",
    "evaluate_on_tree",
    "load_for_queries",
    "load_for_query",
    "load_instance",
    "query",
    "query_batch",
    "tree_axis",
]

"""Section 1's complexity claim on XML-ised relational data.

An R-row, C-column table has an O(C*R) skeleton; sharing compresses it to
O(C+R) and multiplicity edges to O(C + log R) — in our run-length
representation the row fan-out is a single edge entry, so the instance size
is O(C) and *independent of R*.  This bench sweeps R and C and prints the
measured sizes, and times the one-scan parse+compress (linear in the input,
Proposition 2.6).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import fmt_int, format_table
from repro.corpora.relational import direct_instance, generate_xml
from repro.model.paths import tree_size
from repro.skeleton.loader import load

from conftest import register_report

_ROWS = []


@pytest.mark.parametrize("rows", [10, 100, 1000, 4000])
def test_row_sweep_constant_compressed_size(benchmark, rows):
    """|V^M| must not grow with R (C fixed)."""
    cols = 8
    xml = generate_xml(rows, cols).xml
    result = benchmark(lambda: load(xml, tags=None))
    instance = result.instance
    _ROWS.append(
        [
            fmt_int(rows),
            fmt_int(cols),
            fmt_int(tree_size(instance)),
            fmt_int(instance.num_vertices),
            fmt_int(instance.num_edge_entries),
        ]
    )
    # O(C): columns + row + table + document root.
    assert instance.num_vertices == cols + 3
    assert instance.num_edge_entries == cols + 2


@pytest.mark.parametrize("cols", [2, 8, 32])
def test_column_sweep_linear_compressed_size(benchmark, cols):
    """|V^M| grows linearly in C (R fixed)."""
    xml = generate_xml(500, cols).xml
    result = benchmark(lambda: load(xml, tags=None))
    assert result.instance.num_vertices == cols + 3


def test_direct_instance_sidesteps_parsing(benchmark):
    """Building the O(C) instance directly costs microseconds at any R."""
    instance = benchmark(lambda: direct_instance(10**9, 8))
    assert tree_size(instance) == 1 + 10**9 * 9


def _report():
    if not _ROWS:
        return None
    return format_table(
        ["rows", "cols", "|V^T|", "|V^M|", "|E^M|"],
        _ROWS,
        title="Relational scaling (section 1): compressed size is O(C), independent of R",
    )


register_report(_report)

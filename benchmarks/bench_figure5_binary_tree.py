"""Figure 5: eight queries on the compressed complete binary tree.

The paper's Figure 5 shows the optimally compressed complete binary tree of
depth 5 (the root selected as context) and, for queries (b)-(i), which
vertices get selected and how much each query partially decompresses the
instance.  We reproduce the table of per-query instance sizes and selection
counts, and additionally run the same queries at depth 60 — a tree of
2^61 - 1 nodes that only exists compressed — to exhibit the exponential
leverage of querying without decompression.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import fmt_int, format_table
from repro.corpora.binary_tree import FIGURE5_QUERIES, compressed_instance
from repro.engine.evaluator import CompressedEvaluator
from repro.model.paths import tree_size

from conftest import register_report

_ROWS = []


@pytest.mark.parametrize("figure_id,query", FIGURE5_QUERIES)
def test_figure5_query(benchmark, figure_id, query):
    instance = compressed_instance(5)
    before = (len(instance.preorder()), instance.num_edge_entries)

    result = CompressedEvaluator(instance).evaluate(query)
    after = result.after
    _ROWS.append(
        [
            f"({figure_id})",
            query,
            fmt_int(before[0]),
            fmt_int(after[0]),
            fmt_int(result.dag_count()),
            fmt_int(result.tree_count()),
        ]
    )

    # Each splitting operation at most doubles (Theorem 3.6): |Q| small here.
    assert after[0] <= 2**6 * before[0]
    assert result.tree_count() >= 1

    benchmark(lambda: CompressedEvaluator(instance).evaluate(query))


@pytest.mark.parametrize("figure_id,query", FIGURE5_QUERIES)
def test_figure5_at_depth_60(benchmark, figure_id, query):
    """The same queries on a tree with 2^61 - 1 nodes (121 DAG vertices)."""
    instance = compressed_instance(60)
    assert tree_size(instance) == 2**61 - 1
    result = CompressedEvaluator(instance).evaluate(query)
    assert result.tree_count() >= 1
    # Selections on the astronomically large tree are still exactly counted.
    if query == "//a":
        # //a = descendant::a of the tree root (this instance has no virtual
        # document vertex, so the root itself is not selected): the left
        # children at levels 1..60 number sum_{k=1..60} 2^(k-1) = 2^60 - 1.
        assert result.tree_count() == 2**60 - 1
    benchmark(lambda: CompressedEvaluator(instance).evaluate(query))


def _report():
    if not _ROWS:
        return None
    headers = ["fig", "query", "|V| before", "|V| after", "sel dag", "sel tree"]
    return format_table(
        headers,
        _ROWS,
        title="Figure 5 — queries on the compressed complete binary tree (depth 5)",
    )


register_report(_report)

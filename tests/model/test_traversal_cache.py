"""Traversal caching: repeated calls are cached, mutation invalidates.

The engine relies on :meth:`Instance.preorder`/:meth:`Instance.postorder`
being memoised (axes, evaluator statistics, and result decoding all walk
the same order repeatedly) *and* on every structural mutation dropping the
memo — a stale order would silently corrupt query results, so the
invalidation paths get explicit regression coverage here.
"""

from __future__ import annotations

from repro.model.instance import Instance, tree_instance

from tests.conftest import LABELS


def build() -> Instance:
    return tree_instance(("a", [("b", []), ("c", [("a", [])])]), schema=LABELS)


class TestCaching:
    def test_repeated_calls_return_the_cached_list(self):
        instance = build()
        assert instance.preorder() is instance.preorder()
        assert instance.postorder() is instance.postorder()

    def test_mask_updates_do_not_invalidate(self):
        instance = build()
        pre = instance.preorder()
        post = instance.postorder()
        generation = instance.generation
        instance.add_to_set(0, "b")
        instance.fill_set("all")
        instance.combine_sets("union", "a", "b", "u")
        instance.clear_sets(["u"])
        instance.drop_sets(["u", "all"])
        assert instance.generation == generation
        assert instance.preorder() is pre
        assert instance.postorder() is post

    def test_copy_shares_the_cache_until_either_side_mutates(self):
        instance = build()
        pre = instance.preorder()
        clone = instance.copy()
        assert clone.preorder() is pre
        clone.new_vertex(["b"])
        assert clone.preorder() is not pre
        assert instance.preorder() is pre  # original unaffected


class TestInvalidation:
    def test_set_children_invalidates(self):
        instance = build()
        stale = list(instance.preorder())
        instance.postorder()
        generation = instance.generation
        leaf = instance.new_vertex(["b"])
        instance.set_children(instance.root, list(instance.children(instance.root)) + [(leaf, 1)])
        assert instance.generation > generation
        fresh = instance.preorder()
        assert leaf in fresh
        assert leaf not in stale
        assert leaf in instance.postorder()

    def test_new_vertex_invalidates(self):
        instance = build()
        instance.preorder()
        generation = instance.generation
        instance.new_vertex(["a"])
        assert instance.generation > generation
        # The new vertex is unreachable, but the cache must still have been
        # dropped: the recomputed orders remain correct.
        assert set(instance.preorder()) == set(range(instance.num_vertices - 1))

    def test_set_root_invalidates(self):
        instance = build()
        whole = list(instance.preorder())
        subtree_root = whole[-1]
        instance.set_root(subtree_root)
        assert instance.preorder()[0] == subtree_root
        assert set(instance.preorder()) < set(whole)
        assert instance.postorder()[-1] == subtree_root

    def test_stale_cache_regression_through_the_engine_path(self):
        # The exact shape of the historical hazard: cache an order, mutate
        # through the Figure 4 in-place axis (which calls set_children and
        # new_vertex_masked), and check traversals see the mutated DAG.
        from repro.engine.axes_inplace import downward_axis_inplace

        instance = Instance(LABELS)
        leaf = instance.new_vertex(["c"])
        shared = instance.new_vertex(["b"], [(leaf, 1)])
        left = instance.new_vertex(["b"], [(shared, 1)])
        root = instance.new_vertex(["a"], [(left, 1), (shared, 1)])
        instance.set_root(root)
        before = list(instance.preorder())
        downward_axis_inplace(instance, "child", "a", "selected")
        after = instance.preorder()
        assert after is not before
        # The split appended a copy of the shared vertex; it must be visible.
        assert len(after) == len(before) + 1

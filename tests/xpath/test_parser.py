"""Tests for the Core XPath lexer and parser, covering Appendix A syntax."""

import pytest

from repro.errors import XPathSyntaxError
from repro.xpath.ast import AndExpr, LocationPath, NotExpr, OrExpr, Step, StringExpr
from repro.xpath.lexer import lex
from repro.xpath.parser import parse_query


class TestLexer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in lex('//a[b and "x"]')]
        assert kinds == [
            "DSLASH",
            "NAME",
            "LBRACKET",
            "NAME",
            "NAME",
            "STRING",
            "RBRACKET",
            "EOF",
        ]

    def test_string_quotes_stripped(self):
        tokens = lex('"double" \'single\'')
        assert tokens[0].value == "double"
        assert tokens[1].value == "single"

    def test_names_with_hyphen_dot_underscore(self):
        tokens = lex("following-sibling Clinical_Synop v1.2")
        assert [t.value for t in tokens[:3]] == [
            "following-sibling",
            "Clinical_Synop",
            "v1.2",
        ]

    def test_stray_character_rejected(self):
        with pytest.raises(XPathSyntaxError, match="unexpected character"):
            lex("/a/$b")

    def test_attribute_test_lexes_as_name(self):
        tokens = lex("/item/@id")
        assert tokens[3].kind == "NAME"
        assert tokens[3].value == "@id"


class TestPaths:
    def test_absolute_child_path(self):
        path = parse_query("/dblp/article/url")
        assert path.absolute
        assert [s.axis for s in path.steps] == ["child"] * 3
        assert [s.test for s in path.steps] == ["dblp", "article", "url"]

    def test_relative_path(self):
        path = parse_query("article/title")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_double_slash_desugars(self):
        path = parse_query("//article")
        assert path.absolute
        assert [str(s) for s in path.steps] == [
            "descendant-or-self::*",
            "child::article",
        ]

    def test_inner_double_slash(self):
        path = parse_query("/a//b")
        assert [s.axis for s in path.steps] == ["child", "descendant-or-self", "child"]

    def test_explicit_axes(self):
        path = parse_query("ancestor::TEAM/following-sibling::PLAYER")
        assert [s.axis for s in path.steps] == ["ancestor", "following-sibling"]

    def test_self_star(self):
        path = parse_query("/self::*")
        assert path.steps == (Step("self", "*"),)

    def test_bare_root(self):
        path = parse_query("/")
        assert path.absolute
        assert path.steps == ()

    def test_unknown_axis_rejected(self):
        with pytest.raises(XPathSyntaxError, match="unknown axis"):
            parse_query("sideways::x")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(XPathSyntaxError, match="trailing"):
            parse_query("/a]")

    def test_missing_step_rejected(self):
        with pytest.raises(XPathSyntaxError):
            parse_query("/a/")


class TestPredicates:
    def test_string_predicate(self):
        path = parse_query('//Title["LETHAL"]')
        step = path.steps[-1]
        assert step.predicates == (StringExpr("LETHAL"),)

    def test_path_predicate(self):
        path = parse_query("/self::*[ROOT/Record/Title]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, LocationPath)
        assert not predicate.absolute
        assert [s.test for s in predicate.steps] == ["ROOT", "Record", "Title"]

    def test_and_or_precedence(self):
        # a or b and c  ==  a or (b and c)
        path = parse_query("x[a or b and c]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, OrExpr)
        assert isinstance(predicate.parts[1], AndExpr)

    def test_parentheses_override(self):
        path = parse_query("x[(a or b) and c]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, AndExpr)
        assert isinstance(predicate.parts[0], OrExpr)

    def test_not(self):
        path = parse_query("x[not(following::*)]")
        predicate = path.steps[0].predicates[0]
        assert isinstance(predicate, NotExpr)
        assert isinstance(predicate.part, LocationPath)

    def test_nested_predicates(self):
        path = parse_query('//Record[sequence/seq["MMSARGDFLN"]]')
        outer = path.steps[-1].predicates[0]
        assert isinstance(outer, LocationPath)
        inner = outer.steps[-1].predicates[0]
        assert inner == StringExpr("MMSARGDFLN")

    def test_absolute_path_predicate(self):
        path = parse_query("//a[/descendant::b]")
        predicate = path.steps[-1].predicates[0]
        assert isinstance(predicate, LocationPath)
        assert predicate.absolute

    def test_multiple_predicates_on_step(self):
        path = parse_query('//a["x"]["y"]')
        assert len(path.steps[-1].predicates) == 2

    def test_reserved_word_as_tag_rejected(self):
        with pytest.raises(XPathSyntaxError, match="reserved"):
            parse_query("x[y/and]")


APPENDIX_A = [
    # SwissProt
    "/self::*[ROOT/Record/comment/topic]",
    "/ROOT/Record/comment/topic",
    '//Record/protein[taxo["Eukaryota"]]',
    '//Record[sequence/seq["MMSARGDFLN"] and protein/from["Rattus norvegicus"]]',
    '//Record/comment[topic["TISSUE SPECIFICITY"] and '
    'following-sibling::comment/topic["DEVELOPMENTAL STAGE"]]',
    # DBLP
    "/self::*[dblp/article/url]",
    "/dblp/article/url",
    '//article[author["Codd"]]',
    '/dblp/article[author["Chandra"] and author["Harel"]]/title',
    '/dblp/article[author["Chandra" and following-sibling::author["Harel"]]]/title',
    # Penn TreeBank
    "/self::*[alltreebank/FILE/EMPTY/S/VP/S/VP/NP]",
    "/alltreebank/FILE/EMPTY/S/VP/S/VP/NP",
    '//S//S[descendant::NNS["children"]]',
    '//VP["granting" and descendant::NP["access"]]',
    "//VP/NP/VP/NP[following::NP/VP/NP/PP]",
    # OMIM
    "/self::*[ROOT/Record/Title]",
    "/ROOT/Record/Title",
    '//Title["LETHAL"]',
    '//Record[Text["consanguineous parents"]]/Title["LETHAL"]',
    '//Record[Clinical_Synop/Part["Metabolic"]/following-sibling::Synop["Lactic acidosis"]]',
    # XMark
    "/self::*[site/regions/africa/item/description/parlist/listitem/text]",
    "/site/regions/africa/item/description/parlist/listitem/text",
    '//item[payment["Creditcard"]]',
    '//item[location["United States"] and parent::africa]',
    '//item/description/parlist/listitem["cassio" and following-sibling::*["portia"]]',
    # Shakespeare
    "/self::*[all/PLAY/ACT/SCENE/SPEECH/LINE]",
    "/all/PLAY/ACT/SCENE/SPEECH/LINE",
    '//SPEECH[SPEAKER["MARK ANTONY"]]/LINE',
    '//SPEECH[SPEAKER["CLEOPATRA"] or LINE["Cleopatra"]]',
    '//SPEECH[SPEAKER["CLEOPATRA"] and preceding-sibling::SPEECH[SPEAKER["MARK ANTONY"]]]',
    # Baseball
    "/self::*[SEASON/LEAGUE/DIVISION/TEAM/PLAYER]",
    "/SEASON/LEAGUE/DIVISION/TEAM/PLAYER",
    '//PLAYER[THROWS["Right"]]',
    '//PLAYER[ancestor::TEAM[TEAM_CITY["Atlanta"]] or (HOME_RUNS["5"] and STEALS["1"])]',
    '//PLAYER[POSITION["First Base"] and '
    'following-sibling::PLAYER[POSITION["Starting Pitcher"]]]',
]


@pytest.mark.parametrize("query", APPENDIX_A)
def test_all_appendix_a_queries_parse(query):
    path = parse_query(query)
    assert isinstance(path, LocationPath)
    assert path.absolute

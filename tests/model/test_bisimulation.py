"""Tests for bisimilarity relations, quotients and the lattice (section 2.2)."""

from repro.model.bisimulation import (
    coarsest_bisimulation,
    identity_partition,
    is_bisimilarity,
    is_minimal,
    join,
    meet,
    quotient,
)
from repro.model.equivalence import equivalent
from repro.model.instance import tree_instance


def classes(partition):
    """Group a partition dict into frozensets for easy comparison."""
    groups = {}
    for vertex, cls in partition.items():
        groups.setdefault(cls, set()).add(vertex)
    return {frozenset(members) for members in groups.values()}


class TestIsBisimilarity:
    def test_identity_always_valid(self, figure2_compressed):
        assert is_bisimilarity(figure2_compressed, identity_partition(figure2_compressed))

    def test_coarsest_is_valid(self, bib_tree):
        assert is_bisimilarity(bib_tree, coarsest_bisimulation(bib_tree))

    def test_merging_different_labels_is_invalid(self):
        tree = tree_instance(("r", [("x", []), ("y", [])]), schema=["r", "x", "y"])
        partition = identity_partition(tree)
        children = [v for v in partition if v != tree.root]
        partition[children[0]] = partition[children[1]]
        assert not is_bisimilarity(tree, partition)

    def test_merging_equal_leaves_is_valid(self):
        tree = tree_instance(("r", [("x", []), ("x", [])]), schema=["r", "x"])
        partition = identity_partition(tree)
        leaves = sorted(tree.members("x"))
        partition[leaves[0]] = partition[leaves[1]]
        assert is_bisimilarity(tree, partition)

    def test_partition_must_cover_reachable(self, bib_tree):
        partition = identity_partition(bib_tree)
        partition.pop(bib_tree.root)
        assert not is_bisimilarity(bib_tree, partition)

    def test_parents_with_different_arity_not_bisimilar(self):
        tree = tree_instance(
            ("r", [("p", [("x", [])]), ("p", [("x", []), ("x", [])])]),
            schema=["r", "p", "x"],
        )
        coarsest = coarsest_bisimulation(tree)
        parents = sorted(tree.members("p"))
        assert coarsest[parents[0]] != coarsest[parents[1]]


class TestQuotient:
    def test_quotient_by_identity_is_equivalent_same_size(self, bib_tree):
        result = quotient(bib_tree, identity_partition(bib_tree))
        assert result.num_vertices == bib_tree.num_vertices
        assert equivalent(result, bib_tree)

    def test_quotient_by_coarsest_is_minimal(self, bib_tree):
        result = quotient(bib_tree, coarsest_bisimulation(bib_tree))
        assert is_minimal(result)
        assert equivalent(result, bib_tree)
        assert result.num_vertices == 5  # Figure 1(b)

    def test_quotient_preserves_equivalence(self, figure2_compressed):
        result = quotient(figure2_compressed, coarsest_bisimulation(figure2_compressed))
        assert equivalent(result, figure2_compressed)


class TestMinimality:
    def test_figure2_is_minimal(self, figure2_compressed):
        assert is_minimal(figure2_compressed)

    def test_tree_with_shared_subtrees_is_not_minimal(self, bib_tree):
        assert not is_minimal(bib_tree)

    def test_no_smaller_equivalent_instance(self, bib_tree):
        # Proposition 2.5: M(I) has the fewest vertices; the coarsest
        # partition of the 12-node tree has exactly 5 classes.
        coarsest = coarsest_bisimulation(bib_tree)
        assert len(classes(coarsest)) == 5


class TestLattice:
    def test_meet_refines_both(self, bib_tree):
        coarsest = coarsest_bisimulation(bib_tree)
        fine = identity_partition(bib_tree)
        met = meet(coarsest, fine)
        assert classes(met) == classes(fine)

    def test_join_coarsens_both(self, bib_tree):
        coarsest = coarsest_bisimulation(bib_tree)
        fine = identity_partition(bib_tree)
        joined = join(coarsest, fine)
        assert classes(joined) == classes(coarsest)

    def test_meet_is_glb(self, bib_tree):
        p = coarsest_bisimulation(bib_tree)
        met = meet(p, p)
        assert classes(met) == classes(p)

    def test_join_merges_overlapping_classes(self):
        # p1 merges {0,1}; p2 merges {1,2}; join must merge {0,1,2}.
        p1 = {0: 0, 1: 0, 2: 2}
        p2 = {0: 0, 1: 1, 2: 1}
        joined = join(p1, p2)
        assert classes(joined) == {frozenset({0, 1, 2})}

    def test_meet_of_valid_bisimulations_is_valid(self, bib_tree):
        # Intersection of bisimilarity relations is one (glb of the lattice).
        coarsest = coarsest_bisimulation(bib_tree)
        met = meet(coarsest, identity_partition(bib_tree))
        assert is_bisimilarity(bib_tree, met)

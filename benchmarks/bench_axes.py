"""Micro-benchmarks: every axis, both implementations (Figure 4 vs rebuild).

Per-operator costs on a mid-size corpus instance: upward axes are in-place
mask passes (Proposition 3.3), downward/sibling axes rebuild at most twice
the instance (Proposition 3.2).  The Figure 4 in-place splitter is timed
against the functional rebuild on the downward axes it implements.
"""

from __future__ import annotations

import pytest

from repro.engine.axes_compressed import apply_axis
from repro.engine.axes_inplace import downward_axis_inplace
from repro.skeleton.loader import load_instance

ALL_AXES = [
    "self",
    "child",
    "parent",
    "descendant",
    "ancestor",
    "descendant-or-self",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
]


@pytest.fixture(scope="module")
def swissprot_instance(corpus_cache):
    return load_instance(corpus_cache("swissprot"), tags=None)


@pytest.mark.parametrize("axis", ALL_AXES)
def test_axis_functional(benchmark, swissprot_instance, axis):
    benchmark(
        lambda: apply_axis(swissprot_instance.copy(), axis, "Record", "out")
    )


@pytest.mark.parametrize("axis", ["child", "descendant", "descendant-or-self"])
def test_axis_inplace_figure4(benchmark, swissprot_instance, axis):
    benchmark(
        lambda: downward_axis_inplace(swissprot_instance.copy(), axis, "Record", "out")
    )

"""Both plane-kernel tiers are byte-identical on every vectorized operation.

The bit-plane refactor split every hot operation into two implementations:
the numpy tier (zero-copy buffer views, C word ops) and the pure-stdlib
tier (big-int arithmetic over ``tobytes()``).  Correctness of the whole
engine rests on the two tiers being *indistinguishable* — same plane bytes,
same schemas, same structures — so this module pins that equivalence for

* the bulk set operations (``combine_sets`` / ``fill_set`` / ``clear_sets``
  / ``drop_sets``),
* every axis fast path in :mod:`repro.engine.axes_compressed` (with the
  vectorization threshold forced to zero so small inputs take the numpy
  kernels too),
* the shred-time string pass (:func:`repro.skeleton.loader.load` with
  containment needles),

across three corpus families (binary tree, relational, XMark) plus
hypothesis-generated random DAGs.  When numpy is absent (the
``REPRO_NO_NUMPY=1`` CI leg) the comparisons degenerate to stdlib-vs-stdlib
and still assert the operations are deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpora import binary_tree, relational, xmark
from repro.engine import axes_compressed
from repro.model import planes
from repro.model.instance import Instance
from repro.skeleton.loader import load

from tests.conftest import LABELS, random_dag_instances

AXES = (
    "self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "child",
    "descendant",
    "descendant-or-self",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
)


def observable(instance: Instance) -> tuple:
    """Everything a caller can see: schema, structure, and every set."""
    return (
        tuple(instance.schema),
        instance.num_vertices,
        instance.root,
        tuple(instance.children(v) for v in range(instance.num_vertices)),
        tuple(instance.row_masks()),
    )


def plane_bytes(instance: Instance) -> dict[str, bytes]:
    """The raw plane payloads, trimmed to the vertex-bearing words."""
    nwords = planes.words_for(instance.num_vertices)
    return {
        name: instance.plane_of(name)[:nwords].tobytes()
        for name in instance.schema
    }


def under_tier(numpy: bool, operation):
    """Run ``operation()`` with the kernel tier forced, restoring after."""
    previous = planes.set_numpy(numpy)
    try:
        return operation()
    finally:
        planes.set_numpy(previous)


def tier_pair(operation):
    """``operation()`` under the numpy tier and under the stdlib tier.

    Without numpy installed both runs use the stdlib tier, which still
    checks the operation is deterministic.
    """
    return under_tier(True, operation), under_tier(False, operation)


# ----------------------------------------------------------------------
# Corpus instances (small scales: these run per-axis, per-corpus)
# ----------------------------------------------------------------------


def _xmark_instance() -> Instance:
    return load(xmark.generate(scale=12).xml).instance


CORPUS_BUILDERS = {
    "binary-tree": lambda: binary_tree.compressed_instance(depth=7),
    "relational": lambda: relational.direct_instance(rows=40, cols=5),
    "xmark": _xmark_instance,
}


@pytest.fixture(scope="module", params=sorted(CORPUS_BUILDERS))
def corpus_instance(request) -> Instance:
    return CORPUS_BUILDERS[request.param]()


def tag_pair(instance: Instance) -> tuple[str, str]:
    """Two distinct populated tags to use as operands."""
    names = [n for n in instance.schema if instance.members(n)]
    if len(names) < 2:
        names = list(instance.schema)[:2]
    return names[0], names[-1]


# ----------------------------------------------------------------------
# Bulk set operations
# ----------------------------------------------------------------------


class TestBulkOpsTierEquivalence:
    def test_combine_sets(self, corpus_instance):
        left, right = tag_pair(corpus_instance)

        def run():
            work = corpus_instance.copy()
            for op in ("union", "intersect", "difference"):
                work.combine_sets(op, left, right, f"t-{op}")
            return plane_bytes(work), observable(work)

        assert under_tier(True, run) == under_tier(False, run)

    def test_fill_clear_drop(self, corpus_instance):
        left, right = tag_pair(corpus_instance)

        def run():
            work = corpus_instance.copy()
            work.fill_set("all")
            work.combine_sets("union", left, right, "u")
            work.clear_sets([left, "u"])
            work.drop_sets(["all", right, "all"])
            return plane_bytes(work), observable(work)

        assert under_tier(True, run) == under_tier(False, run)

    @settings(max_examples=40, deadline=None)
    @given(
        random_dag_instances(),
        st.sampled_from(("union", "intersect", "difference")),
        st.sampled_from(LABELS),
        st.sampled_from(LABELS),
    )
    def test_combine_on_random_dags(self, instance, op, left, right):
        def run():
            work = instance.copy()
            work.combine_sets(op, left, right, "t")
            work.fill_set("all")
            return plane_bytes(work), observable(work)

        assert under_tier(True, run) == under_tier(False, run)


# ----------------------------------------------------------------------
# Axis fast paths
# ----------------------------------------------------------------------


def apply_forced(instance: Instance, axis: str, source: str, numpy: bool) -> tuple:
    """One ``apply_axis`` with the tier forced and the threshold at zero."""
    previous_threshold = axes_compressed.VECTOR_THRESHOLD
    axes_compressed.VECTOR_THRESHOLD = 0
    try:

        def run():
            result = axes_compressed.apply_axis(
                instance.copy(), axis, source, "result"
            )
            return plane_bytes(result), observable(result)

        return under_tier(numpy, run)
    finally:
        axes_compressed.VECTOR_THRESHOLD = previous_threshold


class TestAxisTierEquivalence:
    @pytest.mark.parametrize("axis", AXES)
    def test_axis_on_corpora(self, corpus_instance, axis):
        source, _ = tag_pair(corpus_instance)
        vectorized = apply_forced(corpus_instance, axis, source, numpy=True)
        scalar = apply_forced(corpus_instance, axis, source, numpy=False)
        assert vectorized == scalar

    @settings(max_examples=30, deadline=None)
    @given(random_dag_instances(), st.sampled_from(AXES), st.sampled_from(LABELS))
    def test_axis_on_random_dags(self, instance, axis, source):
        vectorized = apply_forced(instance, axis, source, numpy=True)
        scalar = apply_forced(instance, axis, source, numpy=False)
        assert vectorized == scalar

    def test_threshold_gates_vectorization(self):
        # Below the threshold the scalar path runs even with numpy active;
        # the dispatch predicate is what the equivalence above licenses.
        small = binary_tree.compressed_instance(depth=3)
        assert small.num_edge_entries < axes_compressed.VECTOR_THRESHOLD
        assert not axes_compressed._vectorized(small)
        if planes.numpy_active():
            wide = Instance(LABELS)
            leaves = [wide.new_vertex(["b"]) for _ in range(300)]
            wide.set_root(wide.new_vertex(["a"], [(leaf, 1) for leaf in leaves]))
            assert axes_compressed._vectorized(wide)


# ----------------------------------------------------------------------
# The shred-time string pass
# ----------------------------------------------------------------------


class TestStringPassTierEquivalence:
    @pytest.mark.parametrize(
        "xml_builder, needles",
        [
            (lambda: relational.generate_xml(30, 4, distinct_texts=True).xml, ("r1c1", "r2")),
            (lambda: xmark.generate(scale=10).xml, ("item", "credit")),
            (lambda: binary_tree.generate_xml(depth=6).xml, ("x",)),
        ],
        ids=["relational", "xmark", "binary-tree"],
    )
    def test_load_with_strings(self, xml_builder, needles):
        xml = xml_builder()

        def run():
            instance = load(xml, strings=list(needles)).instance
            return plane_bytes(instance), observable(instance)

        assert under_tier(True, run) == under_tier(False, run)

"""The JSON-over-HTTP front of the query service (stdlib only).

``repro serve`` runs a :class:`ReproHTTPServer` — a
``ThreadingHTTPServer`` whose handler threads feed either the in-process
coalescing :class:`repro.server.service.QueryService` (``--workers 0``)
or the pre-forked :class:`repro.server.cluster.WorkerFleet`
(``--workers N``); both expose the same surface, so the handler code is
identical at any worker count.  Endpoints::

    GET    /healthz            liveness + catalog summary (+ fleet summary)
    GET    /stats              serving / pool / coalescing counters
                               (per-worker shard/residency/queue-depth
                               counters under --workers N)
    GET    /catalog            registered documents with shred metadata
    POST   /catalog/<name>     register a document  {"xml": "<...>"}
    DELETE /catalog/<name>     evict: drop pool residency + catalog entry
    POST   /query              {"document": d, "query": q,
                                "paths": N?, "limit": N?}
    GET    /explain            ?document=d&query=q -> structured Plan JSON
    POST   /explain            {"document": d?, "query": q}

Every response is ``application/json``.  Every error body is the uniform
envelope of :func:`repro.api.envelope.error_envelope` —
``{"error": {"kind", "message", "detail"}}`` — whose ``kind`` strings are
the same families the cluster worker wire protocol round-trips, so a
client sees identical error payloads at any worker count.  Status codes
map the same way the CLI maps errors to exit codes: unknown documents
and malformed queries are 400/404 (the caller's fault), engine failures
are 500.  A request whose shard's worker process died mid-flight is 503
— transient by construction, the dispatcher respawns the worker.
"""

from __future__ import annotations

import json
import time
import urllib.parse
# Distinct from builtins.TimeoutError before 3.11, an alias after.
from concurrent.futures import TimeoutError as FuturesTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.api.envelope import error_envelope
from repro.errors import (
    CatalogError,
    DeadlineExceededError,
    IntegrityError,
    OverloadedError,
    QuarantinedError,
    ReproError,
    WorkerUnavailableError,
    XPathCompileError,
    XPathSyntaxError,
)
from repro.server.catalog import Catalog
from repro.server.resilience import Deadline
from repro.server.service import QueryService

#: Registration payloads above this size are rejected (bytes).
MAX_BODY = 256 * 1024 * 1024


class ReproHTTPServer(ThreadingHTTPServer):
    """One handler thread per connection; requests coalesce in the service."""

    daemon_threads = True
    # socketserver's default listen backlog is 5; a burst of clients
    # connecting at once then overflows the SYN queue and the dropped
    # connects retry after a full second.  128 rides out real bursts.
    request_queue_size = 128

    def __init__(
        self,
        address: tuple[str, int],
        service,
        quiet: bool = True,
        default_deadline_ms: float = 0.0,
    ):
        self.service = service
        self.quiet = quiet
        #: Applied to /query requests that carry no deadline of their own
        #: (0 = requests without a deadline run unbounded, as before).
        self.default_deadline_ms = default_deadline_ms
        super().__init__(address, _Handler)

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server: ReproHTTPServer
    protocol_version = "HTTP/1.1"
    # Responses go out as header + body segments on a keep-alive connection;
    # without this (a *handler* attribute, per socketserver), Nagle + the
    # client's delayed ACK stall every request on the connection ~40ms.
    disable_nagle_algorithm = True

    # -- plumbing --------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        if not self.server.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str, kind: str = "bad-request") -> None:
        """A request-shape failure as the uniform error envelope."""
        self._reply(status, error_envelope(kind=kind, message=message))

    def _fail(
        self,
        status: int,
        error: BaseException,
        message: str | None = None,
        headers: dict | None = None,
    ) -> None:
        """An exception as the uniform envelope (kind derived from its family)."""
        self._reply(status, error_envelope(error, message=message), headers=headers)

    def _serve_errors(self, error: BaseException) -> None:
        """Map one service-layer exception to its status + envelope.

        Shared by ``/query`` and ``/explain`` so the two routes can never
        disagree on how an error family is presented.
        """
        if isinstance(error, OverloadedError):
            # An honest shed: 429 with a machine-readable Retry-After (the
            # header wants integer seconds; the exact float rides in the
            # envelope's detail).
            retry_after = max(0.0, getattr(error, "retry_after", 1.0))
            self._fail(
                429, error, headers={"Retry-After": str(max(1, int(retry_after + 0.999)))}
            )
        elif isinstance(error, DeadlineExceededError):
            self._fail(504, error)
        elif isinstance(error, (QuarantinedError, IntegrityError)):
            # Before their CatalogError parent: a quarantined or torn
            # document is the server's problem (503 until verified or
            # repaired), not a client addressing mistake (404).
            self._fail(503, error)
        elif isinstance(error, CatalogError):
            self._fail(404, error)
        elif isinstance(error, (XPathSyntaxError, XPathCompileError)):
            self._fail(400, error, message=f"invalid query: {error}")
        elif isinstance(error, FuturesTimeoutError):
            self._fail(
                504,
                error,
                message=f"request timed out after {self.server.service.request_timeout}s",
            )
        elif isinstance(error, WorkerUnavailableError):
            # The shard's worker died with this request in flight; the fleet
            # respawns it, so the failure is transient — tell the client to
            # retry, never hang or serve a wrong answer.
            self._fail(503, error)
        elif isinstance(error, ReproError):
            self._fail(500, error)
        else:
            # e.g. FileNotFoundError when a concurrent DELETE removed the
            # chunk files mid-load: still a JSON envelope, never a dropped
            # connection with a server-side traceback.
            self._error(500, f"{type(error).__name__}: {error}", kind="internal")

    def _read_json(self) -> dict | None:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            self._error(400, "missing request body")
            return None
        if length > MAX_BODY:
            self._error(413, f"request body over {MAX_BODY} bytes", kind="payload-too-large")
            return None
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            self._error(400, f"malformed JSON body: {error}")
            return None
        if not isinstance(payload, dict):
            self._error(400, "request body must be a JSON object")
            return None
        return payload

    # -- routes ----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service = self.server.service
        if self.path == "/healthz":
            payload = service.health_dict()
            payload["documents"] = len(service.catalog)
            payload["mode"] = service.mode
            workers = getattr(service, "workers", 0)
            if workers:
                payload["workers"] = workers
            # "degraded" is still a 2xx (the server answers what it can) but
            # a *distinct* one, so probes tell fine from limping without
            # parsing the body.
            self._reply(200 if payload["status"] == "ok" else 203, payload)
        elif self.path == "/stats":
            self._reply(200, service.stats_dict())
        elif self.path == "/catalog":
            from dataclasses import asdict

            self._reply(
                200, {"documents": [asdict(entry) for entry in service.catalog.entries()]}
            )
        elif self.path.split("?", 1)[0] == "/explain":
            query_string = self.path.partition("?")[2]
            params = urllib.parse.parse_qs(query_string)
            self._explain(
                document=(params.get("document") or [None])[0],
                query_text=(params.get("query") or [None])[0],
            )
        else:
            self._error(404, f"no such endpoint: GET {self.path}", kind="not-found")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/query":
            self._post_query()
        elif self.path == "/explain":
            payload = self._read_json()
            if payload is None:
                return
            self._explain(
                document=payload.get("document"), query_text=payload.get("query")
            )
        elif self.path.startswith("/catalog/"):
            self._post_catalog(self.path[len("/catalog/"):])
        else:
            self._error(404, f"no such endpoint: POST {self.path}", kind="not-found")

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        if not self.path.startswith("/catalog/"):
            self._error(404, f"no such endpoint: DELETE {self.path}", kind="not-found")
            return
        name = self.path[len("/catalog/"):]
        service = self.server.service
        try:
            # Remove from the catalog FIRST: under --workers N the evict
            # broadcast makes every worker re-read the manifest, and only a
            # post-removal manifest makes them drop their cached entry and
            # chunk store — evicting first would refresh against a manifest
            # that still lists the document, leaving workers serving stale
            # chunks if the name is re-registered.
            service.catalog.remove(name)
            evicted = service.evict(name)
        except CatalogError as error:
            self._fail(404, error)
            return
        self._reply(200, {"removed": name, "pool_entries_evicted": evicted})

    # -- handlers --------------------------------------------------------

    def _post_query(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        document = payload.get("document")
        query_text = payload.get("query")
        if not isinstance(document, str) or not isinstance(query_text, str):
            self._error(400, "body needs string fields 'document' and 'query'")
            return
        paths = payload.get("paths", 0)
        limit = payload.get("limit", None)
        if not isinstance(paths, int) or paths < 0:
            self._error(400, "'paths' must be a non-negative integer")
            return
        kwargs = {"paths": paths}
        if limit is not None:
            if not isinstance(limit, int) or limit < 1:
                self._error(400, "'limit' must be a positive integer")
                return
            kwargs["limit"] = limit
        # End-to-end deadline: body field, else header, else the server's
        # configured default (0 = unbounded).  The budget starts here —
        # coalescing wait, pool loads, worker queues all count against it.
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            header = self.headers.get("X-Repro-Deadline-Ms")
            if header is not None:
                try:
                    deadline_ms = float(header)
                except ValueError:
                    self._error(400, "X-Repro-Deadline-Ms must be a number")
                    return
        if deadline_ms is None:
            deadline_ms = self.server.default_deadline_ms
        if deadline_ms:
            if not isinstance(deadline_ms, (int, float)) or deadline_ms <= 0:
                self._error(400, "'deadline_ms' must be a positive number")
                return
            kwargs["deadline"] = Deadline.after_ms(deadline_ms)
        # Rate-limit identity: an explicit client header, else the peer.
        kwargs["client"] = self.headers.get("X-Repro-Client") or self.client_address[0]
        try:
            response = self.server.service.query(document, query_text, **kwargs)
        except Exception as error:  # noqa: BLE001 - the client must get JSON
            self._serve_errors(error)
        else:
            self._reply(200, response)

    def _explain(self, document: str | None, query_text: str | None) -> None:
        """Answer ``/explain``: the structured Plan of one query as JSON.

        With a ``document`` the service attaches instance provenance (pool
        residency in process, shard affinity + residency under a fleet);
        without one the plan of the bare query text is returned.
        """
        if not isinstance(query_text, str) or not query_text:
            self._error(400, "explain needs a string field 'query'")
            return
        if document is not None and not isinstance(document, str):
            self._error(400, "'document' must be a string when given")
            return
        try:
            if document is None:
                from repro.api.plan import Plan

                response = {
                    "document": None,
                    "query": query_text,
                    "plan": Plan.from_query(query_text).to_dict(),
                }
            else:
                response = self.server.service.explain(document, query_text)
        except Exception as error:  # noqa: BLE001 - the client must get JSON
            self._serve_errors(error)
        else:
            self._reply(200, response)

    def _post_catalog(self, name: str) -> None:
        payload = self._read_json()
        if payload is None:
            return
        xml = payload.get("xml")
        if not isinstance(xml, str):
            self._error(400, "body needs a string field 'xml'")
            return
        attributes = payload.get("attributes", "ignore")
        try:
            entry = self.server.service.catalog.add(name, xml, attributes=attributes)
        except ReproError as error:
            self._fail(400, error)
            return
        from dataclasses import asdict

        self._reply(201, asdict(entry))


def create_server(
    catalog_dir: str,
    host: str = "127.0.0.1",
    port: int = 8080,
    mode: str = "snapshot",
    window: float = 0.0,
    max_batch: int = 64,
    pool_capacity: int = 8,
    axes: str = "functional",
    quiet: bool = True,
    workers: int = 0,
    worker_threads: int = 4,
    deadline_ms: float = 0.0,
    max_queue: int = 0,
    rate_limit: float = 0.0,
) -> ReproHTTPServer:
    """Build a ready-to-run server (``port=0`` binds an ephemeral port).

    ``workers=0`` serves in process (PR 3's single-process path);
    ``workers=N`` pre-forks a :class:`repro.server.cluster.WorkerFleet`
    and the front-end becomes a sharding dispatcher.  Callers own the
    service lifecycle: call ``server.service.close()`` after
    ``server_close()`` to drain the fleet.

    The resilience knobs: ``deadline_ms`` is the default end-to-end budget
    for requests that do not carry their own (0 = unbounded),
    ``max_queue`` caps concurrently admitted requests, and ``rate_limit``
    is per-client requests/second — both shed with 429 + ``Retry-After``
    when exceeded (0 disables each).
    """
    # Bind the socket *before* building the service: a failed bind (port
    # in use) must not leave a spawned worker fleet running with no handle
    # to close it.  The handler only reads ``server.service`` per request,
    # so the placeholder is never observed.
    server = ReproHTTPServer((host, port), None, quiet=quiet, default_deadline_ms=deadline_ms)
    try:
        if workers:
            from repro.server.cluster import WorkerFleet

            service = WorkerFleet(
                Catalog(catalog_dir),
                workers=workers,
                mode=mode,
                window=window,
                max_batch=max_batch,
                pool_capacity=pool_capacity,
                axes=axes,
                worker_threads=worker_threads,
                max_queue=max_queue,
                rate_limit=rate_limit,
            )
        else:
            service = QueryService(
                Catalog(catalog_dir),
                mode=mode,
                window=window,
                max_batch=max_batch,
                pool_capacity=pool_capacity,
                axes=axes,
                max_queue=max_queue,
                rate_limit=rate_limit,
            )
    except BaseException:
        server.server_close()
        raise
    server.service = service
    return server


def wait_ready(host: str, port: int, timeout: float = 30.0, path: str = "/healthz") -> bool:
    """Block until the server at ``host:port`` answers ``path`` with 2xx.

    Both 200 (``ok``) and 203 (``degraded``) count as ready: a degraded
    server is *serving* — a probe that refused to consider it up would
    turn partial failures into total ones.

    The shared readiness probe: tests and the benchmark harnesses call
    this one helper instead of hand-rolled retry loops (or, worse, fixed
    sleeps), so "server is up" means the same thing everywhere — the
    socket accepts *and* a real request round-trips.  Returns ``False``
    instead of raising when the deadline passes, so callers produce their
    own diagnostics.
    """
    import http.client

    deadline = time.monotonic() + timeout
    while True:
        # Bound each attempt separately (1 s, or whatever remains of the
        # overall budget): one hanging connect against a full listen
        # backlog must not consume the entire deadline in a single try.
        attempt = max(0.05, min(1.0, deadline - time.monotonic()))
        try:
            connection = http.client.HTTPConnection(host, port, timeout=attempt)
            try:
                connection.request("GET", path)
                if connection.getresponse().status in (200, 203):
                    return True
            finally:
                connection.close()
        except (OSError, http.client.HTTPException):
            pass
        if time.monotonic() >= deadline:
            return False
        time.sleep(0.02)


def _stats_line(service) -> str:
    """One greppable line of serving counters (the ``--stats-interval`` log)."""
    stats = service.stats_dict()
    if "cluster" in stats:
        cluster = stats["cluster"]
        depths = ",".join(str(row["queue_depth"]) for row in stats["workers"])
        shards = ",".join(str(len(row.get("shards", []))) for row in stats["workers"])
        return (
            f"workers={cluster['alive']}/{cluster['workers']} "
            f"dispatched={cluster['dispatched']} completed={cluster['completed']} "
            f"failed={cluster['failed']} respawns={cluster['respawns']} "
            f"depth=[{depths}] shards=[{shards}]"
        )
    inner, pool = stats["service"], stats["pool"]
    return (
        f"requests={inner['requests']} batches={inner['batches']} "
        f"coalesced={inner['coalesced_requests']} errors={inner['errors']} "
        f"pool={pool['resident']}/{pool['capacity']} "
        f"hits={pool['hits']} misses={pool['misses']}"
    )


def serve(catalog_dir: str, stats_interval: float = 0.0, **kwargs) -> None:
    """Run the server until interrupted (the ``repro serve`` entry point).

    ``stats_interval=S`` (seconds, 0 = off) logs one :func:`_stats_line`
    to stderr every S seconds, so CI smoke runs and operators can watch
    queue depth and shard residency without curling ``/stats``.

    SIGTERM (and SIGINT, even when the process was started as a shell
    background job with SIGINT ignored) triggers the same graceful path:
    the HTTP socket closes and the worker fleet drains — the standard
    ``kill``/systemd/docker stop signal must never orphan workers.
    """
    import signal
    import sys
    import threading

    server = create_server(catalog_dir, **kwargs)

    def _signal_shutdown(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _signal_shutdown)
        signal.signal(signal.SIGINT, _signal_shutdown)
    except ValueError:  # pragma: no cover - not the main thread (embedded use)
        pass
    service = server.service
    documents = service.catalog.names()
    workers = getattr(service, "workers", 0)
    fleet = f" workers={workers}" if workers else ""
    print(
        f"repro serve: {server.url}  catalog={catalog_dir!r} "
        f"documents={len(documents)} mode={service.mode}{fleet}",
        file=sys.stderr,
    )
    stop_stats = threading.Event()
    if stats_interval > 0:
        def stats_loop() -> None:
            while not stop_stats.wait(stats_interval):
                try:
                    print(f"repro serve: stats {_stats_line(service)}", file=sys.stderr)
                except Exception as error:  # noqa: BLE001 - logging must not kill serving
                    print(f"repro serve: stats unavailable: {error}", file=sys.stderr)

        threading.Thread(target=stats_loop, name="stats-log", daemon=True).start()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        stop_stats.set()
        server.server_close()
        service.close()

"""Shakespeare-like collected-plays corpus.

The Bosak Shakespeare XML is shallow and fairly regular (paper: 16.1% /
17.8%): plays split into acts, scenes and speeches, with the only variety
being speech lengths and stage directions.

Planted material (Appendix A, Shakespeare queries): speakers
"MARK ANTONY" and "CLEOPATRA" (with an ANTONY speech immediately preceding a
CLEOPATRA speech, for Q5's preceding-sibling), and lines mentioning
"Cleopatra" (Q4's disjunct).
"""

from __future__ import annotations

import random

from repro.corpora.base import GeneratedCorpus, XMLBuilder, check_scale, rng_for, sentence

_SPEAKERS = ("FIRST WITCH", "MESSENGER", "SERVANT", "KING", "QUEEN", "FOOL", "SOLDIER")


def _speech(builder: XMLBuilder, rng: random.Random, speaker: str, mention: str | None = None) -> None:
    builder.open("SPEECH")
    builder.leaf("SPEAKER", speaker)
    lines = rng.randint(1, 6)
    for index in range(lines):
        text = sentence(rng, rng.randint(5, 9))
        if mention and index == 0:
            text = f"O {mention}, {text}"
        builder.leaf("LINE", text)
    builder.close()


def _scene(builder: XMLBuilder, rng: random.Random, play_index: int, plant: bool) -> None:
    builder.open("SCENE")
    builder.leaf("TITLE", f"SCENE {rng.randint(1, 7)}. {sentence(rng, 3).title()}.")
    builder.leaf("STAGEDIR", f"Enter {sentence(rng, 2).title()}")
    speeches = rng.randint(4, 10)
    for index in range(speeches):
        if plant and index == 1:
            _speech(builder, rng, "MARK ANTONY")
            _speech(builder, rng, "CLEOPATRA", mention="Cleopatra")
            continue
        _speech(builder, rng, rng.choice(_SPEAKERS))
    if rng.random() < 0.4:
        builder.leaf("STAGEDIR", "Exeunt")
    builder.close().newline()


def generate(scale: int = 40, seed: int = 0) -> GeneratedCorpus:
    """Generate ``scale`` scenes' worth of plays (5 acts x scenes each)."""
    check_scale(scale)
    rng = rng_for("shakespeare", scale, seed)
    builder = XMLBuilder()
    builder.open("all").newline()
    plays = max(1, scale // 12)
    scenes_left = scale
    for play_index in range(plays):
        builder.open("PLAY").newline()
        builder.leaf("TITLE", sentence(rng, 4).title())
        builder.open("PERSONAE")
        builder.leaf("TITLE", "Dramatis Personae")
        for _ in range(rng.randint(4, 10)):
            builder.leaf("PERSONA", sentence(rng, 2).title())
        builder.close().newline()
        for act in range(5):
            builder.open("ACT")
            builder.leaf("TITLE", f"ACT {act + 1}")
            for scene in range(max(1, scenes_left // max(1, (plays - play_index) * 5))):
                plant = play_index == 0 and act == 0 and scene == 0
                _scene(builder, rng, play_index, plant)
                scenes_left -= 1
            builder.close().newline()
        builder.close().newline()  # PLAY
    builder.close()
    return GeneratedCorpus(name="shakespeare", xml=builder.result(), scale=scale, seed=seed)

"""Aho-Corasick multi-pattern string matching.

The paper (section 4) matches string constraints "to nodes on the stack on
the fly during parsing using automata-based techniques"; this module is that
automaton.  It reports, for a streamed text, every occurrence of every
pattern as ``(end_position, pattern_index)`` — the stream matcher in
:mod:`repro.strings.matcher` turns those into node-set memberships.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from repro.errors import ReproError


class AhoCorasick:
    """An Aho-Corasick automaton over a fixed pattern set.

    States are dense integers; ``goto`` is a list of per-state dicts, fail
    links are precomputed, and each state carries the bitmask of patterns
    ending there (including via suffix links), so stepping is one dict lookup
    plus an integer OR.
    """

    __slots__ = ("patterns", "_goto", "_fail", "_output")

    def __init__(self, patterns: Sequence[str]):
        if any(not pattern for pattern in patterns):
            raise ReproError("empty string patterns are not allowed")
        self.patterns = tuple(patterns)
        self._goto: list[dict[str, int]] = [{}]
        self._output: list[int] = [0]
        self._build_trie()
        self._fail: list[int] = [0] * len(self._goto)
        self._build_links()

    def _build_trie(self) -> None:
        for index, pattern in enumerate(self.patterns):
            state = 0
            for char in pattern:
                nxt = self._goto[state].get(char)
                if nxt is None:
                    nxt = len(self._goto)
                    self._goto[state][char] = nxt
                    self._goto.append({})
                    self._output.append(0)
                state = nxt
            self._output[state] |= 1 << index

    def _build_links(self) -> None:
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            queue.append(state)
        while queue:
            state = queue.popleft()
            for char, nxt in self._goto[state].items():
                queue.append(nxt)
                fail = self._fail[state]
                while fail and char not in self._goto[fail]:
                    fail = self._fail[fail]
                self._fail[nxt] = self._goto[fail].get(char, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] |= self._output[self._fail[nxt]]

    @property
    def num_states(self) -> int:
        return len(self._goto)

    def step(self, state: int, char: str) -> int:
        """Advance one character (the classic goto/fail loop)."""
        goto = self._goto
        fail = self._fail
        while True:
            nxt = goto[state].get(char)
            if nxt is not None:
                return nxt
            if state == 0:
                return 0
            state = fail[state]

    def resume(self, state: int, chunk: str) -> tuple[int, list[tuple[int, int]]]:
        """Stream ``chunk``; return ``(final_state, [(offset, mask), ...])``."""
        matches: list[tuple[int, int]] = []
        output = self._output
        for offset, char in enumerate(chunk):
            state = self.step(state, char)
            if output[state]:
                matches.append((offset, output[state]))
        return state, matches

    def contains_mask(self, text: str) -> int:
        """Bitmask of all patterns occurring anywhere in ``text``."""
        mask = 0
        state = 0
        everything = (1 << len(self.patterns)) - 1
        output = self._output
        for char in text:
            state = self.step(state, char)
            mask |= output[state]
            if mask == everything:
                break
        return mask

    def occurrences(self, text: str) -> list[tuple[int, int]]:
        """All matches as ``(start, pattern_index)`` pairs, sorted by start."""
        found: list[tuple[int, int]] = []
        state = 0
        output = self._output
        for end, char in enumerate(text):
            state = self.step(state, char)
            mask = output[state]
            index = 0
            while mask:
                if mask & 1:
                    found.append((end - len(self.patterns[index]) + 1, index))
                mask >>= 1
                index += 1
        found.sort()
        return found

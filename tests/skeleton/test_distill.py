"""Tests for the distill-and-merge workflow (section 4 / Lemma 2.7)."""

import pytest

from repro.corpora import generate
from repro.engine.evaluator import CompressedEvaluator
from repro.errors import ReproError
from repro.model.equivalence import equivalent
from repro.model.schema import string_set
from repro.skeleton.distill import add_string_sets, distill_string_instance
from repro.skeleton.loader import load

from tests.skeleton.test_loader import BIB_XML


def loaded_bib():
    return load(BIB_XML, collect_containers=True)


class TestDistill:
    def test_distilled_matches_direct_load(self):
        base = loaded_bib()
        distilled = distill_string_instance(
            base.instance, base.containers, base.layout, ["Codd", "Vardi"]
        )
        direct = load(BIB_XML, tags=(), strings=["Codd", "Vardi"]).instance
        assert equivalent(
            distilled.reduct(sorted(direct.schema)), direct.reduct(sorted(direct.schema))
        )

    def test_distilled_is_compatible_with_base(self):
        from repro.model.equivalence import compatible

        base = loaded_bib()
        distilled = distill_string_instance(
            base.instance, base.containers, base.layout, ["Codd"]
        )
        assert compatible(base.instance, distilled)

    def test_cross_chunk_match_found(self):
        result = load("<a><b>Co</b><c>dd</c></a>", collect_containers=True)
        distilled = distill_string_instance(
            result.instance, result.containers, result.layout, ["Codd"]
        )
        # The match spans <b> and <c>: only <a> (and the doc root) carry it.
        members = distilled.members(string_set("Codd"))
        assert len(members) == 2

    def test_mixed_content_stream_order(self):
        # Text interleaved with children must replay in document order:
        # string value of <p> is "one two three".
        result = load("<p>one <em>two</em> three</p>", collect_containers=True)
        distilled = distill_string_instance(
            result.instance, result.containers, result.layout, ["one two three"]
        )
        assert len(distilled.members(string_set("one two three"))) == 2  # p + doc


class TestAddStringSets:
    def test_merge_equals_full_reload(self):
        base = loaded_bib()
        merged = add_string_sets(base.instance, base.containers, base.layout, ["Codd"])
        reloaded = load(BIB_XML, strings=["Codd"]).instance
        names = sorted(reloaded.schema)
        assert equivalent(merged.reduct(names), reloaded.reduct(names))

    def test_merged_instance_queryable(self):
        base = loaded_bib()
        merged = add_string_sets(base.instance, base.containers, base.layout, ["Codd"])
        result = CompressedEvaluator(merged).evaluate('//paper[author["Codd"]]')
        assert result.tree_count() == 1

    def test_duplicate_needle_rejected(self):
        base = load(BIB_XML, strings=["Codd"], collect_containers=True)
        with pytest.raises(ReproError, match="already present"):
            add_string_sets(base.instance, base.containers, base.layout, ["Codd"])

    def test_incremental_additions_compose(self):
        base = loaded_bib()
        step1 = add_string_sets(base.instance, base.containers, base.layout, ["Codd"])
        step2 = add_string_sets(step1, base.containers, base.layout, ["Vardi"])
        both = load(BIB_XML, strings=["Codd", "Vardi"]).instance
        names = sorted(both.schema)
        assert equivalent(step2.reduct(names), both.reduct(names))

    @pytest.mark.parametrize("corpus,needle", [("dblp", "Codd"), ("omim", "LETHAL")])
    def test_corpus_scale(self, corpus, needle):
        xml = generate(corpus, 40, seed=2).xml
        base = load(xml, collect_containers=True)
        merged = add_string_sets(base.instance, base.containers, base.layout, [needle])
        reloaded = load(xml, strings=[needle]).instance
        names = sorted(reloaded.schema)
        assert equivalent(merged.reduct(names), reloaded.reduct(names))

#!/usr/bin/env python
"""Sharded multi-process serving vs the single-process server.

PR 3's ``repro serve`` coalesces batches but runs every evaluation under
one GIL; ``--workers N`` pre-forks worker processes and shards requests by
``(document, string-schema)`` rendezvous hash, so N workers evaluate on N
cores.  This benchmark measures that end to end, over real HTTP, on a
**mixed-corpus workload** (one catalog holding binary-tree + relational +
XMark documents, requests interleaved across them so shards spread over
the fleet):

* **correctness gate** (always enforced): every distinct
  ``(document, query)`` response from every fleet size is byte-identical
  (canonical JSON of counts + decoded paths) to the ``--workers 0``
  single-process server's answer;
* **scaling curve**: aggregate throughput at ``--workers 0`` (the
  baseline) and 1/2/4/8 workers, written to ``BENCH_cluster.json``;
* **scaling gate**: ≥ ``--min-scaling`` (default 3x) aggregate throughput
  at 4 workers vs the single-process server — *enforced only when the
  machine has ≥ 4 usable cores*, because the win is core-level
  parallelism by construction; on smaller machines the curve is still
  recorded and the report says the gate was skipped (a 1-core container
  physically cannot show multi-core scaling, and pretending otherwise
  would just make the gate noise).

Usage::

    PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_server import (
    CHECK_PATHS,
    REPO_ROOT,
    ServerUnderTest,
    canonical,
    corpus_queries,
    corpus_xml,
    percentile,
)
from repro.server.catalog import Catalog
# The same counting the fleet itself uses for its --workers default, so the
# gate-enforcement decision can never diverge from the deployed behaviour.
from repro.server.cluster import default_worker_count as usable_cores

DOCUMENTS = ("binary-tree", "relational", "xmark")


def build_catalog(catalog_dir: str, smoke: bool) -> dict[str, list[str]]:
    """Register every corpus as one document; return document -> queries."""
    catalog = Catalog(catalog_dir)
    workload = {}
    for name in DOCUMENTS:
        catalog.add(name, corpus_xml(name, smoke))
        workload[name] = corpus_queries(name)
    return workload


def mixed_requests(workload: dict[str, list[str]], total: int) -> list[tuple[str, str]]:
    """Interleave ``(document, query)`` pairs round-robin across documents.

    Every corpus's full query list is cycled (no silent truncation to the
    shortest list): the measured workload covers exactly the queries the
    correctness gate covers.
    """
    rounds = max(len(queries) for queries in workload.values())
    pairs = [
        (document, workload[document][i % len(workload[document])])
        for i in range(rounds)
        for document in DOCUMENTS
    ]
    return [pairs[i % len(pairs)] for i in range(total)]


def drive_mixed(
    under_test: ServerUnderTest, requests: list[tuple[str, str]], clients: int
) -> dict:
    """Fire the mixed stream from ``clients`` threads; throughput + latency."""
    cursor = {"next": 0}
    cursor_lock = threading.Lock()
    latencies: list[float] = []
    latency_lock = threading.Lock()
    failures: list[str] = []

    def worker():
        connection = under_test.connect()
        local: list[float] = []
        try:
            while True:
                with cursor_lock:
                    index = cursor["next"]
                    if index >= len(requests):
                        break
                    cursor["next"] = index + 1
                document, query = requests[index]
                started = time.perf_counter()
                under_test.request(connection, document, query)
                local.append(time.perf_counter() - started)
        except Exception as error:  # noqa: BLE001 - reported via failures
            failures.append(repr(error))
        finally:
            connection.close()
            with latency_lock:
                latencies.extend(local)

    threads = [threading.Thread(target=worker) for _ in range(clients)]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - wall_started
    if failures:
        raise AssertionError(f"client failures: {failures[:3]}")
    if len(latencies) != len(requests):
        raise AssertionError(f"served {len(latencies)} of {len(requests)} requests")
    return {
        "wall_seconds": wall,
        "throughput_rps": len(requests) / wall,
        "latency_p50_ms": 1000 * percentile(latencies, 0.50),
        "latency_p95_ms": 1000 * percentile(latencies, 0.95),
        "latency_p99_ms": 1000 * percentile(latencies, 0.99),
        "latency_mean_ms": 1000 * statistics.fmean(latencies),
    }


def reference_answers(
    under_test: ServerUnderTest, workload: dict[str, list[str]]
) -> dict[tuple[str, str], str]:
    """Canonical ``--workers 0`` answer per distinct (document, query)."""
    answers = {}
    connection = under_test.connect()
    try:
        for document, queries in workload.items():
            for query in queries:
                answers[(document, query)] = canonical(
                    under_test.request(connection, document, query, paths=CHECK_PATHS)
                )
    finally:
        connection.close()
    return answers


def verify_against_reference(
    under_test: ServerUnderTest,
    workload: dict[str, list[str]],
    reference: dict[tuple[str, str], str],
) -> int:
    """Byte-identical gate: fleet answers == single-process answers."""
    connection = under_test.connect()
    checked = 0
    try:
        for document, queries in workload.items():
            for query in queries:
                served = canonical(
                    under_test.request(connection, document, query, paths=CHECK_PATHS)
                )
                if served != reference[(document, query)]:
                    raise AssertionError(
                        f"divergence on {document}:{query!r}:\n"
                        f"  fleet         {served}\n"
                        f"  single-process {reference[(document, query)]}"
                    )
                checked += 1
    finally:
        connection.close()
    return checked


def measure_config(
    catalog_dir: str,
    workers: int,
    requests: list[tuple[str, str]],
    clients: int,
    workload: dict[str, list[str]],
    reference: dict[tuple[str, str], str] | None,
) -> dict:
    under_test = ServerUnderTest(catalog_dir, mode="snapshot", workers=workers)
    try:
        checked = 0
        if reference is not None:
            checked = verify_against_reference(under_test, workload, reference)
        # One warm pass: masters become resident in their shards before the
        # clock (the steady state this benchmark is about).
        warm = list({pair for pair in requests})
        drive_mixed(under_test, warm, clients)
        run = drive_mixed(under_test, requests, clients)
        run["workers"] = workers
        run["checked_byte_identical"] = checked
        stats = under_test.server.service.stats_dict()
        if "cluster" in stats:
            run["respawns"] = stats["cluster"]["respawns"]
            run["shards_per_worker"] = [
                len(row.get("shards") or []) for row in stats["workers"]
            ]
        return run
    finally:
        under_test.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="small corpora, CI smoke mode")
    parser.add_argument("--clients", type=int, default=None, help="client thread count")
    parser.add_argument("--requests", type=int, default=None, help="total mixed requests")
    parser.add_argument(
        "--worker-counts", type=int, nargs="+", default=None,
        help="fleet sizes to measure (0 = the single-process baseline, "
        "always measured)",
    )
    parser.add_argument(
        "--min-scaling", type=float, default=3.0,
        help="required aggregate-throughput multiple at 4 workers vs the "
        "single-process server (enforced only on machines with >= 4 cores)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(REPO_ROOT, "BENCH_cluster.json"),
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)
    clients = args.clients or (6 if args.smoke else 16)
    total = args.requests or (60 if args.smoke else 240)
    worker_counts = args.worker_counts or ([2] if args.smoke else [1, 2, 4, 8])
    cores = usable_cores()

    print(
        f"cluster workload: sharded fleet vs single-process server "
        f"({'smoke' if args.smoke else 'full'}, {clients} clients, {total} mixed "
        f"requests, fleets {worker_counts}, {cores} usable core(s))"
    )
    catalog_dir = tempfile.mkdtemp(prefix="repro-bench-cluster-")
    try:
        workload = build_catalog(catalog_dir, args.smoke)
        requests = mixed_requests(workload, total)

        baseline_server = ServerUnderTest(catalog_dir, mode="snapshot", workers=0)
        try:
            reference = reference_answers(baseline_server, workload)
            warm = list({pair for pair in requests})
            drive_mixed(baseline_server, warm, clients)
            baseline = drive_mixed(baseline_server, requests, clients)
            baseline["workers"] = 0
        finally:
            baseline_server.close()
        print(
            f"  workers=0  {baseline['throughput_rps']:8.1f} rps  "
            f"p95 {baseline['latency_p95_ms']:7.2f} ms  (single-process baseline)"
        )

        rows = [baseline]
        for workers in worker_counts:
            row = measure_config(
                catalog_dir, workers, requests, clients, workload, reference
            )
            rows.append(row)
            scaling = row["throughput_rps"] / baseline["throughput_rps"]
            row["scaling_vs_single_process"] = scaling
            print(
                f"  workers={workers}  {row['throughput_rps']:8.1f} rps  "
                f"p95 {row['latency_p95_ms']:7.2f} ms  {scaling:5.2f}x baseline  "
                f"shards {row.get('shards_per_worker')}  "
                f"({row['checked_byte_identical']} answers byte-identical)"
            )
    finally:
        shutil.rmtree(catalog_dir, ignore_errors=True)

    scalings = {
        row["workers"]: row["scaling_vs_single_process"] for row in rows[1:]
    }
    best_scaling = max(scalings.values())
    scaling_at_4 = scalings.get(4)
    gate_enforced = scaling_at_4 is not None and cores >= 4
    report = {
        "benchmark": "cluster",
        "mode": "smoke" if args.smoke else "full",
        "baseline": "single-process repro serve (--workers 0), same workload",
        "documents": list(DOCUMENTS),
        "clients": clients,
        "requests_total": total,
        "usable_cores": cores,
        "rows": rows,
        "scaling_by_workers": {str(w): s for w, s in sorted(scalings.items())},
        "best_scaling": best_scaling,
        "scaling_at_4_workers": scaling_at_4,
        "min_scaling_required": args.min_scaling,
        "scaling_gate_enforced": gate_enforced,
        "scaling_gate_skip_reason": (
            None
            if gate_enforced
            else (
                f"machine has {cores} usable core(s); multi-core scaling "
                f"cannot be demonstrated below 4"
                if scaling_at_4 is not None
                else "4-worker configuration not in --worker-counts"
            )
        ),
        "checked_byte_identical_total": sum(
            row.get("checked_byte_identical", 0) for row in rows
        ),
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")

    if scaling_at_4 is not None:
        gate_note = (
            "enforced"
            if gate_enforced
            else "gate skipped: " + report["scaling_gate_skip_reason"]
        )
        tail = (
            f"at-4-workers {scaling_at_4:.2f}x "
            f"(required >= {args.min_scaling:.2f}x, {gate_note})"
        )
    else:
        tail = "(4-worker point not measured)"
    print(f"\nscaling vs single-process: best {best_scaling:.2f}x  {tail}")
    print(f"wrote {args.output}")
    if gate_enforced and scaling_at_4 < args.min_scaling:
        print("FAIL: fleet scaling below the required multiple", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

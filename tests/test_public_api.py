"""Public-API snapshot: the committed export surface of every public module.

An accidental rename, a dropped re-export, or a new symbol leaking out of
a package ``__init__`` is an API break for downstream users — this test
pins the exact surface so any change to it must be deliberate (update the
snapshot in the same commit, with the reasoning in the message).
"""

import importlib

import pytest

#: module -> exact expected ``__all__``.  Keep sorted.
SNAPSHOT = {
    "repro": [
        "DagBuilder",
        "Database",
        "Engine",
        "Instance",
        "Plan",
        "PreparedQuery",
        "ResultSet",
        "api",
        "common_extension",
        "decompress",
        "equivalent",
        "instance_stats",
        "load_instance",
        "minimize",
        "open",
        "query",
        "query_batch",
        "tree_instance",
        "__version__",
    ],
    "repro.api": [
        "DEFAULT_LIMIT",
        "ERROR_KINDS",
        "MAX_PATHS",
        "Database",
        "Plan",
        "PlanNode",
        "PreparedQuery",
        "ResultSet",
        "ResultSetBatch",
        "encode_path",
        "encode_result",
        "error_envelope",
        "error_kind",
        "open",
        "open_database",
        "rebuild_error",
    ],
    "repro.engine": [
        "BatchEvaluator",
        "BatchResult",
        "BatchStats",
        "CompressedEvaluator",
        "Engine",
        "QueryResult",
        "TreeEvaluator",
        "TreeIndex",
        "TreeResult",
        "apply_axis",
        "downward_axis_inplace",
        "evaluate",
        "evaluate_batch",
        "evaluate_on_tree",
        "load_for_queries",
        "load_for_query",
        "load_instance",
        "query",
        "query_batch",
        "tree_axis",
    ],
    "repro.server": [
        "AdmissionController",
        "AsyncReproHTTPServer",
        "Catalog",
        "CatalogEntry",
        "CircuitBreaker",
        "Deadline",
        "FAULTS",
        "FaultInjector",
        "InstancePool",
        "MetricsRegistry",
        "PoolEntry",
        "QueryService",
        "ReproHTTPServer",
        "Request",
        "Response",
        "Router",
        "ServerMetrics",
        "TokenBucket",
        "WorkerFleet",
        "create_server",
        "decode_result",
        "default_worker_count",
        "parse_prometheus_text",
        "serve",
        "wait_ready",
    ],
}

#: The exact wire/envelope kind table (most-specific-first order matters
#: for subclass lookups, but the *set* of kinds is public contract).
EXPECTED_ERROR_KINDS = [
    "catalog",
    "cluster",
    "deadline_exceeded",
    "engine",
    "integrity",
    "mutation",
    "overloaded",
    "quarantined",
    "timeout",
    "worker-unavailable",
    "xpath-compile",
    "xpath-syntax",
]

#: Public (non-underscore) names that must exist on modules without
#: ``__all__`` discipline — the error hierarchy callers catch by name.
ERROR_SURFACE = [
    "CatalogError",
    "ClusterError",
    "CorpusError",
    "DeadlineExceededError",
    "DecompressionLimitError",
    "EvaluationError",
    "IncompatibleInstancesError",
    "InstanceError",
    "IntegrityError",
    "MutationError",
    "OverloadedError",
    "QuarantinedError",
    "ReproError",
    "SchemaError",
    "WorkerUnavailableError",
    "XMLSyntaxError",
    "XPathCompileError",
    "XPathSyntaxError",
]


@pytest.mark.parametrize("module_name", sorted(SNAPSHOT))
def test_all_matches_snapshot(module_name):
    module = importlib.import_module(module_name)
    assert sorted(module.__all__) == sorted(SNAPSHOT[module_name]), (
        f"{module_name}.__all__ changed; if deliberate, update "
        "tests/test_public_api.py in the same commit"
    )


@pytest.mark.parametrize("module_name", sorted(SNAPSHOT))
def test_every_exported_name_resolves(module_name):
    module = importlib.import_module(module_name)
    for name in SNAPSHOT[module_name]:
        assert getattr(module, name, None) is not None, f"{module_name}.{name}"


def test_top_level_dir_covers_all():
    import repro

    assert set(repro.__all__) <= set(dir(repro))


def test_error_hierarchy_is_stable():
    errors = importlib.import_module("repro.errors")
    exported = sorted(
        name
        for name in vars(errors)
        if not name.startswith("_")
        and isinstance(getattr(errors, name), type)
        and issubclass(getattr(errors, name), Exception)
    )
    assert exported == ERROR_SURFACE


def test_error_kinds_cover_the_wire_protocol():
    # The HTTP envelope and the worker wire protocol share one kind table;
    # both directions must keep resolving.
    from repro.api import ERROR_KINDS, error_kind, rebuild_error

    for kind, exception_type in ERROR_KINDS.items():
        rebuilt = rebuild_error(kind, "message")
        assert isinstance(rebuilt, exception_type)
        assert error_kind(rebuilt) == kind


def test_error_kind_table_matches_snapshot():
    # Kind strings are wire protocol: clients branch on them (retry on
    # "overloaded", give up on "deadline_exceeded"). Renames are breaks.
    from repro.api import ERROR_KINDS

    assert sorted(ERROR_KINDS) == EXPECTED_ERROR_KINDS

"""A trigram substring index over string containers.

Section 4 (footnote 9): "it seems interesting but not difficult to modify
the creation of compressed instances to exploit string indexes."  This is
that index: container chunks are indexed by character trigrams, so point
lookups ("which chunks can contain this needle?") avoid scanning all text.
Candidates are verified with ``in``; needles shorter than three characters
fall back to a scan.

The index finds *intra-chunk* occurrences; matches spanning chunk
boundaries (rare, but legal XPath string-value semantics) are the stream
matcher's job — :func:`repro.skeleton.distill.distill_string_instance`
remains the complete implementation, and can use this index as a prefilter.
"""

from __future__ import annotations

from repro.strings.containers import ContainerStore


def trigrams(text: str):
    """The set of character trigrams of ``text``."""
    return {text[i : i + 3] for i in range(len(text) - 2)}


class TrigramIndex:
    """Trigram -> chunk-id posting lists over a container store.

    Chunk ids index the store's document-order chunk list (the same ids the
    text layout refers to).
    """

    def __init__(self, store: ContainerStore):
        self._chunks = store.in_document_order()
        self._postings: dict[str, set[int]] = {}
        for chunk_id, chunk in enumerate(self._chunks):
            for gram in trigrams(chunk):
                self._postings.setdefault(gram, set()).add(chunk_id)

    @property
    def num_chunks(self) -> int:
        return len(self._chunks)

    @property
    def num_trigrams(self) -> int:
        return len(self._postings)

    def candidates(self, needle: str) -> set[int]:
        """Chunk ids that *may* contain ``needle`` (superset of the truth)."""
        grams = trigrams(needle)
        if not grams:
            # Too short for trigram filtering: every chunk is a candidate.
            return set(range(len(self._chunks)))
        postings = [self._postings.get(gram, set()) for gram in grams]
        smallest = min(postings, key=len)
        out = set(smallest)
        for posting in postings:
            if posting is not smallest:
                out &= posting
            if not out:
                break
        return out

    def lookup(self, needle: str) -> list[int]:
        """Chunk ids that contain ``needle``, verified, in document order."""
        return sorted(
            chunk_id
            for chunk_id in self.candidates(needle)
            if needle in self._chunks[chunk_id]
        )

    def contains_anywhere(self, needle: str) -> bool:
        """True if some single chunk contains ``needle`` (no cross-chunk check)."""
        return bool(self.lookup(needle))

"""A from-scratch streaming XML tokenizer.

This is the lexical layer of the paper's "very fast SAX(-like) parser"
(section 4), rebuilt in Python.  It walks the document text once, emitting
:mod:`repro.xmlio.events` objects; all heavy lifting is delegated to the
:mod:`re` module (C speed), with Python code only at markup boundaries.

The tokenizer checks lexical well-formedness (tag syntax, attribute quoting,
comment/CDATA termination); *structural* well-formedness (balanced tags, a
single root) is layered on top by :mod:`repro.xmlio.parser`.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import unescape
from repro.xmlio.events import (
    Comment,
    Doctype,
    EndElement,
    Event,
    ProcessingInstruction,
    StartElement,
    Text,
)

# Practical XML name: anything that is not whitespace, punctuation used by
# the grammar, and does not start with a character reserved for markup.
_NAME = r"[^\s<>/=!?'\"][^\s<>/=!?'\"]*"

_OPEN_RE = re.compile(
    rf"<({_NAME})"  # tag name
    r"((?:\s+[^\s<>/=]+\s*=\s*(?:\"[^\"]*\"|'[^']*'))*)"  # attributes
    r"\s*(/?)>"
)
_CLOSE_RE = re.compile(rf"</({_NAME})\s*>")
_ATTR_RE = re.compile(r"([^\s<>/=]+)\s*=\s*(?:\"([^\"]*)\"|'([^']*)')")
_PI_RE = re.compile(rf"<\?({_NAME})(?:\s+(.*?))?\?>", re.DOTALL)


def _location(text: str, offset: int) -> tuple[int, int]:
    """1-based (line, column) of ``offset`` — computed only on error paths."""
    line = text.count("\n", 0, offset) + 1
    last_newline = text.rfind("\n", 0, offset)
    return line, offset - last_newline


def _error(message: str, text: str, offset: int) -> XMLSyntaxError:
    line, column = _location(text, offset)
    return XMLSyntaxError(message, offset=offset, line=line, column=column)


def tokenize(text: str) -> Iterator[Event]:
    """Yield lexical events for ``text`` in document order.

    Adjacent character data (including CDATA sections) is *not* merged here;
    the parser layer coalesces it.  Raises :class:`XMLSyntaxError` with
    line/column info on malformed markup.
    """
    position = 0
    length = len(text)
    find = text.find
    while position < length:
        lt = find("<", position)
        if lt < 0:
            data = text[position:]
            if data:
                yield Text(unescape(data), offset=position)
            return
        if lt > position:
            yield Text(unescape(text[position:lt]), offset=position)
        marker = text[lt + 1] if lt + 1 < length else ""
        if marker == "/":
            match = _CLOSE_RE.match(text, lt)
            if not match:
                raise _error("malformed closing tag", text, lt)
            yield EndElement(match.group(1), offset=lt)
            position = match.end()
        elif marker == "!":
            position = yield from _bang(text, lt)
        elif marker == "?":
            match = _PI_RE.match(text, lt)
            if not match:
                raise _error("malformed processing instruction", text, lt)
            yield ProcessingInstruction(match.group(1), match.group(2) or "", offset=lt)
            position = match.end()
        else:
            match = _OPEN_RE.match(text, lt)
            if not match:
                raise _error("malformed start tag", text, lt)
            name, attr_blob, self_close = match.groups()
            attributes = _parse_attributes(attr_blob, text, lt)
            yield StartElement(name, attributes, offset=lt)
            if self_close:
                yield EndElement(name, offset=lt)
            position = match.end()


def _parse_attributes(blob: str, text: str, tag_offset: int) -> dict[str, str]:
    if not blob:
        return {}
    attributes: dict[str, str] = {}
    for match in _ATTR_RE.finditer(blob):
        name = match.group(1)
        value = match.group(2) if match.group(2) is not None else match.group(3)
        if name in attributes:
            raise _error(f"duplicate attribute {name!r}", text, tag_offset)
        attributes[name] = unescape(value)
    return attributes


def _bang(text: str, lt: int):
    """Handle ``<!--``, ``<![CDATA[`` and ``<!DOCTYPE`` constructs."""
    if text.startswith("<!--", lt):
        end = text.find("-->", lt + 4)
        if end < 0:
            raise _error("unterminated comment", text, lt)
        body = text[lt + 4 : end]
        if "--" in body:
            raise _error("'--' inside comment", text, lt)
        yield Comment(body, offset=lt)
        return end + 3
    if text.startswith("<![CDATA[", lt):
        end = text.find("]]>", lt + 9)
        if end < 0:
            raise _error("unterminated CDATA section", text, lt)
        yield Text(text[lt + 9 : end], offset=lt)
        return end + 3
    if text.startswith("<!DOCTYPE", lt):
        # Skip to the matching '>' accounting for an optional internal
        # subset in [...] brackets.
        depth = 0
        for index in range(lt, len(text)):
            char = text[index]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == ">" and depth == 0:
                yield Doctype(text[lt : index + 1], offset=lt)
                return index + 1
        raise _error("unterminated DOCTYPE", text, lt)
    raise _error("malformed '<!' construct", text, lt)

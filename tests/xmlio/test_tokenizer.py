"""Unit tests for the XML tokenizer (lexical layer)."""

import pytest

from repro.errors import XMLSyntaxError
from repro.xmlio.escape import escape_attribute, escape_text, unescape
from repro.xmlio.tokenizer import tokenize


def kinds(text):
    return [event.kind for event in tokenize(text)]


class TestBasicMarkup:
    def test_single_element(self):
        events = list(tokenize("<a></a>"))
        assert [e.kind for e in events] == ["start", "end"]
        assert events[0].name == "a"

    def test_self_closing_emits_both_halves(self):
        events = list(tokenize("<a/>"))
        assert [e.kind for e in events] == ["start", "end"]
        assert events[1].name == "a"

    def test_nested_elements(self):
        assert kinds("<a><b/></a>") == ["start", "start", "end", "end"]

    def test_text_between_elements(self):
        events = list(tokenize("<a>hello</a>"))
        assert events[1].kind == "text"
        assert events[1].data == "hello"

    def test_names_with_punctuation(self):
        events = list(tokenize("<ns:tag-1.x_y/>"))
        assert events[0].name == "ns:tag-1.x_y"

    def test_offsets_recorded(self):
        events = list(tokenize("ab<x/>"))
        assert events[0].offset == 0
        assert events[1].offset == 2


class TestAttributes:
    def test_double_and_single_quotes(self):
        (start, _) = tokenize('<a x="1" y=\'2\'/>')
        assert start.attributes == {"x": "1", "y": "2"}

    def test_whitespace_tolerated(self):
        (start, _) = tokenize('<a   x = "1"\n\ty="2" />')
        assert start.attributes == {"x": "1", "y": "2"}

    def test_entities_in_values(self):
        (start, _) = tokenize('<a x="&lt;&amp;&gt;"/>')
        assert start.attributes == {"x": "<&>"}

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(XMLSyntaxError, match="duplicate"):
            list(tokenize('<a x="1" x="2"/>'))

    def test_unquoted_value_rejected(self):
        with pytest.raises(XMLSyntaxError):
            list(tokenize("<a x=1/>"))


class TestEntities:
    def test_predefined(self):
        (_, text, _) = tokenize("<a>&lt;&gt;&amp;&apos;&quot;</a>")
        assert text.data == "<>&'\""

    def test_numeric_decimal_and_hex(self):
        (_, text, _) = tokenize("<a>&#65;&#x42;</a>")
        assert text.data == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unknown entity"):
            list(tokenize("<a>&nope;</a>"))

    def test_bare_ampersand_rejected(self):
        with pytest.raises(XMLSyntaxError, match="bare"):
            list(tokenize("<a>fish & chips</a>"))

    def test_escape_round_trip(self):
        original = 'a < b & "c" > d'
        assert unescape(escape_text(original)) == original
        assert unescape(escape_attribute(original)) == original


class TestCommentsCdataDoctypePi:
    def test_comment(self):
        events = list(tokenize("<a><!-- note --></a>"))
        assert events[1].kind == "comment"
        assert events[1].data == " note "

    def test_double_hyphen_in_comment_rejected(self):
        with pytest.raises(XMLSyntaxError, match="--"):
            list(tokenize("<a><!-- a -- b --></a>"))

    def test_unterminated_comment_rejected(self):
        with pytest.raises(XMLSyntaxError, match="unterminated comment"):
            list(tokenize("<a><!-- oops</a>"))

    def test_cdata_is_text_without_unescaping(self):
        events = list(tokenize("<a><![CDATA[<b>&amp;</b>]]></a>"))
        assert events[1].kind == "text"
        assert events[1].data == "<b>&amp;</b>"

    def test_unterminated_cdata_rejected(self):
        with pytest.raises(XMLSyntaxError, match="CDATA"):
            list(tokenize("<a><![CDATA[oops</a>"))

    def test_doctype_with_internal_subset(self):
        text = '<!DOCTYPE r [<!ELEMENT r (#PCDATA)>]><r/>'
        events = list(tokenize(text))
        assert events[0].kind == "doctype"
        assert events[1].kind == "start"

    def test_xml_declaration_is_pi(self):
        events = list(tokenize('<?xml version="1.0"?><a/>'))
        assert events[0].kind == "pi"
        assert events[0].target == "xml"

    def test_pi_with_data(self):
        events = list(tokenize("<?xslt href='x'?><a/>"))
        assert events[0].data == "href='x'"

    def test_bad_bang_rejected(self):
        with pytest.raises(XMLSyntaxError, match="'<!'"):
            list(tokenize("<a><!NOTATHING></a>"))


class TestErrors:
    def test_malformed_start_tag(self):
        with pytest.raises(XMLSyntaxError, match="malformed start tag"):
            list(tokenize("<a <b/>"))

    def test_malformed_closing_tag(self):
        with pytest.raises(XMLSyntaxError, match="closing"):
            list(tokenize("<a></ a>"))

    def test_error_carries_line_and_column(self):
        try:
            list(tokenize("<a>\n<b>\n<//></a>"))
        except XMLSyntaxError as error:
            assert error.line == 3
            assert "line 3" in str(error)
        else:
            pytest.fail("expected XMLSyntaxError")

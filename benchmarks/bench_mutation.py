#!/usr/bin/env python
"""Incremental mutation maintenance vs full re-shred: the write path's gate.

For single-subtree mutations (append / replace / delete) on treebank and
XMark, times two ways of reaching the post-edit compressed instance +
statistics:

* **incremental** — :func:`repro.mutation.apply.apply_mutations`:
  splice the kept text, privatize the copy-on-write spine, graft or cut
  the touched subtree, re-minimize, patch the statistics — what
  ``Catalog.mutate`` runs between the journal append and the publish;
* **full re-shred** — shred the edited text from scratch and collect a
  fresh ``DocumentStats``, i.e. what registering the edited document
  would cost.

Every scenario is checked **byte-identical** first (minimized DAG sizes,
exact tree-node statistics, and the sorted result paths of a query mix on
both instances); a mismatch fails the run outright.  The headline is the
geometric-mean speedup across all (corpus, scenario) pairs, gated at
``--min-speedup`` (default 5.0: the whole point of the subsystem is that
a local edit must not pay for the whole document).

Usage::

    PYTHONPATH=src python benchmarks/bench_mutation.py [--quick|--smoke]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from corpus_cache import cached_xml
from repro.compress.stats import DocumentStats
from repro.corpora.registry import CORPORA
from repro.engine.evaluator import CompressedEvaluator
from repro.mutation.apply import apply_mutations
from repro.mutation.ops import as_mutations
from repro.mutation.textedit import splice
from repro.skeleton.loader import load

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

CORPUS_NAMES = ("treebank", "xmark")

#: Identity-gate query mixes (paths decoded and compared when small enough).
QUERY_MIX = {
    "treebank": ["//NP", "//VP/PP", "//S[NP]"],
    "xmark": ["//item", "//item/description", "//regions//item"],
}

_PATH_CHECK_CAP = 50_000


def _small_subtree_path(xml: str, max_elements: int = 30) -> list[int]:
    """The document-order-first non-root element with a small subtree.

    A "small mutation" edits a handful of nodes, not half the document —
    the path must address a subtree whose size is independent of the
    corpus scale, or the bench would time bulk rewrites instead of
    incremental maintenance.
    """
    import xml.etree.ElementTree as ET

    root = ET.fromstring(xml)
    stack = [(root, [])]
    while stack:
        element, path = stack.pop()
        if path and sum(1 for _ in element.iter()) <= max_elements:
            return path
        for ordinal, child in reversed(list(enumerate(element))):
            stack.append((child, path + [ordinal]))
    return [0] if len(root) else []


def scenarios(xml: str) -> list[tuple[str, dict]]:
    """Single-small-subtree edits with paths that exist in this document."""
    target = _small_subtree_path(xml)
    return [
        ("append_leaf", {"op": "append_child", "path": target,
                         "xml": "<inserted><leaf>new text</leaf></inserted>"}),
        ("replace_subtree", {"op": "replace_subtree", "path": target,
                             "xml": "<swapped><a/><b>x</b></swapped>"}),
        ("delete_subtree", {"op": "delete_subtree", "path": target or [0]}),
    ]


def corpus_xml(name: str, quick: bool) -> str:
    info = CORPORA[name]
    scale = max(1, int(info.default_scale * (0.1 if quick else 0.5)))
    return cached_xml(name, lambda: info.generate(scale, 0).xml, scale=scale, seed=0)


def best_time(run, repeats: int) -> float:
    best = math.inf
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best = elapsed
    return best


def assert_byte_identical(corpus, scenario, outcome, fresh, fresh_stats):
    if (outcome.instance.num_vertices != fresh.num_vertices
            or outcome.instance.num_edge_entries != fresh.num_edge_entries):
        raise AssertionError(
            f"{corpus} {scenario}: minimized DAG differs: "
            f"{outcome.instance.num_vertices}v/{outcome.instance.num_edge_entries}e "
            f"!= {fresh.num_vertices}v/{fresh.num_edge_entries}e"
        )
    if (outcome.stats.tree_nodes != fresh_stats.tree_nodes
            or outcome.stats.dag_vertices != fresh_stats.dag_vertices):
        raise AssertionError(f"{corpus} {scenario}: statistics differ")
    for name in outcome.instance.schema:
        fresh.ensure_set(name)
    for query in QUERY_MIX[corpus]:
        mine = CompressedEvaluator(outcome.instance).evaluate(query)
        oracle = CompressedEvaluator(fresh).evaluate(query)
        identity = (mine.dag_count(), mine.tree_count())
        expected = (oracle.dag_count(), oracle.tree_count())
        if identity != expected:
            raise AssertionError(
                f"{corpus} {scenario} {query}: {identity} != {expected}"
            )
        if mine.tree_count() <= _PATH_CHECK_CAP:
            if sorted(mine.tree_paths()) != sorted(oracle.tree_paths()):
                raise AssertionError(f"{corpus} {scenario} {query}: paths differ")


def measure(corpus: str, quick: bool) -> tuple[list[dict], int]:
    xml = corpus_xml(corpus, quick)
    base = load(xml, tags=None).instance
    # Registration already collected these (stats.json in the catalog);
    # the incremental path patches them instead of rescanning the text.
    base_stats = DocumentStats.from_instance(base, text=xml, complete_tags=True)
    repeats = 2 if quick else 3

    rows = []
    checked = 0
    for scenario, raw in scenarios(xml):
        mutations = as_mutations([raw])
        edited, _, _ = splice(xml, mutations[0])

        outcome = apply_mutations(base, xml, mutations, old_stats=base_stats)
        fresh = load(edited, tags=None).instance
        fresh_stats = DocumentStats.from_instance(fresh, text=edited, complete_tags=True)
        assert_byte_identical(corpus, scenario, outcome, fresh, fresh_stats)
        checked += 1

        incremental_s = best_time(
            lambda: apply_mutations(base, xml, mutations, old_stats=base_stats),
            repeats,
        )

        def full_reshred():
            instance = load(edited, tags=None).instance
            DocumentStats.from_instance(instance, text=edited, complete_tags=True)

        full_s = best_time(full_reshred, repeats)
        speedup = full_s / incremental_s if incremental_s > 0 else math.inf
        rows.append(
            {
                "corpus": corpus,
                "scenario": scenario,
                "op": raw["op"],
                "incremental_s": incremental_s,
                "full_reshred_s": full_s,
                "speedup": speedup,
                "skeleton_nodes": str(outcome.stats.tree_nodes),
                "dag_vertices": outcome.instance.num_vertices,
            }
        )
        print(
            f"  {corpus:10s} {scenario:16s}: full {full_s * 1e3:9.3f} ms vs "
            f"incremental {incremental_s * 1e3:8.3f} ms  ({speedup:6.1f}x)"
        )
    return rows, checked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", "--smoke", dest="quick", action="store_true",
                        help="small corpora (CI smoke)")
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail below this geomean speedup (default 5.0 full; 3.0 quick, "
        "where the 10x-smaller corpora inflate the fixed O(DAG) share)",
    )
    parser.add_argument(
        "-o", "--output",
        default=os.path.join(REPO_ROOT, "BENCH_mutation.json"),
        help="report path (default: BENCH_mutation.json at the repo root)",
    )
    args = parser.parse_args(argv)
    floor = args.min_speedup if args.min_speedup is not None else (3.0 if args.quick else 5.0)

    all_rows: list[dict] = []
    checked_total = 0
    for corpus in CORPUS_NAMES:
        print(f"{corpus} ({'quick' if args.quick else 'full'}):")
        rows, checked = measure(corpus, args.quick)
        all_rows.extend(rows)
        checked_total += checked

    geomean = math.exp(
        sum(math.log(row["speedup"]) for row in all_rows) / len(all_rows)
    )
    report = {
        "benchmark": "mutation",
        "quick": args.quick,
        "geomean_speedup": geomean,
        "min_speedup_required": floor,
        "byte_identical": True,  # a mismatch raises before we get here
        "checked_byte_identical_total": checked_total,
        "rows": all_rows,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"\ngeomean speedup {geomean:.1f}x over {len(all_rows)} scenarios "
          f"({checked_total} byte-identity checks) -> {args.output}")
    if geomean < floor:
        print(f"FAIL: geomean {geomean:.3f} below required {floor:.3f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

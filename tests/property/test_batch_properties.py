"""Property test: `query_batch` == sequential `Engine.query`, always.

For randomized query mixes (drawn from per-corpus pools that exercise
downward, sibling, predicate, and string-constraint paths) over the
binary-tree, relational, and xmark corpora, the batch engine's decoded
selections must be *identical* to running each query alone — regardless of
mix order, duplicates, or which query forces the shared instance to split.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.corpora import binary_tree, relational
from repro.corpora.registry import CORPORA
from repro.engine.pipeline import Engine

CORPUS_XML = {
    "binary-tree": binary_tree.generate_xml(depth=5).xml,
    "relational": relational.generate_xml(8, 4, distinct_texts=True).xml,
    "xmark": CORPORA["xmark"].generate(30, 0).xml,
}

QUERY_POOLS = {
    "binary-tree": [
        "/a/b/a",
        "//b[a]",
        "//a/following-sibling::b",
        "//b/preceding-sibling::a",
        "/descendant::a[b]",
        "//a/b",
    ],
    "relational": [
        "/table/row/col0",
        '//row[col1["r1c1"]]/col2',
        "//col1/preceding-sibling::col0",
        "//row[col0]",
        "//col2/following-sibling::col3",
    ],
    "xmark": [
        "//item",
        '//item[payment["Creditcard"]]',
        "//site/regions",
        "//item/description",
        "//regions//item",
    ],
}

_sequential_cache: dict[tuple[str, str], tuple[frozenset, int]] = {}


def sequential_selection(corpus: str, query_text: str) -> tuple[frozenset, int]:
    """Decoded selection of a solo run (cached: corpora are immutable)."""
    key = (corpus, query_text)
    if key not in _sequential_cache:
        result = Engine(CORPUS_XML[corpus]).query(query_text)
        _sequential_cache[key] = (frozenset(result.tree_paths()), result.tree_count())
    return _sequential_cache[key]


@settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_query_batch_matches_sequential(data):
    corpus = data.draw(st.sampled_from(sorted(QUERY_POOLS)))
    mix = data.draw(
        st.lists(st.sampled_from(QUERY_POOLS[corpus]), min_size=1, max_size=5)
    )
    batch = Engine(CORPUS_XML[corpus]).query_batch(mix)
    assert len(batch) == len(mix)
    for query_text, result in zip(mix, batch):
        expected_paths, expected_count = sequential_selection(corpus, query_text)
        assert result.tree_count() == expected_count, (corpus, query_text)
        assert frozenset(result.tree_paths()) == expected_paths, (corpus, query_text)

"""Compression to the minimal instance ``M(I)`` (Propositions 2.5 and 2.6).

The minimal equivalent instance is the quotient by the coarsest bisimilarity
relation; it is computed here in (amortised) linear time by bottom-up
hash-consing, exactly the algorithm the paper sketches after Proposition 2.6:
children are interned before their parents, so each redundancy check is a
single hash lookup.
"""

from __future__ import annotations

from repro.model.canonical import canonical_ids
from repro.model.instance import Instance, normalize_edges


def minimize(instance: Instance) -> Instance:
    """Return the minimal instance equivalent to ``instance``.

    The result has one vertex per canonical id reachable from the root, with
    run-length-normalized multiplicity edges (Figure 1(c)); vertex 0 is a
    leaf-most vertex and the root carries the highest topological position.
    Unreachable vertices of the input are ignored.
    """
    ids = canonical_ids(instance)
    result = Instance(instance.schema)
    row_masks = instance.row_masks()
    built: dict[int, int] = {}
    for vertex in instance.postorder():
        canonical = ids[vertex]
        if canonical in built:
            continue
        edges = normalize_edges(
            (built[ids[child]], count) for child, count in instance.children(vertex)
        )
        built[canonical] = result.new_vertex_masked(row_masks[vertex], edges)
    result.set_root(built[ids[instance.root]])
    return result


def is_compressed(instance: Instance) -> bool:
    """True if ``instance`` is already minimal (no two vertices shareable)."""
    ids = canonical_ids(instance)
    return len(set(ids.values())) == len(ids)

"""The succinct on-disk skeleton codec (RSKL) and its store integration.

Round-trips must be *byte-identical*, not merely bisimilar: the skeleton is
the pool's cold-load fast path, and a decoded instance that numbered its
vertices differently from the legacy chunk assembly would invalidate every
cached plan and result comparison.  So the tests compare full observable
state — schema order, vertex numbering, run-length children, plane bytes —
between codec output, chunk assembly, and pre-skeleton (format 1) catalogs.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.corpora import binary_tree, relational, xmark
from repro.errors import IntegrityError
from repro.model import planes
from repro.model.equivalence import equivalent
from repro.model.instance import Instance
from repro.skeleton.layout import (
    SkeletonUnsupported,
    decode_skeleton,
    encode_skeleton,
    read_skeleton,
    write_skeleton,
)
from repro.skeleton.loader import load_instance
from repro.storage.chunked import ChunkedStore

from tests.skeleton.test_loader import BIB_XML


def observable(instance: Instance) -> tuple:
    return (
        tuple(instance.schema),
        instance.num_vertices,
        instance.root,
        tuple(instance.children(v) for v in range(instance.num_vertices)),
        tuple(instance.row_masks()),
    )


CORPUS_INSTANCES = {
    "bib-strings": lambda: load_instance(BIB_XML, strings=["Codd"]),
    "binary-tree": lambda: binary_tree.compressed_instance(depth=9),
    "relational": lambda: relational.direct_instance(rows=25, cols=4),
    "xmark": lambda: load_instance(xmark.generate(scale=10).xml),
}


class TestCodecRoundTrip:
    @pytest.mark.parametrize("corpus", sorted(CORPUS_INSTANCES))
    def test_encode_decode_byte_identical(self, corpus):
        instance = CORPUS_INSTANCES[corpus]()
        decoded = decode_skeleton(encode_skeleton(instance))
        assert observable(decoded) == observable(instance)
        decoded.validate()

    def test_encoding_is_deterministic(self):
        instance = load_instance(BIB_XML)
        assert encode_skeleton(instance) == encode_skeleton(instance)

    def test_decode_under_either_kernel_tier(self):
        instance = load_instance(BIB_XML)
        payload = encode_skeleton(instance)
        previous = planes.set_numpy(False)
        try:
            stdlib_decoded = decode_skeleton(payload)
        finally:
            planes.set_numpy(previous)
        assert observable(stdlib_decoded) == observable(instance)

    def test_empty_instance_is_unsupported(self):
        with pytest.raises(SkeletonUnsupported):
            encode_skeleton(Instance(("a",)))

    def test_newline_in_name_is_unsupported(self):
        instance = Instance(("a\nb",))
        instance.set_root(instance.new_vertex(["a\nb"]))
        with pytest.raises(SkeletonUnsupported):
            encode_skeleton(instance)


class TestFileAndMmap:
    @pytest.fixture
    def skeleton_file(self, tmp_path):
        instance = load_instance(BIB_XML, strings=["Codd"])
        path = str(tmp_path / "bib.rskl")
        written = write_skeleton(path, instance)
        assert written == os.path.getsize(path)
        return path, instance

    def test_mmap_read_round_trips(self, skeleton_file):
        path, instance = skeleton_file
        loaded, info = read_skeleton(path)
        assert observable(loaded) == observable(instance)
        assert info.mmap is True
        assert info.bytes_mapped == os.path.getsize(path)
        assert info.as_dict()["format"] == "skeleton"

    def test_no_mmap_fallback_round_trips(self, skeleton_file, monkeypatch):
        path, instance = skeleton_file
        monkeypatch.setenv("REPRO_NO_MMAP", "1")
        loaded, info = read_skeleton(path)
        assert observable(loaded) == observable(instance)
        assert info.mmap is False
        assert info.bytes_mapped == os.path.getsize(path)

    def test_file_replaceable_after_read(self, skeleton_file):
        # The decoded arrays are private copies: no page of the mapping is
        # referenced after return, so the file can be replaced in place.
        path, instance = skeleton_file
        loaded, _ = read_skeleton(path)
        os.remove(path)
        assert observable(loaded) == observable(instance)

    def test_corrupt_payload_fails_checksum(self, skeleton_file):
        path, _ = skeleton_file
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(IntegrityError, match="failed its checksum"):
            read_skeleton(path)

    def test_truncated_file_is_integrity_error(self, skeleton_file):
        path, _ = skeleton_file
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])
        with pytest.raises(IntegrityError):
            read_skeleton(path)

    def test_bad_magic_is_integrity_error(self, skeleton_file):
        path, _ = skeleton_file
        blob = bytearray(open(path, "rb").read())
        blob[:4] = b"XXXX"
        open(path, "wb").write(bytes(blob))
        with pytest.raises(IntegrityError):
            read_skeleton(path)


class TestStoreIntegration:
    def test_skeleton_load_matches_chunk_assembly(self, tmp_path):
        instance = load_instance(BIB_XML, strings=["Codd"])
        store = ChunkedStore.save(instance, str(tmp_path / "store"))
        fast = store.assemble()
        assert store.last_load_info["format"] == "skeleton"
        assert store.last_load_info["bytes_mapped"] > 0
        # Force the legacy path by dropping the skeleton from a reopened
        # store's manifest view.
        os.remove(os.path.join(str(tmp_path / "store"), "skeleton.rskl"))
        legacy = ChunkedStore(str(tmp_path / "store")).assemble()
        assert observable(fast) == observable(legacy)

    def test_legacy_format1_catalog_loads_byte_identically(self, tmp_path):
        # A catalog written before the skeleton format existed: manifest
        # version 1, no skeleton key, chunks only.  It must keep loading,
        # producing the exact instance a format-2 skeleton load produces.
        instance = load_instance(BIB_XML, strings=["Codd"])
        directory = str(tmp_path / "store")
        store = ChunkedStore.save(instance, directory)
        modern = store.assemble()

        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        manifest["format"] = "repro-chunks-1"
        manifest.pop("skeleton", None)
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.remove(os.path.join(directory, "skeleton.rskl"))

        legacy_store = ChunkedStore(directory)
        legacy = legacy_store.assemble()
        assert legacy_store.last_load_info["format"] == "chunks"
        # Byte-identical to what the format-2 skeleton fast path serves
        # (chunk assembly renumbers vertices relative to the pre-shred
        # instance, so equivalence to the original is the weaker check).
        assert observable(legacy) == observable(modern)
        assert equivalent(legacy, instance)

    def test_partial_assembly_never_uses_the_skeleton(self, tmp_path):
        instance = load_instance(BIB_XML)
        store = ChunkedStore.save(instance, str(tmp_path / "store"))
        chunks = store.chunks_with_tags({"paper"})
        store.assemble(chunks)
        assert store.last_load_info["format"] == "chunks"

"""Tests for the algebra IR itself (rendering, analysis, validation)."""

import pytest

from repro.xpath.algebra import (
    AllNodes,
    AxisApply,
    ContextSet,
    Difference,
    Intersect,
    NamedSet,
    RootFilter,
    RootSet,
    Union,
    axis_applications,
    named_sets,
    uses_only_upward_axes,
)


class TestConstruction:
    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            AxisApply("up-left", RootSet())

    def test_expressions_hashable_and_equal(self):
        a = Intersect(AxisApply("child", RootSet()), NamedSet("x"))
        b = Intersect(AxisApply("child", RootSet()), NamedSet("x"))
        assert a == b
        assert hash(a) == hash(b)


class TestAnalysis:
    def test_named_sets_collects_all_leaves(self):
        expr = Union(
            Intersect(NamedSet("a"), NamedSet("b")),
            Difference(AllNodes(), NamedSet("c")),
        )
        assert named_sets(expr) == {"a", "b", "c"}

    def test_axis_applications_bottom_up_order(self):
        expr = AxisApply("parent", Intersect(AxisApply("child", RootSet()), NamedSet("x")))
        assert axis_applications(expr) == ["child", "parent"]

    def test_upward_only(self):
        assert uses_only_upward_axes(AxisApply("ancestor", NamedSet("x")))
        assert not uses_only_upward_axes(AxisApply("following", NamedSet("x")))
        assert uses_only_upward_axes(RootFilter(AxisApply("parent", AllNodes())))

    def test_size(self):
        expr = Union(RootSet(), ContextSet())
        assert expr.size() == 3


class TestRender:
    def test_render_indents_operands(self):
        expr = Intersect(AxisApply("descendant", RootSet()), NamedSet("a"))
        lines = expr.render().splitlines()
        assert lines[0] == "∩"
        assert lines[1].strip() == "descendant"
        assert lines[2].strip() == "{root}"
        assert lines[3].strip() == "L[a]"

    def test_root_filter_label(self):
        assert RootFilter(RootSet()).render().startswith("V|root")

    def test_difference_label(self):
        assert Difference(AllNodes(), NamedSet("x")).label() == "−"

"""Axis semantics on uncompressed tree instances.

This is the reference implementation of the twelve Core XPath axis
*functions* (forward-image semantics: ``n in child(S)`` iff n's parent is in
``S``), used both as the baseline query engine (the ``O(|Q| x |T|)``
algorithm of [Gottlob-Koch-Pichler 2002] the paper builds on) and as the
oracle the compressed-instance algorithms are tested against.

All operations are linear in the tree via a precomputed :class:`TreeIndex`.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.model.instance import Instance


class TreeIndex:
    """Parent/children/document-order indexes of a tree instance."""

    __slots__ = ("tree", "parent", "children", "order", "rank")

    def __init__(self, tree: Instance):
        if not tree.is_tree():
            raise EvaluationError("TreeIndex requires a tree instance")
        self.tree = tree
        n = tree.num_vertices
        self.parent: list[int] = [-1] * n
        self.children: list[list[int]] = [[] for _ in range(n)]
        for vertex in range(n):
            expanded = list(tree.expanded_children(vertex))
            self.children[vertex] = expanded
            for child in expanded:
                self.parent[child] = vertex
        self.order: list[int] = tree.preorder()
        self.rank: list[int] = [0] * n
        for position, vertex in enumerate(self.order):
            self.rank[vertex] = position

    @property
    def root(self) -> int:
        return self.tree.root

    @property
    def vertices(self) -> set[int]:
        return set(self.order)


def tree_axis(index: TreeIndex, axis: str, selection: set[int]) -> set[int]:
    """Apply an axis function to a node set on a tree."""
    try:
        handler = _HANDLERS[axis]
    except KeyError:
        raise EvaluationError(f"unknown axis {axis!r}") from None
    return handler(index, selection)


def _self(index: TreeIndex, s: set[int]) -> set[int]:
    return set(s)


def _child(index: TreeIndex, s: set[int]) -> set[int]:
    out: set[int] = set()
    for vertex in s:
        out.update(index.children[vertex])
    return out


def _parent(index: TreeIndex, s: set[int]) -> set[int]:
    return {index.parent[v] for v in s if index.parent[v] >= 0}


def _descendant(index: TreeIndex, s: set[int]) -> set[int]:
    # One preorder sweep with a counter of open S-ancestors.
    out: set[int] = set()
    stack: list[tuple[int, bool]] = [(index.root, False)]
    active = 0
    # Use explicit enter/exit events so `active` reflects open ancestors.
    events: list[tuple[str, int]] = [("enter", index.root)]
    while events:
        kind, vertex = events.pop()
        if kind == "exit":
            if vertex in s:
                active -= 1
            continue
        if active:
            out.add(vertex)
        events.append(("exit", vertex))
        if vertex in s:
            active += 1
        for child in reversed(index.children[vertex]):
            events.append(("enter", child))
    return out


def _ancestor(index: TreeIndex, s: set[int]) -> set[int]:
    out: set[int] = set()
    for vertex in s:
        current = index.parent[vertex]
        while current >= 0 and current not in out:
            out.add(current)
            current = index.parent[current]
    return out


def _descendant_or_self(index: TreeIndex, s: set[int]) -> set[int]:
    return _descendant(index, s) | s


def _ancestor_or_self(index: TreeIndex, s: set[int]) -> set[int]:
    return _ancestor(index, s) | s


def _following_sibling(index: TreeIndex, s: set[int]) -> set[int]:
    out: set[int] = set()
    for vertex in index.order:
        seen = False
        for child in index.children[vertex]:
            if seen:
                out.add(child)
            if child in s:
                seen = True
    return out


def _preceding_sibling(index: TreeIndex, s: set[int]) -> set[int]:
    out: set[int] = set()
    for vertex in index.order:
        seen = False
        for child in reversed(index.children[vertex]):
            if seen:
                out.add(child)
            if child in s:
                seen = True
    return out


def _following(index: TreeIndex, s: set[int]) -> set[int]:
    # The paper's composition (section 3.2):
    # following = descendant-or-self(following-sibling(ancestor-or-self(S))).
    return _descendant_or_self(
        index, _following_sibling(index, _ancestor_or_self(index, s))
    )


def _preceding(index: TreeIndex, s: set[int]) -> set[int]:
    return _descendant_or_self(
        index, _preceding_sibling(index, _ancestor_or_self(index, s))
    )


_HANDLERS = {
    "self": _self,
    "child": _child,
    "parent": _parent,
    "descendant": _descendant,
    "ancestor": _ancestor,
    "descendant-or-self": _descendant_or_self,
    "ancestor-or-self": _ancestor_or_self,
    "following-sibling": _following_sibling,
    "preceding-sibling": _preceding_sibling,
    "following": _following,
    "preceding": _preceding,
}

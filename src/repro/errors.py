"""Exception hierarchy for the repro library.

All errors raised by this library derive from :class:`ReproError`, so callers
can catch one type at an API boundary.  Subsystems raise the most specific
subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class InstanceError(ReproError):
    """An instance violates a structural invariant (cycle, missing root, ...)."""


class SchemaError(ReproError):
    """A schema (set of unary relation names) is used inconsistently."""


class IncompatibleInstancesError(ReproError):
    """Two instances disagree on their shared reduct (section 2.3)."""


class DecompressionLimitError(ReproError):
    """Materialising the tree version of an instance would exceed a limit."""


class XMLSyntaxError(ReproError):
    """The XML substrate found malformed input.

    Carries the byte/character offset and (line, column) of the offending
    position when available.
    """

    def __init__(self, message: str, offset: int = -1, line: int = -1, column: int = -1):
        location = ""
        if line >= 1:
            location = f" at line {line}, column {column}"
        elif offset >= 0:
            location = f" at offset {offset}"
        super().__init__(message + location)
        self.offset = offset
        self.line = line
        self.column = column


class XPathSyntaxError(ReproError):
    """The Core XPath parser rejected a query string."""

    def __init__(self, message: str, position: int = -1):
        location = f" at position {position}" if position >= 0 else ""
        super().__init__(message + location)
        self.position = position


class XPathCompileError(ReproError):
    """A parsed query cannot be compiled to the node-set algebra."""


class EvaluationError(ReproError):
    """The engine was asked to evaluate an ill-formed algebra expression."""


class CorpusError(ReproError):
    """A corpus generator was configured with invalid parameters."""


class CatalogError(ReproError):
    """A document catalog operation failed (unknown document, bad name, ...)."""


class IntegrityError(CatalogError):
    """Stored data failed its integrity check (checksum mismatch, torn write).

    Raised when a chunk file's bytes no longer hash to the checksum recorded
    in its manifest at shred time.  The catalog reacts by *quarantining* the
    document (queries then fail fast with :class:`QuarantinedError`) rather
    than silently serving wrong answers from corrupt chunks.
    """


class QuarantinedError(CatalogError):
    """The document is quarantined after failing an integrity check.

    The registry entry still exists (metadata was readable) but the shredded
    chunks are known-corrupt, so serving is refused until the document is
    reloaded — ``repro catalog verify --repair`` or
    :meth:`repro.server.catalog.Catalog.reload` re-shreds it from the kept
    original text.  Mapped to HTTP 503: transient, operator action restores
    service, never a wrong answer.
    """


class MutationError(ReproError):
    """A document mutation request is invalid or cannot be applied.

    Raised for malformed mutation specs (unknown op, negative path steps, a
    missing or superfluous XML fragment), paths that address no element in
    the target document, and ops that would break the document shape
    (deleting the root element).  Mapped to HTTP 400: the request — not the
    catalog — is at fault, and nothing was changed.
    """


class DeadlineExceededError(ReproError):
    """The request's end-to-end deadline expired before a result was ready.

    Carried from the HTTP header / CLI flag through coalescing into batch
    evaluation and across the worker wire; wherever the budget runs out, the
    caller gets this error (HTTP 504) instead of a stale result or a request
    silently occupying a batch slot nobody is waiting on.
    """


class OverloadedError(ReproError):
    """The service shed this request at admission (queue full or rate limit).

    Mapped to HTTP 429 with a ``Retry-After`` header; ``retry_after`` is the
    suggested backoff in seconds.  Shedding at the door keeps the latency of
    *accepted* requests bounded instead of letting every request queue into
    collapse.
    """

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class ClusterError(ReproError):
    """A worker-fleet operation failed (spawn, dispatch, shutdown, ...)."""


class WorkerUnavailableError(ClusterError):
    """The shard's worker died with the request in flight.

    The request was routed to a worker process that crashed (or was killed)
    before producing a response.  The dispatcher respawns the worker, so the
    condition is transient — the HTTP layer maps this to 503 so clients know
    to retry, never to a wrong answer or a hang.
    """

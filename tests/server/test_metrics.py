"""Unit tests for the metrics layer: instruments, exposition, parser, facade.

The exposition format is wire protocol (Prometheus scrapers consume it),
so the renderer is pinned through the same strict parser the overload
benchmark uses as its validity gate — a renderer bug and a parser bug
would have to cancel exactly to slip through.
"""

import json
import math
import threading
import urllib.request

import pytest

from repro.server.catalog import Catalog
from repro.server.http import create_server, wait_ready
from repro.server.metrics import (
    CONTENT_TYPE,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RawFamily,
    ServerMetrics,
    check_histogram_invariants,
    format_labels,
    format_value,
    histogram_series,
    parse_prometheus_text,
    quantile_bounds,
    route_label,
)

from tests.skeleton.test_loader import BIB_XML


class TestFormatting:
    def test_integers_render_without_decimal_point(self):
        assert format_value(3.0) == "3"
        assert format_value(0.0) == "0"

    def test_floats_round_trip(self):
        assert float(format_value(0.0025)) == 0.0025

    def test_infinities_and_nan(self):
        assert format_value(math.inf) == "+Inf"
        assert format_value(-math.inf) == "-Inf"
        assert format_value(math.nan) == "NaN"

    def test_label_escaping(self):
        rendered = format_labels({"path": 'a"b\\c\nd'})
        assert rendered == '{path="a\\"b\\\\c\\nd"}'
        # The strict parser undoes the escaping exactly.
        families = parse_prometheus_text(
            "# TYPE x counter\nx" + rendered + " 1\n"
        )
        assert families["x"]["samples"][0][1] == {"path": 'a"b\\c\nd'}


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        counter = Counter("c_total", "h", ("route",))
        counter.inc(route="/query")
        counter.inc(2, route="/query")
        counter.inc(route="/stats")
        assert counter.value(route="/query") == 3
        assert counter.value(route="/stats") == 1

    def test_counter_rejects_negative_increments(self):
        counter = Counter("c_total", "h")
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_counter_rejects_wrong_labels(self):
        counter = Counter("c_total", "h", ("route",))
        with pytest.raises(ValueError, match="expected labels"):
            counter.inc(method="GET")

    def test_gauge_set_inc_dec(self):
        gauge = Gauge("g", "h")
        gauge.set(5)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value() == 3

    def test_histogram_observe_and_snapshot(self):
        histogram = Histogram("h_seconds", "h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["le"] == [0.1, 1.0]
        # Trailing slot is the overflow (+Inf) cumulative == count.
        assert snapshot["cumulative"] == [1, 3, 4]
        assert snapshot["count"] == 4
        assert snapshot["sum"] == pytest.approx(6.05)

    def test_histogram_boundary_lands_in_le_bucket(self):
        # Prometheus buckets are upper-inclusive: observe(0.1) counts in le=0.1.
        histogram = Histogram("h_seconds", "h", buckets=(0.1, 1.0))
        histogram.observe(0.1)
        assert histogram.snapshot()["cumulative"] == [1, 1, 1]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", "h", buckets=(1.0, 0.5))

    def test_registry_returns_same_family_for_same_name(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "h")
        second = registry.counter("a_total", "h")
        assert first is second

    def test_registry_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("a_total", "h")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("a_total", "h")

    def test_concurrent_increments_do_not_lose_updates(self):
        counter = Counter("c_total", "h")

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value() == 8000


class TestExpositionRoundTrip:
    def test_render_parses_strictly(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total", "Things.", ("kind",))
        counter.inc(kind="a")
        counter.inc(3, kind="b")
        gauge = registry.gauge("repro_level", "Level.")
        gauge.set(0.5)
        histogram = registry.histogram("repro_lat_seconds", "Latency.", buckets=(0.01, 0.1))
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(7)
        families = parse_prometheus_text(registry.render())
        assert families["repro_things_total"]["type"] == "counter"
        values = {tuple(sorted(labels.items())): value
                  for _, labels, value in families["repro_things_total"]["samples"]}
        assert values == {(("kind", "a"),): 1, (("kind", "b"),): 3}
        buckets, total_sum, count = histogram_series(
            families["repro_lat_seconds"]["samples"], "repro_lat_seconds"
        )
        assert buckets == [(0.01, 1), (0.1, 2), (math.inf, 3)]
        assert count == 3 and total_sum == pytest.approx(7.055)

    def test_collector_families_render_after_instruments(self):
        registry = MetricsRegistry()
        registry.add_collector(
            lambda: [RawFamily("repro_extra", "gauge", "x", [("repro_extra", {}, 2.0)])]
        )
        families = parse_prometheus_text(registry.render())
        assert families["repro_extra"]["samples"] == [("repro_extra", {}, 2.0)]

    def test_collector_cannot_shadow_an_instrument(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_live_total", "h")
        counter.inc(5)
        registry.add_collector(
            lambda: [RawFamily("repro_live_total", "counter", "fake",
                               [("repro_live_total", {}, 0.0)])]
        )
        families = parse_prometheus_text(registry.render())
        assert families["repro_live_total"]["samples"][0][2] == 5


class TestStrictParser:
    def test_sample_without_type_is_rejected(self):
        with pytest.raises(ValueError, match="no preceding # TYPE"):
            parse_prometheus_text("orphan 1\n")

    def test_unknown_type_is_rejected(self):
        with pytest.raises(ValueError, match="unknown metric type"):
            parse_prometheus_text("# TYPE x thing\nx 1\n")

    def test_non_numeric_value_is_rejected(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("# TYPE x counter\nx banana\n")

    def test_unquoted_label_value_is_rejected(self):
        with pytest.raises(ValueError, match="not quoted"):
            parse_prometheus_text('# TYPE x counter\nx{a=b} 1\n')

    def test_non_monotone_histogram_is_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\nh_count 3\n"
        )
        with pytest.raises(ValueError, match="below previous cumulative"):
            parse_prometheus_text(text)

    def test_histogram_missing_inf_bucket_is_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 1\n'
            "h_sum 1\nh_count 1\n"
        )
        with pytest.raises(ValueError, match="missing the \\+Inf"):
            parse_prometheus_text(text)

    def test_inf_bucket_count_mismatch_is_rejected(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\nh_count 3\n"
        )
        with pytest.raises(ValueError, match="!= _count"):
            parse_prometheus_text(text)

    def test_check_invariants_is_exported_for_property_tests(self):
        check_histogram_invariants(
            "h", [("h_bucket", {"le": "+Inf"}, 1), ("h_sum", {}, 0.5), ("h_count", {}, 1)]
        )


class TestQuantileBounds:
    def test_quantile_falls_in_the_right_bucket(self):
        buckets = [(0.01, 10), (0.1, 90), (1.0, 100), (math.inf, 100)]
        assert quantile_bounds(buckets, 0.5) == (0.01, 0.1)
        assert quantile_bounds(buckets, 0.99) == (0.1, 1.0)

    def test_empty_histogram_gives_vacuous_bounds(self):
        assert quantile_bounds([], 0.99) == (0.0, math.inf)
        assert quantile_bounds([(math.inf, 0)], 0.99) == (0.0, math.inf)


class TestRouteLabels:
    def test_known_routes_pass_through(self):
        assert route_label("/query") == "/query"
        assert route_label("/stats") == "/stats"

    def test_query_strings_are_stripped(self):
        assert route_label("/explain?document=bib&query=%2F%2Fa") == "/explain"

    def test_catalog_names_collapse_to_one_label(self):
        # Unbounded document names must not mint unbounded label sets.
        assert route_label("/catalog/bib") == "/catalog/{name}"
        assert route_label("/catalog/other-doc") == "/catalog/{name}"

    def test_unknown_paths_collapse_to_other(self):
        assert route_label("/nope") == "other"


@pytest.fixture(params=["threaded", "async"])
def server(request, tmp_path):
    Catalog(str(tmp_path / "cat")).add("bib", BIB_XML)
    server = create_server(str(tmp_path / "cat"), port=0, frontend=request.param)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    assert wait_ready(host, port, timeout=30)
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


def http_get(server, path):
    host, port = server.server_address[:2]
    with urllib.request.urlopen(f"http://{host}:{port}{path}", timeout=30) as response:
        return response.status, dict(response.headers), response.read()


def http_post(server, path, payload):
    host, port = server.server_address[:2]
    request = urllib.request.Request(
        f"http://{host}:{port}{path}", data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestMetricsEndpoint:
    """/metrics on a live server: valid exposition, /stats reconciliation."""

    def test_content_type_and_validity(self, server):
        status, headers, body = http_get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == CONTENT_TYPE
        families = parse_prometheus_text(body.decode())
        assert "repro_http_requests_total" in families
        assert families["repro_server_info"]["type"] == "gauge"

    def test_request_counts_reconcile_with_stats(self, server):
        for _ in range(4):
            http_post(server, "/query", {"document": "bib", "query": "//author"})
        _, _, body = http_get(server, "/metrics")
        families = parse_prometheus_text(body.decode())
        # The collector reads the same stats_dict /stats serves, so the
        # service-level request counter must agree exactly.
        _, stats_body = http_get(server, "/stats")[0], http_get(server, "/stats")[2]
        stats = json.loads(stats_body)
        metric_requests = sum(
            value for _, _, value in families["repro_requests_total"]["samples"]
        )
        assert metric_requests == stats["service"]["requests"]
        # And the front-end's own per-route counter saw every /query POST.
        query_posts = sum(
            value
            for _, labels, value in families["repro_http_requests_total"]["samples"]
            if labels.get("route") == "/query" and labels.get("method") == "POST"
        )
        assert query_posts == 4

    def test_latency_histogram_counts_every_request(self, server):
        for _ in range(3):
            http_get(server, "/healthz")
        _, _, body = http_get(server, "/metrics")
        families = parse_prometheus_text(body.decode())
        buckets, _, count = histogram_series(
            families["repro_http_request_seconds"]["samples"],
            "repro_http_request_seconds",
            route="/healthz",
        )
        assert count >= 3
        assert buckets[-1][1] == count

    def test_batch_size_histogram_is_present_and_valid(self, server):
        http_post(server, "/query", {"document": "bib", "query": "//author"})
        _, _, body = http_get(server, "/metrics")
        families = parse_prometheus_text(body.decode())
        buckets, _, count = histogram_series(
            families["repro_batch_size"]["samples"], "repro_batch_size"
        )
        assert count >= 1
        assert buckets[0][0] == 1.0  # singleton batches land in le=1

    def test_admission_families_present(self, server):
        http_post(server, "/query", {"document": "bib", "query": "//author"})
        _, _, body = http_get(server, "/metrics")
        families = parse_prometheus_text(body.decode())
        admitted = sum(
            value for _, _, value in families["repro_admission_admitted_total"]["samples"]
        )
        assert admitted >= 1
        shed_reasons = {
            labels["reason"]
            for _, labels, _ in families["repro_admission_shed_total"]["samples"]
        }
        assert shed_reasons == {"queue_full", "rate_limited"}

    def test_frontend_flavor_label(self, server):
        _, _, body = http_get(server, "/metrics")
        families = parse_prometheus_text(body.decode())
        (sample,) = families["repro_server_info"]["samples"]
        assert sample[1]["frontend"] in ("threaded", "async")
        assert sample[2] == 1


class TestServerMetricsFacade:
    def test_scrape_survives_a_broken_service(self):
        def explode():
            raise RuntimeError("stats are down")

        metrics = ServerMetrics(explode, frontend="async")
        families = parse_prometheus_text(metrics.render())
        assert "repro_http_requests_total" in families  # instruments still render

    def test_observe_request_updates_both_families(self):
        metrics = ServerMetrics(lambda: None, frontend="threaded")
        metrics.observe_request("/query", "POST", 200, 0.003)
        families = parse_prometheus_text(metrics.render())
        (sample,) = families["repro_http_requests_total"]["samples"]
        assert sample[1] == {"route": "/query", "method": "POST", "status": "200"}
        buckets, total_sum, count = histogram_series(
            families["repro_http_request_seconds"]["samples"],
            "repro_http_request_seconds",
        )
        assert count == 1 and 0 < total_sum < LATENCY_BUCKETS[-1]

"""Exploring what makes XML compressible (Figure 6 in miniature).

Compresses a sample of every synthetic corpus in both of the paper's
settings (structure only vs all tags) plus the two analytic extremes — the
XML-ised relational table and the complete binary tree — and prints the
resulting ratios side by side with the paper's measurements.  Each corpus
is opened once through the :mod:`repro.api` façade;
:meth:`repro.api.Database.compression_stats` runs the two Figure 6 load
settings over the same database object.

Run:  python examples/compression_explorer.py
"""

import repro
from repro.bench.tables import format_table
from repro.corpora import CORPORA, generate
from repro.corpora.binary_tree import compressed_instance
from repro.corpora.relational import direct_instance
from repro.model.paths import tree_size


def main() -> None:
    rows = []
    for name, info in CORPORA.items():
        with repro.open(generate(name, max(1, info.default_scale // 4)).xml) as db:
            bare = db.compression_stats(tags=())     # Figure 6 "-": structure only
            full = db.compression_stats(tags=None)   # Figure 6 "+": every tag
        rows.append(
            [
                name,
                f"{bare.tree_vertices:,}",
                f"{100 * bare.edge_ratio:.1f}%",
                f"{100 * info.paper_ratio_minus:.1f}%",
                f"{100 * full.edge_ratio:.1f}%",
                f"{100 * info.paper_ratio_plus:.1f}%",
            ]
        )
    print(
        format_table(
            ["corpus", "|V^T|", "ratio -", "paper -", "ratio +", "paper +"],
            rows,
            title="Compression across corpora (measured vs paper; '-' = tags ignored)",
        )
    )

    print("\nThe analytic extremes:")
    table = direct_instance(1_000_000, 8)
    print(
        f"  relational 1M x 8 table : tree {tree_size(table):,} nodes -> "
        f"{table.num_vertices} vertices, {table.num_edge_entries} edges  (O(C))"
    )
    tree = compressed_instance(200)
    print(
        f"  complete binary tree 200: tree 2^201-1 nodes -> "
        f"{tree.num_vertices} vertices, {tree.num_edge_entries} edges  (O(depth))"
    )
    print("\nRegular data compresses towards its schema; TreeBank-like parse")
    print("trees stay near the tree size — exactly Figure 6's spread.")


if __name__ == "__main__":
    main()

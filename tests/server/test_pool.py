"""Tests for the LRU instance pool and its concurrency guarantees."""

import threading

import pytest

from repro.model.instance import tree_instance
from repro.server.pool import InstancePool


def make_instance():
    return tree_instance(("r", [("a", []), ("b", [])]))


class TestLRU:
    def test_loads_once_then_hits(self):
        pool = InstancePool(capacity=4)
        loads = []

        def loader():
            loads.append(1)
            return make_instance()

        first = pool.get_or_load("k", loader)
        second = pool.get_or_load("k", loader)
        assert first is second
        assert len(loads) == 1
        assert pool.stats()["hits"] == 1
        assert pool.stats()["misses"] == 1

    def test_capacity_evicts_least_recently_used(self):
        pool = InstancePool(capacity=2)
        for key in ("a", "b", "c"):
            pool.get_or_load(key, make_instance)
        assert pool.keys() == ["b", "c"]
        assert pool.stats()["evictions"] == 1

    def test_hit_refreshes_recency(self):
        pool = InstancePool(capacity=2)
        pool.get_or_load("a", make_instance)
        pool.get_or_load("b", make_instance)
        pool.get_or_load("a", make_instance)  # refresh: b is now the oldest
        pool.get_or_load("c", make_instance)
        assert pool.keys() == ["a", "c"]

    def test_capacity_one_never_evicts_requested_key(self):
        pool = InstancePool(capacity=1)
        entry = pool.get_or_load("only", make_instance)
        assert entry.instance is not None
        assert pool.keys() == ["only"]

    def test_evict_predicate(self):
        pool = InstancePool(capacity=8)
        pool.get_or_load(("doc1", ()), make_instance)
        pool.get_or_load(("doc1", ("x",)), make_instance)
        pool.get_or_load(("doc2", ()), make_instance)
        assert pool.evict(lambda key: key[0] == "doc1") == 2
        assert pool.keys() == [("doc2", ())]

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            InstancePool(capacity=0)


class TestConcurrency:
    def test_concurrent_requesters_load_once(self):
        pool = InstancePool(capacity=4)
        started = threading.Barrier(8)
        loads = []
        load_gate = threading.Event()

        def loader():
            loads.append(threading.get_ident())
            load_gate.wait(timeout=5)  # keep the load slow: real contention
            return make_instance()

        entries = []

        def worker():
            started.wait(timeout=5)
            entries.append(pool.get_or_load("hot", loader))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Let every worker reach the pool, then release the single load.
        load_gate.set()
        for thread in threads:
            thread.join(timeout=10)
        assert len(loads) == 1
        assert len({id(entry) for entry in entries}) == 1
        assert all(entry.instance is not None for entry in entries)

    def test_independent_keys_do_not_serialise(self):
        """A slow load of one key must not block another key's load."""
        pool = InstancePool(capacity=4)
        slow_started = threading.Event()
        slow_gate = threading.Event()
        order = []

        def slow_loader():
            slow_started.set()
            slow_gate.wait(timeout=5)
            order.append("slow")
            return make_instance()

        def fast_loader():
            order.append("fast")
            return make_instance()

        slow_thread = threading.Thread(
            target=lambda: pool.get_or_load("slow", slow_loader)
        )
        slow_thread.start()
        assert slow_started.wait(timeout=5)
        pool.get_or_load("fast", fast_loader)  # completes while slow is stuck
        slow_gate.set()
        slow_thread.join(timeout=10)
        assert order == ["fast", "slow"]

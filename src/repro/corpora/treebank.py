"""Penn-TreeBank-like parse tree corpus — the paper's compression outlier.

TreeBank skeletons are deep, irregular recursive parse trees; the paper
measures only 34.9% / 53.2% compression ("does not compress substantially
better than randomly generated trees of similar shape").  We mimic that with
a small probabilistic grammar over the usual phrase labels, deliberately
injecting randomness in production choice and arity so that few subtrees
coincide.

Planted material (Appendix A, TreeBank queries): the exact chain
``FILE/EMPTY/S/VP/S/VP/NP`` (Q1/Q2); ``NNS`` leaves containing "children"
(Q3); a ``VP`` whose text contains "granting" with an ``NP`` descendant
containing "access" (Q4); and a ``VP/NP/VP/NP`` chain followed (in document
order) by an ``NP/VP/NP/PP`` chain (Q5).
"""

from __future__ import annotations

import random

from repro.corpora.base import GeneratedCorpus, WORDS, XMLBuilder, check_scale, rng_for

_TERMINALS = ("NN", "NNS", "VB", "VBD", "DT", "JJ", "IN", "RB", "PRP", "CC")
_TERMINAL_WEIGHTS = (30, 12, 12, 8, 16, 8, 8, 3, 2, 1)

# A small probabilistic grammar.  Lowercase-free symbols that appear as keys
# are nonterminals; everything else is a POS leaf.  Real parse trees are
# positionally regular (DT JJ NN, IN NP, ...) but combinatorially diverse —
# exactly the mix that puts the labeled compression ratio in the paper's
# ~35%/~53% band instead of "random tree" territory.
_GRAMMAR: dict[str, list[tuple[tuple[str, ...], int]]] = {
    "S": [(("NP", "VP"), 6), (("S", "CC", "S"), 1), (("VP",), 1)],
    "NP": [
        (("DT", "NN"), 5),
        (("DT", "JJ", "NN"), 3),
        (("NP", "PP"), 3),
        (("DT", "NNS"), 2),
        (("PRP",), 1),
        (("NP", "SBAR"), 1),
    ],
    "VP": [
        (("VB", "NP"), 5),
        (("VBD", "NP"), 2),
        (("VP", "PP"), 2),
        (("VB", "S"), 1),
        (("VB",), 1),
        (("VB", "ADJP"), 1),
    ],
    "PP": [(("IN", "NP"), 1)],
    "SBAR": [(("IN", "S"), 1)],
    "ADJP": [(("RB", "JJ"), 1), (("JJ",), 1)],
}


def _leaf(builder: XMLBuilder, rng: random.Random, tag: str | None = None, word: str | None = None) -> None:
    if tag is None:
        tag = rng.choices(_TERMINALS, weights=_TERMINAL_WEIGHTS)[0]
    builder.leaf(tag, word or rng.choice(WORDS))


def _phrase(builder: XMLBuilder, rng: random.Random, depth: int, symbol: str = "NP") -> None:
    """Expand one grammar symbol; depth-bounded recursion."""
    productions = _GRAMMAR.get(symbol)
    if productions is None or depth <= 0:
        _leaf(builder, rng, symbol if productions is None else None)
        return
    bodies = [body for body, _ in productions]
    weights = [weight for _, weight in productions]
    body = list(rng.choices(bodies, weights=weights)[0])
    # Adjunct noise: real sentences attach adverbials, appositions and
    # punctuation-ish extras in essentially arbitrary positions; this is
    # what keeps parse trees from compressing like database records.
    while rng.random() < 0.35:
        extra = rng.choices(
            ("RB", "PP", "ADJP", "CC", "NP"), weights=(4, 3, 2, 2, 1)
        )[0]
        body.insert(rng.randint(0, len(body)), extra)
    builder.open(symbol)
    for child in body:
        _phrase(builder, rng, depth - 1, child)
    builder.close()


def _sentence(builder: XMLBuilder, rng: random.Random) -> None:
    builder.open("S")
    _phrase(builder, rng, rng.randint(2, 7), "NP")
    _phrase(builder, rng, rng.randint(2, 7), "VP")
    builder.close()


def _planted_q1_chain(builder: XMLBuilder, rng: random.Random) -> None:
    # S/VP/S/VP/NP inside EMPTY (the FILE/EMPTY prefix is emitted around it).
    builder.open("S").open("VP").open("S").open("VP").open("NP")
    _leaf(builder, rng, "NN")
    builder.close().close().close().close().close()


def _planted_q3(builder: XMLBuilder, rng: random.Random) -> None:
    builder.open("S").open("S").open("NP")
    builder.leaf("NNS", "the children here")
    builder.close().close().close()


def _planted_q4(builder: XMLBuilder, rng: random.Random) -> None:
    builder.open("VP")
    builder.leaf("VB", "granting")
    builder.open("NP")
    builder.leaf("NN", "access")
    builder.close()
    builder.close()


def _planted_q5(builder: XMLBuilder, rng: random.Random) -> None:
    builder.open("S")
    # First the VP/NP/VP/NP chain...
    builder.open("VP").open("NP").open("VP").open("NP")
    _leaf(builder, rng, "NN")
    builder.close().close().close().close()
    # ... then, following it in document order, an NP/VP/NP/PP chain.
    builder.open("NP").open("VP").open("NP").open("PP")
    _leaf(builder, rng, "IN")
    builder.close().close().close().close()
    builder.close()


def generate(scale: int = 700, seed: int = 0) -> GeneratedCorpus:
    """Generate ``scale`` sentences across a handful of FILE sections."""
    check_scale(scale)
    rng = rng_for("treebank", scale, seed)
    builder = XMLBuilder()
    builder.open("alltreebank").newline()
    files = max(1, scale // 250)
    per_file = max(1, scale // files)
    emitted = 0
    for file_index in range(files):
        builder.open("FILE")
        builder.open("EMPTY")
        if file_index == 0:
            _planted_q1_chain(builder, rng)
            _planted_q3(builder, rng)
            _planted_q4(builder, rng)
            _planted_q5(builder, rng)
        while emitted < min(scale, (file_index + 1) * per_file):
            _sentence(builder, rng)
            emitted += 1
            if emitted % 25 == 0:
                builder.newline()
        builder.close().close().newline()
    builder.close()
    return GeneratedCorpus(name="treebank", xml=builder.result(), scale=scale, seed=seed)

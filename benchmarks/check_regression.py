#!/usr/bin/env python
"""Compare a fresh benchmark JSON against a committed baseline.

The scheduled CI job re-runs every benchmark un-quick and fails the build
when a headline metric regresses more than the tolerance (default 20%)
against the ``BENCH_*.json`` files committed at the repository root::

    python benchmarks/check_regression.py BASELINE.json FRESH.json [--tolerance 0.2]

The headline metric is chosen by the ``benchmark`` field so one checker
serves every report shape:

* ``query_throughput`` — ``geomean_speedup`` (new engine vs seed engine);
* ``batch_workload``   — ``best_speedup`` (batched vs sequential mix);
* ``server``           — ``geomean_speedup`` (served vs one-shot);
* ``cluster``          — ``best_scaling`` (fleet vs single-process server);
* ``overload``         — ``accepted_rps`` (admitted throughput while
  shedding the excess of a 2x-capacity offered load with honest 429s);
* ``optimizer``        — ``geomean_speedup`` (optimized vs unoptimized
  plans, byte-identical results required);
* ``mutation``         — ``geomean_speedup`` (incremental maintenance vs
  full re-shred, byte-identical results required).

PR-level smoke mode validates freshly produced smoke artifacts without a
baseline (smoke corpora are too small for absolute comparison against the
committed full-run numbers)::

    python benchmarks/check_regression.py --smoke FRESH.json [FRESH2.json ...]

Each report must name a known benchmark, carry a positive headline
metric, and — when the report embeds its own requirement
(``min_*_required``) — meet it; a cluster report must additionally have
passed its byte-identical correctness gate.  This runs on every PR, so a
benchmark that silently stopped producing its headline (or started
failing its own floor) is caught at review time, not at the nightly cron.

Exit codes follow the CLI convention: 0 pass, 1 regression, 2 bad inputs.
"""

from __future__ import annotations

import argparse
import json
import sys

#: benchmark name -> headline metric key in its JSON report.
HEADLINE = {
    "query_throughput": "geomean_speedup",
    "batch_workload": "best_speedup",
    "server": "geomean_speedup",
    "cluster": "best_scaling",
    "overload": "accepted_rps",
    "optimizer": "geomean_speedup",
    "mutation": "geomean_speedup",
}

#: benchmark name -> (measured key, embedded requirement key) pairs checked
#: in smoke mode when the requirement key is present and its gate applies.
SMOKE_FLOORS = {
    "query_throughput": [
        ("geomean_speedup", "min_speedup_required"),
        ("cold_load_speedup", "min_cold_load_speedup_required"),
    ],
    "batch_workload": [("best_speedup", "min_speedup_required")],
    "server": [("worst_speedup", "min_speedup_required")],
    "cluster": [("scaling_at_4_workers", "min_scaling_required")],
    "overload": [("accepted_rps", "min_accepted_rps_required")],
    "optimizer": [("geomean_speedup", "min_speedup_required")],
    "mutation": [("geomean_speedup", "min_speedup_required")],
}

#: benchmark name -> additional metric keys compared against the baseline
#: (same tolerance as the headline) when both reports carry them.
SECONDARY = {
    "query_throughput": ["cold_load_speedup"],
}


def check_smoke(path: str) -> list[str]:
    """Problems (empty = healthy) with one freshly produced smoke report."""
    with open(path, "r", encoding="utf-8") as handle:
        report = json.load(handle)
    problems = []
    try:
        key, value = headline_value(report, path)
    except ValueError as error:
        return [str(error)]
    print(f"{report['benchmark']}: {key} {value:.3f} (smoke)")
    enforced = report.get("scaling_gate_enforced", True)
    for measured_key, floor_key in SMOKE_FLOORS.get(report["benchmark"], []):
        floor = report.get(floor_key)
        measured = report.get(measured_key)
        if floor is not None and measured is not None and enforced and measured < floor:
            problems.append(
                f"{path}: {measured_key} {measured:.3f} below the report's own "
                f"floor {floor_key}={floor:.3f}"
            )
    if report["benchmark"] == "cluster" and not report.get("checked_byte_identical_total"):
        problems.append(f"{path}: cluster report ran no byte-identical checks")
    if report["benchmark"] in ("optimizer", "mutation"):
        kind = report["benchmark"]
        if not report.get("checked_byte_identical_total"):
            problems.append(f"{path}: {kind} report ran no byte-identical checks")
        if not report.get("byte_identical"):
            problems.append(f"{path}: {kind} run was not byte-identical")
    if report["benchmark"] == "overload":
        if not report.get("passed"):
            problems.append(f"{path}: the overload run failed its own gates")
        if not report.get("honest_429s"):
            problems.append(f"{path}: overload run saw dishonest non-429 sheds")
        if not report.get("p99_bounded"):
            problems.append(f"{path}: accepted p99 was not bounded under overload")
        if report.get("metrics_reconciled") is False:
            problems.append(
                f"{path}: /metrics scrape did not reconcile with the bench's "
                "own accepted/shed counts"
            )
    if report["benchmark"] == "server" and report.get("frontend") == "async":
        checked = sum(
            row.get("frontend_responses_checked_identical", 0)
            for row in report.get("rows", [])
        )
        if not checked:
            problems.append(
                f"{path}: async server report ran no threaded-vs-async "
                "byte-identity checks"
            )
    return problems


def append_summary(path: str | None, lines: list[str]) -> None:
    """Append markdown lines (``--summary`` / ``$GITHUB_STEP_SUMMARY``)."""
    if not path or not lines:
        return
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def headline_value(report: dict, path: str) -> tuple[str, float]:
    name = report.get("benchmark")
    key = HEADLINE.get(name)
    if key is None:
        raise ValueError(f"{path}: unknown benchmark {name!r} (known: {sorted(HEADLINE)})")
    value = report.get(key)
    if not isinstance(value, (int, float)) or value <= 0:
        raise ValueError(f"{path}: missing or non-positive metric {key!r}: {value!r}")
    return key, float(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "reports", nargs="+",
        help="BASELINE.json CANDIDATE.json — or, with --smoke, one or more "
        "freshly produced smoke reports",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="validate fresh smoke artifacts against their own embedded "
        "floors instead of a committed baseline (PR-level check)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.2,
        help="allowed fractional regression (0.2 = fail below 80%% of baseline)",
    )
    parser.add_argument(
        "--summary", default=None, metavar="PATH",
        help="append a markdown diff table to PATH (point it at "
        "$GITHUB_STEP_SUMMARY for a readable per-benchmark verdict "
        "instead of a bare exit code)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        problems = []
        for path in args.reports:
            try:
                problems.extend(check_smoke(path))
            except (OSError, json.JSONDecodeError) as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        if args.summary:
            lines = ["### Benchmark smoke", ""]
            lines += [f"- `{path}` checked" for path in args.reports]
            if problems:
                lines += [f"- :x: {problem}" for problem in problems]
            else:
                lines.append("- :white_check_mark: all floors met")
            append_summary(args.summary, lines)
        return 1 if problems else 0

    if len(args.reports) != 2:
        print("error: expected BASELINE.json CANDIDATE.json", file=sys.stderr)
        return 2
    args.baseline, args.candidate = args.reports

    try:
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(args.candidate, "r", encoding="utf-8") as handle:
            candidate = json.load(handle)
        key, base_value = headline_value(baseline, args.baseline)
        candidate_key, new_value = headline_value(candidate, args.candidate)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if baseline.get("benchmark") != candidate.get("benchmark"):
        print(
            f"error: benchmark mismatch: {baseline.get('benchmark')!r} "
            f"vs {candidate.get('benchmark')!r}",
            file=sys.stderr,
        )
        return 2

    # The headline plus any secondary metrics both reports carry (e.g. the
    # query-throughput cold-load speedup), all under the same tolerance.
    checks = [(key, base_value, new_value)]
    for extra_key in SECONDARY.get(baseline["benchmark"], []):
        base_extra = baseline.get(extra_key)
        new_extra = candidate.get(extra_key)
        if isinstance(base_extra, (int, float)) and isinstance(new_extra, (int, float)):
            checks.append((extra_key, float(base_extra), float(new_extra)))

    failed = False
    summary_lines = [
        f"### {baseline['benchmark']}",
        "",
        "| metric | baseline | candidate | ratio | floor | verdict |",
        "|---|---:|---:|---:|---:|---|",
    ]
    for metric, base_value, new_value in checks:
        floor = (1.0 - args.tolerance) * base_value
        ratio = new_value / base_value if base_value else float("inf")
        verdict = "ok" if new_value >= floor else "REGRESSION"
        print(
            f"{baseline['benchmark']}: {metric} baseline {base_value:.3f} -> "
            f"candidate {new_value:.3f} ({100 * ratio:.1f}%, floor {floor:.3f}) {verdict}"
        )
        icon = ":white_check_mark:" if new_value >= floor else ":x:"
        summary_lines.append(
            f"| `{metric}` | {base_value:.3f} | {new_value:.3f} | "
            f"{100 * ratio:.1f}% | {floor:.3f} | {icon} {verdict} |"
        )
        if new_value < floor:
            print(
                f"FAIL: {metric} regressed more than {100 * args.tolerance:.0f}% "
                f"vs {args.baseline}",
                file=sys.stderr,
            )
            failed = True
    append_summary(args.summary, summary_lines + [""])
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
